"""AST lock-order analysis over the whole package.

The analyzer parses every module under ``src/repro`` and enforces the
hierarchy declared in :mod:`repro.analysis.registry`:

* **inversion** — somewhere in the call graph a lock is acquired whose
  level is ≤ the level of a lock already held (re-entering the same
  re-entrant lock is legal).  Acquisitions are found at ``with <lock>:``
  and ``<lock>.acquire()`` sites; held-lock sets propagate lexically
  through nested ``with`` blocks and interprocedurally through an
  intra-package call graph (receiver resolution by ``self``, parameter
  type hints, ``self.attr = ClassName()`` construction sites, and unique
  attribute/method names — ambiguous receivers are skipped: precision
  over recall).
* **cycle** — the acquired-while-held graph contains a cycle (can only
  appear when inversions are suppressed away).
* **undeclared-lock** — a raw ``threading.Lock``/``RLock`` construction
  outside the factory module (:mod:`repro.analysis.runtime`).
* **unknown-lock-name** — a ``make_lock``/``make_rlock`` call whose name
  literal is not in the registry (or whose kind disagrees with it).
* **stale-registry** — a registry entry with no construction site left in
  the tree (the table would go stale in the other direction).
* **bad-suppression** — a ``lock-lint: ignore`` comment without the
  mandatory justification.

Suppress a finding on its line with ``# lock-lint: ignore[<rule>] — <why>``.
"""

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.registry import LOCKS, KIND_RLOCK, LockSpec

#: The module whose raw ``threading.Lock``/``RLock`` constructions are the
#: factories themselves (plus the checker's internal counter lock).
FACTORY_MODULE = "repro.analysis.runtime"

FACTORY_FUNCTIONS = {"make_lock": "Lock", "make_rlock": "RLock"}

#: Method names common on builtin containers/files: the unique-method
#: call-graph fallback never fires for these — a ``self._feed.append(...)``
#: on a plain list must not resolve to ``WriteAheadLog.append``.  Typed
#: receivers still resolve normally.
COMMON_METHOD_NAMES = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "get", "keys", "values",
    "items", "copy", "sort", "reverse", "count", "index", "join", "split",
    "strip", "write", "read", "readline", "flush", "seek", "tell",
    "acquire", "release", "close", "open", "send", "recv", "put",
})

SUPPRESSION_RULES = (
    "inversion",
    "cycle",
    "undeclared-lock",
    "unknown-lock-name",
    "unresolved-lock",
    "unguarded-write",
)


@dataclass(frozen=True)
class Finding:
    """One reported problem."""

    rule: str
    module: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.module}:{self.line}: [{self.rule}] {self.message}"


class Registry:
    """Lookup maps over a sequence of :class:`LockSpec` declarations."""

    def __init__(self, locks: Sequence[LockSpec] = LOCKS) -> None:
        self.locks: Tuple[LockSpec, ...] = tuple(locks)
        self.by_name: Dict[str, LockSpec] = {s.name: s for s in self.locks}
        self.by_attribute: Dict[str, List[LockSpec]] = {}
        for spec in self.locks:
            self.by_attribute.setdefault(spec.attribute, []).append(spec)

    def lock_for(self, owner: str, attribute: str) -> Optional[LockSpec]:
        return self.by_name.get(f"{owner}.{attribute}")


# --------------------------------------------------------------- sources


def collect_sources(root: str) -> Dict[str, str]:
    """``{dotted module name: source text}`` for every ``.py`` under *root*.

    *root* is the directory that **contains** the top-level package (e.g.
    ``src``), or the package directory itself (then its own name heads the
    dotted names).
    """
    root = os.path.abspath(root)
    base = os.path.dirname(root) if os.path.isfile(os.path.join(root, "__init__.py")) else root
    sources: Dict[str, str] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith((".", "__pycache__")))
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, base)
            parts = relative[:-3].split(os.sep)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            module = ".".join(parts)
            with open(path, "r", encoding="utf-8") as handle:
                sources[module] = handle.read()
    return sources


# -------------------------------------------------------------- comments


@dataclass
class CommentMap:
    """Per-line comments of one module, plus parsed lint directives."""

    comments: Dict[int, str] = field(default_factory=dict)
    #: line → set of suppressed rules (only well-formed directives).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: malformed ``lock-lint`` directives: line → raw text.
    malformed: Dict[int, str] = field(default_factory=dict)

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, ())


def scan_comments(source: str) -> CommentMap:
    result = CommentMap()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string
            line = token.start[0]
            result.comments[line] = text
            match = re.search(r"lock-lint\s*:", text)
            if match is None:  # mere mentions of lock-lint are not directives
                continue
            directive = text[match.end():].lstrip()
            if not directive.startswith("ignore["):
                result.malformed[line] = text
                continue
            rule, _, rest = directive[len("ignore["):].partition("]")
            rule = rule.strip()
            reason = rest.strip().lstrip("—–-").strip()
            if rule not in SUPPRESSION_RULES or not reason:
                result.malformed[line] = text
                continue
            result.suppressions.setdefault(line, set()).add(rule)
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        pass
    return result


# ------------------------------------------------------- lock resolution

#: Sentinel for "looks like a registered lock but the receiver is ambiguous".
UNRESOLVED = object()


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """The class name named by an annotation node (``Foo``, ``"Foo"``,
    ``module.Foo``, ``Optional[Foo]``)."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        return text.split("[")[-1].rstrip("]").split(".")[-1] or None
    if isinstance(node, ast.Subscript):  # Optional[Foo] / "List[Foo]"
        inner = node.slice
        if isinstance(inner, ast.Index):  # pragma: no cover - py<3.9
            inner = inner.value
        return _annotation_name(inner)
    return None


class Scope:
    """Resolution context inside one function."""

    def __init__(
        self,
        module: str,
        cls: Optional[str],
        annotations: Dict[str, str],
        attr_types: Dict[Tuple[str, str], str],
    ) -> None:
        self.module = module
        self.cls = cls
        #: local/parameter name → class name (from type hints).
        self.annotations = annotations
        #: (class, attribute) → class name (from ``self.x = ClassName()``).
        self.attr_types = attr_types


def resolve_lock(node: ast.expr, scope: Scope, registry: Registry):
    """Resolve a ``with``-item / ``.acquire()`` receiver to a LockSpec.

    Returns the spec, ``None`` (not a registered lock — e.g. an arbitrary
    context manager), or :data:`UNRESOLVED` (a registered attribute name
    on a receiver the analyzer cannot type)."""
    if isinstance(node, ast.Subscript):  # lock families: self._slot_locks[i]
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    attribute = node.attr
    candidates = registry.by_attribute.get(attribute)
    if not candidates:
        return None
    base = node.value
    owner: Optional[str] = None
    if isinstance(base, ast.Name):
        if base.id == "self":
            owner = scope.cls
        else:
            owner = scope.annotations.get(base.id)
    elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
        if base.value.id == "self" and scope.cls is not None:
            owner = scope.attr_types.get((scope.cls, base.attr))
    if owner is not None:
        spec = registry.lock_for(owner, attribute)
        if spec is not None:
            return spec
        # The receiver has a known type that does not declare this lock —
        # fall through to the unique-attribute match (e.g. a subclass).
    if len(candidates) == 1:
        return candidates[0]
    return UNRESOLVED


# ------------------------------------------------------------ the walker


@dataclass
class Acquire:
    spec: LockSpec
    held: Tuple[LockSpec, ...]
    line: int


@dataclass
class CallSite:
    #: ('method', class name or None, method name) or ('function', name).
    target: Tuple
    held: Tuple[LockSpec, ...]
    line: int


@dataclass
class FunctionFacts:
    key: str  # "module:Class.method" or "module:function"
    module: str
    cls: Optional[str]
    name: str
    acquires: List[Acquire] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)


class _FunctionWalker(ast.NodeVisitor):
    """Collects acquisition and call events with lexical held-lock sets."""

    def __init__(self, facts: FunctionFacts, scope: Scope, registry: Registry,
                 unresolved: List[Tuple[int, str]]) -> None:
        self.facts = facts
        self.scope = scope
        self.registry = registry
        self.unresolved = unresolved
        self.held: List[LockSpec] = []

    # -- with blocks ----------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node) -> None:  # pragma: no cover - no async
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            resolved = resolve_lock(expr, self.scope, self.registry)
            if resolved is UNRESOLVED:
                self.unresolved.append((expr.lineno, ast.unparse(expr)))
                continue
            if resolved is not None:
                self.facts.acquires.append(
                    Acquire(resolved, tuple(self.held), expr.lineno)
                )
                self.held.append(resolved)
                pushed += 1
            else:
                # Not a lock: still record the context-manager call so the
                # call graph sees helper context managers.
                self.visit(expr)
        for statement in node.body:
            self.visit(statement)
        for _ in range(pushed):
            self.held.pop()

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        if isinstance(function, ast.Attribute):
            if function.attr == "acquire":
                resolved = resolve_lock(function.value, self.scope, self.registry)
                if resolved is UNRESOLVED:
                    self.unresolved.append(
                        (node.lineno, ast.unparse(function.value))
                    )
                elif resolved is not None:
                    self.facts.acquires.append(
                        Acquire(resolved, tuple(self.held), node.lineno)
                    )
            else:
                base = function.value
                owner: Optional[str] = None
                if isinstance(base, ast.Name):
                    if base.id == "self":
                        owner = self.scope.cls
                    else:
                        owner = self.scope.annotations.get(base.id)
                elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                    if base.value.id == "self" and self.scope.cls is not None:
                        owner = self.scope.attr_types.get(
                            (self.scope.cls, base.attr)
                        )
                self.facts.calls.append(
                    CallSite(("method", owner, function.attr), tuple(self.held), node.lineno)
                )
        elif isinstance(function, ast.Name):
            self.facts.calls.append(
                CallSite(("function", function.id), tuple(self.held), node.lineno)
            )
        self.generic_visit(node)

    # Nested defs/lambdas run with an unknown held set at call time; their
    # bodies are analyzed at the definition point (the enclosing held set is
    # the best lexical approximation — closures here are undo/swap thunks
    # invoked under the same or a deeper held set).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for statement in node.body:
            self.visit(statement)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


# ----------------------------------------------------------- module pass


@dataclass
class ModuleFacts:
    module: str
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    #: class name → {method name: function key}
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: raw threading.Lock/RLock constructions: (line, kind)
    raw_constructions: List[Tuple[int, str]] = field(default_factory=list)
    #: factory calls: (line, kind, name literal or None)
    factory_calls: List[Tuple[int, str, Optional[str]]] = field(default_factory=list)
    #: registered-attribute acquisitions whose receiver couldn't be typed.
    unresolved: List[Tuple[int, str]] = field(default_factory=list)
    comment_map: CommentMap = field(default_factory=CommentMap)
    tree: Optional[ast.Module] = None


def _collect_attr_types(
    tree: ast.Module, class_names: Set[str]
) -> Dict[Tuple[str, str], str]:
    """``self.attr = ClassName(...)`` construction sites, package classes only."""
    attr_types: Dict[Tuple[str, str], str] = {}
    conflicted: Set[Tuple[str, str]] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method in ast.walk(node):
            if not isinstance(method, ast.Assign):
                continue
            value = method.value
            if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)):
                continue
            constructed = value.func.id
            if constructed not in class_names:
                continue
            for target in method.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    key = (node.name, target.attr)
                    if key in attr_types and attr_types[key] != constructed:
                        conflicted.add(key)
                    attr_types[key] = constructed
    for key in conflicted:
        attr_types.pop(key, None)
    return attr_types


def _local_aliases(
    node: ast.FunctionDef,
    cls: Optional[str],
    attr_types: Dict[Tuple[str, str], str],
) -> Dict[str, str]:
    """Types of ``x = self.attr`` locals, via the attribute-type map.

    Closes the gap where ``hub = self._replication`` followed by
    ``hub.dispatch_state()`` would leave the receiver untyped and drop the
    call edge (the exact shape of the planner→hub inversion)."""
    if cls is None:
        return {}
    aliases: Dict[str, str] = {}
    conflicted: set = set()
    for statement in ast.walk(node):
        if not isinstance(statement, ast.Assign) or len(statement.targets) != 1:
            continue
        target = statement.targets[0]
        value = statement.value
        if not (isinstance(target, ast.Name) and isinstance(value, ast.Attribute)):
            continue
        if not (isinstance(value.value, ast.Name) and value.value.id == "self"):
            continue
        typed = attr_types.get((cls, value.attr))
        if typed is None:
            continue
        if target.id in aliases and aliases[target.id] != typed:
            conflicted.add(target.id)
        aliases[target.id] = typed
    for name in conflicted:
        aliases.pop(name, None)
    return aliases


def _parameter_annotations(node: ast.FunctionDef) -> Dict[str, str]:
    annotations: Dict[str, str] = {}
    args = list(node.args.posonlyargs) + list(node.args.args) + list(node.args.kwonlyargs)
    for arg in args:
        name = _annotation_name(arg.annotation)
        if name:
            annotations[arg.arg] = name
    # Annotated locals: x: Foo = ...
    for statement in ast.walk(node):
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            name = _annotation_name(statement.annotation)
            if name:
                annotations[statement.target.id] = name
    return annotations


def _threading_aliases(tree: ast.Module) -> Tuple[Set[str], Dict[str, str]]:
    """(names bound to the threading module, direct Lock/RLock imports)."""
    modules: Set[str] = set()
    direct: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "threading":
                    modules.add(alias.asname or "threading")
        elif isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name in ("Lock", "RLock"):
                    direct[alias.asname or alias.name] = alias.name
    return modules, direct


def analyze_module(
    module: str,
    source: str,
    registry: Registry,
    class_names: Set[str],
    attr_types: Dict[Tuple[str, str], str],
) -> ModuleFacts:
    facts = ModuleFacts(module=module, comment_map=scan_comments(source))
    tree = ast.parse(source)
    facts.tree = tree
    threading_names, direct_locks = _threading_aliases(tree)

    # Lock constructions (raw and via the factories).
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        function = node.func
        kind = None
        if isinstance(function, ast.Attribute) and isinstance(function.value, ast.Name):
            if function.value.id in threading_names and function.attr in ("Lock", "RLock"):
                kind = function.attr
        elif isinstance(function, ast.Name) and function.id in direct_locks:
            kind = direct_locks[function.id]
        if kind is not None:
            facts.raw_constructions.append((node.lineno, kind))
            continue
        factory = None
        if isinstance(function, ast.Name) and function.id in FACTORY_FUNCTIONS:
            factory = function.id
        elif isinstance(function, ast.Attribute) and function.attr in FACTORY_FUNCTIONS:
            factory = function.attr
        if factory is not None:
            literal: Optional[str] = None
            if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                node.args[0].value, str
            ):
                literal = node.args[0].value
            facts.factory_calls.append(
                (node.lineno, FACTORY_FUNCTIONS[factory], literal)
            )

    # Function facts.
    def walk_function(node: ast.FunctionDef, cls: Optional[str]) -> None:
        qual = f"{cls}.{node.name}" if cls else node.name
        key = f"{module}:{qual}"
        function_facts = FunctionFacts(key=key, module=module, cls=cls, name=node.name)
        annotations = _local_aliases(node, cls, attr_types)
        annotations.update(_parameter_annotations(node))
        scope = Scope(module, cls, annotations, attr_types)
        walker = _FunctionWalker(function_facts, scope, registry, facts.unresolved)
        for statement in node.body:
            walker.visit(statement)
        facts.functions[key] = function_facts
        if cls is not None:
            facts.classes.setdefault(cls, {})[node.name] = key

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walk_function(node, None)
        elif isinstance(node, ast.ClassDef):
            facts.classes.setdefault(node.name, {})
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk_function(sub, node.name)
    return facts


# ------------------------------------------------------------- analysis


class Analysis:
    """Whole-package lock-order analysis."""

    def __init__(self, sources: Dict[str, str], registry: Optional[Registry] = None) -> None:
        self.sources = sources
        self.registry = registry or Registry()
        self.findings: List[Finding] = []
        self.modules: Dict[str, ModuleFacts] = {}
        self.syntax_errors: List[Finding] = []

        trees: Dict[str, ast.Module] = {}
        for module, source in sorted(sources.items()):
            try:
                trees[module] = ast.parse(source)
            except SyntaxError as exc:  # pragma: no cover - repo parses
                self.syntax_errors.append(
                    Finding("syntax-error", module, exc.lineno or 0, str(exc))
                )

        # Package-wide class and method indexes for receiver resolution.
        self.class_names: Set[str] = set()
        for tree in trees.values():
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    self.class_names.add(node.name)
        self.attr_types: Dict[Tuple[str, str], str] = {}
        for tree in trees.values():
            self.attr_types.update(_collect_attr_types(tree, self.class_names))

        for module, source in sorted(sources.items()):
            if module not in trees:
                continue
            self.modules[module] = analyze_module(
                module, source, self.registry, self.class_names, self.attr_types
            )

        #: method name → [function keys] across the package.
        self.methods: Dict[str, List[str]] = {}
        #: (class, method) → function key.
        self.class_methods: Dict[Tuple[str, str], str] = {}
        #: function name → [module-level function keys].
        self.module_functions: Dict[str, List[str]] = {}
        self.functions: Dict[str, FunctionFacts] = {}
        for facts in self.modules.values():
            for key, function in facts.functions.items():
                self.functions[key] = function
                if function.cls is None:
                    self.module_functions.setdefault(function.name, []).append(key)
                else:
                    self.methods.setdefault(function.name, []).append(key)
                    self.class_methods[(function.cls, function.name)] = key

    # -- call resolution ------------------------------------------------
    def resolve_call(self, caller: FunctionFacts, site: CallSite) -> Optional[str]:
        target = site.target
        if target[0] == "function":
            name = target[1]
            if name in self.class_names:  # ClassName(...) → __init__
                return self.class_methods.get((name, "__init__"))
            local = f"{caller.module}:{name}"
            if local in self.functions and self.functions[local].cls is None:
                return local
            keys = self.module_functions.get(name, [])
            if len(keys) == 1:
                return keys[0]
            return None
        _kind, owner, method = target
        if owner is not None:
            key = self.class_methods.get((owner, method))
            if key is not None:
                return key
        if method in COMMON_METHOD_NAMES:
            return None
        keys = self.methods.get(method, [])
        if len(keys) == 1:
            return keys[0]
        return None

    # -- transitive acquisition summaries -------------------------------
    def summaries(self) -> Dict[str, Dict[str, Tuple[LockSpec, Tuple]]]:
        """function key → {lock name: (spec, representative path)}.

        A path is a tuple of ``(function key, line)`` call steps ending at
        the acquiring function, then the acquisition line.
        """
        summary: Dict[str, Dict[str, Tuple[LockSpec, Tuple]]] = {
            key: {} for key in self.functions
        }
        for key, function in self.functions.items():
            for acquire in function.acquires:
                summary[key].setdefault(
                    acquire.spec.name, (acquire.spec, ((key, acquire.line),))
                )
        changed = True
        iterations = 0
        while changed and iterations < len(self.functions) + 10:
            changed = False
            iterations += 1
            for key, function in self.functions.items():
                for site in function.calls:
                    callee = self.resolve_call(function, site)
                    if callee is None:
                        continue
                    for lock_name, (spec, path) in summary[callee].items():
                        if lock_name not in summary[key]:
                            summary[key][lock_name] = (
                                spec,
                                ((key, site.line),) + path,
                            )
                            changed = True
        return summary

    # -- checks ----------------------------------------------------------
    def _violates(self, held: LockSpec, acquired: LockSpec) -> bool:
        if acquired.level > held.level:
            return False
        if acquired.name == held.name and acquired.kind == KIND_RLOCK:
            return False  # re-entry of the same re-entrant lock
        return True

    def _report(self, rule: str, module: str, line: int, message: str) -> None:
        comment_map = self.modules[module].comment_map if module in self.modules else CommentMap()
        if comment_map.suppressed(line, rule):
            return
        self.findings.append(Finding(rule, module, line, message))

    @staticmethod
    def _render_path(path: Tuple) -> str:
        steps = [f"{key} (line {line})" for key, line in path]
        return " -> ".join(steps)

    def run(self) -> List[Finding]:
        self.findings = list(self.syntax_errors)
        self._check_constructions()
        self._check_suppression_comments()
        edges: Set[Tuple[str, str]] = set()
        edge_sites: Dict[Tuple[str, str], Tuple[str, int]] = {}
        summary = self.summaries()

        for key, function in self.functions.items():
            for acquire in function.acquires:
                for held in acquire.held:
                    edges.add((held.name, acquire.spec.name))
                    edge_sites.setdefault(
                        (held.name, acquire.spec.name), (function.module, acquire.line)
                    )
                    if self._violates(held, acquire.spec):
                        self._report(
                            "inversion",
                            function.module,
                            acquire.line,
                            f"acquires {acquire.spec.name!r} (level "
                            f"{acquire.spec.level}) while holding {held.name!r} "
                            f"(level {held.level}) in {key}",
                        )
            for site in function.calls:
                if not site.held:
                    continue
                callee = self.resolve_call(function, site)
                if callee is None:
                    continue
                for lock_name, (spec, path) in summary[callee].items():
                    for held in site.held:
                        edges.add((held.name, spec.name))
                        edge_sites.setdefault(
                            (held.name, spec.name), (function.module, site.line)
                        )
                        if self._violates(held, spec):
                            self._report(
                                "inversion",
                                function.module,
                                site.line,
                                f"call path acquires {spec.name!r} (level "
                                f"{spec.level}) while {key} holds "
                                f"{held.name!r} (level {held.level}); path: "
                                f"{key} (line {site.line}) -> "
                                f"{self._render_path(path)}",
                            )
        self._check_cycles(edges, edge_sites)
        self._check_unresolved()
        return self.findings

    def _check_constructions(self) -> None:
        constructed: Set[str] = set()
        for module, facts in self.modules.items():
            factory_module = module == FACTORY_MODULE
            for line, kind in facts.raw_constructions:
                if factory_module:
                    continue
                self._report(
                    "undeclared-lock",
                    module,
                    line,
                    f"raw threading.{kind}() construction; build it with "
                    f"repro.analysis.runtime.make_{kind.lower()}(\"Owner.attr\") "
                    "and declare it in repro.analysis.registry",
                )
            for line, kind, literal in facts.factory_calls:
                if literal is None:
                    self._report(
                        "unknown-lock-name",
                        module,
                        line,
                        f"make_{kind.lower()}() needs a string-literal registry "
                        "name as its first argument",
                    )
                    continue
                spec = self.registry.by_name.get(literal)
                if spec is None:
                    self._report(
                        "unknown-lock-name",
                        module,
                        line,
                        f"lock name {literal!r} is not declared in the registry",
                    )
                    continue
                constructed.add(literal)
                if spec.kind != kind:
                    self._report(
                        "unknown-lock-name",
                        module,
                        line,
                        f"lock {literal!r} is registered as a {spec.kind} but "
                        f"constructed as a {kind}",
                    )
        if any(facts.factory_calls for facts in self.modules.values()):
            for spec in self.registry.locks:
                if spec.name not in constructed and spec.module in self.modules:
                    self._report(
                        "stale-registry",
                        spec.module,
                        1,
                        f"registry declares {spec.name!r} but no construction "
                        "site remains in the tree",
                    )

    def _check_suppression_comments(self) -> None:
        for module, facts in self.modules.items():
            for line, text in facts.comment_map.malformed.items():
                self.findings.append(
                    Finding(
                        "bad-suppression",
                        module,
                        line,
                        "malformed lock-lint directive (use "
                        f"'# lock-lint: ignore[<rule>] — <reason>'): {text!r}",
                    )
                )

    def _check_unresolved(self) -> None:
        for module, facts in self.modules.items():
            for line, text in facts.unresolved:
                self._report(
                    "unresolved-lock",
                    module,
                    line,
                    f"cannot resolve lock expression {text!r} to a unique "
                    "registry entry; add a type hint on the receiver",
                )

    def _check_cycles(
        self,
        edges: Set[Tuple[str, str]],
        edge_sites: Dict[Tuple[str, str], Tuple[str, int]],
    ) -> None:
        graph: Dict[str, Set[str]] = {}
        for source, target in edges:
            if source == target:
                continue
            graph.setdefault(source, set()).add(target)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in graph}
        stack: List[str] = []
        reported: Set[frozenset] = set()

        def visit(name: str) -> None:
            color[name] = GRAY
            stack.append(name)
            for successor in sorted(graph.get(name, ())):
                if color.get(successor, WHITE) == GRAY:
                    cycle = stack[stack.index(successor):] + [successor]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        module, line = edge_sites.get(
                            (name, successor), ("<package>", 0)
                        )
                        self._report(
                            "cycle",
                            module,
                            line,
                            "lock acquisition cycle: " + " -> ".join(cycle),
                        )
                elif color.get(successor, WHITE) == WHITE:
                    visit(successor)
            stack.pop()
            color[name] = BLACK

        for name in sorted(graph):
            if color[name] == WHITE:
                visit(name)


def analyze(sources: Dict[str, str], registry: Optional[Registry] = None) -> List[Finding]:
    """Run the lock-order analysis; returns the findings (empty = clean)."""
    return Analysis(sources, registry).run()
