"""The lock registry: every lock in ``src/repro``, with its level.

This module is the **source of truth** for the lock hierarchy — DESIGN.md's
lock-order table is generated from it (``python -m repro.analysis
--emit-design-table``) and both the static analyzer
(:mod:`repro.analysis.lockorder`) and the runtime checker
(:mod:`repro.analysis.runtime`) enforce it:

* a lock may only be acquired while every currently-held lock has a
  **strictly lower** level (re-entering the same re-entrant lock is always
  allowed);
* every ``threading.Lock``/``RLock`` construction in the package must go
  through :func:`repro.analysis.runtime.make_lock` / ``make_rlock`` with a
  name declared here — an unregistered construction is an
  ``undeclared-lock`` finding.

Levels are spaced out (4, 6, 8, … 60) so future locks can slot between
existing ones without renumbering the world.  The ordering constraints that
pinned each level are recorded in the ``rationale`` fields; the load-bearing
ones are:

* ``ReplicationHub._lock`` and ``FollowerEngine._lock`` sit **below every
  engine-internal lock**: the hub builds whole follower engines and fences
  the primary (``promote`` → ``fence`` → write lock → versioning lock)
  while holding them.
* ``MQLInterpreter._session_guard`` is held across ``Transaction.begin`` /
  ``commit`` — which take the versioning lock and, on a conflict loser's
  rollback, the per-type head locks — so it must sit below level 20.
* The WAL observer contract (observers fire *inside* the log mutex, after
  the bytes reach the OS) forces both catch-up feed locks **above**
  ``WriteAheadLog._lock``.
* ``StructureIndexStore._lock`` / ``ColumnarStore._lock`` are acquired by
  the engine's event path while it holds the event lock, so they sit above
  level 40; their refresh paths read atomic ``.occurrence`` copies and
  never take a head lock underneath.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

KIND_LOCK = "Lock"
KIND_RLOCK = "RLock"


@dataclass(frozen=True)
class LockSpec:
    """One declared lock: identity, level and what it guards."""

    #: Canonical name, ``Owner.attribute`` (how findings and the DESIGN.md
    #: table refer to it, and the literal passed to ``make_lock``).
    name: str
    #: Level in the hierarchy — acquisition order is strictly ascending.
    level: int
    #: ``"Lock"`` or ``"RLock"`` (re-entry of the same instance is only
    #: legal for the latter).
    kind: str
    #: Dotted module the lock is constructed in.
    module: str
    #: What the lock guards (one table cell of prose).
    guards: str
    #: Why the lock sits at this level (ordering constraints observed in
    #: the code); empty for locks whose position is unconstrained.
    rationale: str = ""
    #: ``True`` for a *family* of same-named instances (one lock per
    #: worker/type); instances of a family are never nested in each other.
    per_instance: bool = False

    @property
    def owner(self) -> str:
        return self.name.rsplit(".", 1)[0]

    @property
    def attribute(self) -> str:
        return self.name.rsplit(".", 1)[1]


#: Every lock in ``src/repro``, in ascending level order.
LOCKS: Tuple[LockSpec, ...] = (
    LockSpec(
        name="ReplicationHub._lock",
        level=4,
        kind=KIND_RLOCK,
        module="repro.storage.replication",
        guards="follower registry and hub counters; held across follower "
        "seeding, shipping and the fence→cut→ship promotion protocol",
        rationale="held while constructing whole FollowerEngines and while "
        "fencing the primary (promote → fence → write lock → versioning "
        "lock), so it must sit below every engine-internal lock",
    ),
    LockSpec(
        name="FollowerEngine._lock",
        level=6,
        kind=KIND_RLOCK,
        module="repro.storage.replication",
        guards="one follower's applies, re-seeds, snapshot acquisition and "
        "promotion flag (query execution runs outside it, on the handle)",
        rationale="held while applying records into (and snapshotting) the "
        "follower's own engine, so it sits below the engine locks; the hub "
        "lock is held when shipping to it, so it sits above level 4",
    ),
    LockSpec(
        name="MQLInterpreter._session_guard",
        level=8,
        kind=KIND_LOCK,
        module="repro.mql.interpreter",
        guards="the session transaction and its thread-affinity slot "
        "(BEGIN/COMMIT/ROLLBACK WORK transitions, conflict cleanup)",
        rationale="held across Transaction.begin/commit, which take the "
        "versioning lock — and head locks on the conflict loser's rollback "
        "— so it must sit below levels 18-30",
    ),
    LockSpec(
        name="PrimaEngine._write_lock",
        level=10,
        kind=KIND_RLOCK,
        module="repro.storage.engine",
        guards="basic-interface writes (store_atom / connect / delete_atom), "
        "fence() and checkpoint() serialize against each other",
    ),
    LockSpec(
        name="PrimaEngine._cache_lock",
        level=15,
        kind=KIND_RLOCK,
        module="repro.storage.engine",
        guards="lazy construction/teardown of the cached access structures "
        "(snapshot, network, interpreter, index pool, pool/hub references)",
        rationale="construction of the snapshot takes head locks and the "
        "versioning guard underneath, so it sits below 18-22; shutdown "
        "hands pool/hub references out of the lock before closing them",
    ),
    LockSpec(
        name="Database._versioning_guard",
        level=18,
        kind=KIND_LOCK,
        module="repro.core.database",
        guards="versioning-state creation (enable_versioning may race an "
        "engine thread against an MQL BEGIN WORK elsewhere)",
        rationale="taken under the cache lock (snapshot build) and the "
        "session guard (BEGIN WORK); acquires nothing underneath",
    ),
    LockSpec(
        name="AtomType._lock",
        level=20,
        kind=KIND_RLOCK,
        module="repro.core.atom",
        guards="per-type head lock: head swap + chain record + event "
        "emission are one atomic unit per mutation; GC truncation; "
        "snapshot views copy key sets under it",
        per_instance=True,
    ),
    LockSpec(
        name="LinkType._lock",
        level=22,
        kind=KIND_RLOCK,
        module="repro.core.link",
        guards="per-type head lock (see AtomType._lock), plus the "
        "cardinality check; link-type and atom-type head locks are never "
        "nested (mirror paths release one before taking the other)",
        per_instance=True,
    ),
    LockSpec(
        name="VersioningState.lock",
        level=30,
        kind=KIND_RLOCK,
        module="repro.core.versions",
        guards="the engine lock: generation clock, pin registry, commit "
        "log, active transactions, conflict checks, commit validation + "
        "durability hook; every mutation's tick + chain record + head swap "
        "runs inside it",
        rationale="acquired inside the per-type head locks "
        "(_version_mutation) and while the session guard is held (commit)",
    ),
    LockSpec(
        name="ProcessPool._slot_locks",
        level=35,
        kind=KIND_LOCK,
        module="repro.engine.procpool",
        guards="one conversation (catch-up + execute batch, restarts "
        "included) at a time per worker slot",
        rationale="the slot holder reads the feed (level 56) during "
        "catch-up and respawn; slots are never nested in each other",
        per_instance=True,
    ),
    LockSpec(
        name="PrimaEngine._event_lock",
        level=40,
        kind=KIND_RLOCK,
        module="repro.storage.engine",
        guards="one change event at a time: generation counter, store "
        "mirror, incremental cache maintenance, WAL routing; also the "
        "basic-interface store mutation (dict + hash indexes)",
        rationale="acquired inside head locks and the versioning lock "
        "(event emission); only acquires the leaves above level 40",
    ),
    LockSpec(
        name="MQLInterpreter._plan_lock",
        level=42,
        kind=KIND_RLOCK,
        module="repro.mql.interpreter",
        guards="planning and planner-statistics maintenance (planner code "
        "never takes a head lock — statistics read atomic .occurrence "
        "copies); execution runs outside it",
        rationale="the event path folds statistics into it while holding "
        "the event lock (so it sits above 40); the optimizer consults the "
        "structure-index registry while planning, so it sits below "
        "StructureIndexStore._lock",
    ),
    LockSpec(
        name="StructureIndexStore._lock",
        level=44,
        kind=KIND_RLOCK,
        module="repro.storage.structure_index",
        guards="structure-index registration, lookup, encoding refresh and "
        "event folds; readers never touch occurrence state while holding "
        "it (refresh reads atomic .occurrence copies)",
        rationale="the event path folds into it while holding the event "
        "lock",
    ),
    LockSpec(
        name="ColumnarStore._lock",
        level=46,
        kind=KIND_RLOCK,
        module="repro.storage.columnar",
        guards="columnar projection registration, lazy (re)build and event "
        "folds; same leaf contract as the structure-index store",
        rationale="the event path folds into it while holding the event "
        "lock",
    ),
    LockSpec(
        name="WriteAheadLog._lock",
        level=52,
        kind=KIND_RLOCK,
        module="repro.storage.wal",
        guards="record append + counters + fsync policy (no torn or "
        "interleaved records under group commit); observers fire inside it "
        "after the bytes reach the OS",
        rationale="acquired under the write, versioning and event locks "
        "(direct logging, commit hook, event capture); observers only "
        "acquire the feed locks above",
    ),
    LockSpec(
        name="ReplicationHub._feed_lock",
        level=55,
        kind=KIND_LOCK,
        module="repro.storage.replication",
        guards="the hub's in-memory WAL record feed (append from the "
        "observer, slice/trim from shipping)",
        rationale="the WAL observer appends while the log mutex is held, "
        "so the feed lock must sit above WriteAheadLog._lock",
    ),
    LockSpec(
        name="ProcessPool._feed_lock",
        level=56,
        kind=KIND_LOCK,
        module="repro.engine.procpool",
        guards="the pool's in-memory WAL record feed (append from the "
        "observer, slice/trim from worker catch-up)",
        rationale="same WAL-observer contract as the hub feed; also read "
        "while a worker slot lock (level 35) is held",
    ),
    LockSpec(
        name="SnapshotHandle._release_guard",
        level=60,
        kind=KIND_LOCK,
        module="repro.storage.engine",
        guards="the handle's released flag (idempotent release; the pin "
        "release and GC run after the guard is dropped)",
        rationale="a pure leaf: nothing is ever acquired inside it",
    ),
)

_BY_NAME: Dict[str, LockSpec] = {spec.name: spec for spec in LOCKS}
_BY_ATTRIBUTE: Dict[str, Tuple[LockSpec, ...]] = {}
for _spec in LOCKS:
    _BY_ATTRIBUTE.setdefault(_spec.attribute, ())
    _BY_ATTRIBUTE[_spec.attribute] = _BY_ATTRIBUTE[_spec.attribute] + (_spec,)


def lock_by_name(name: str) -> Optional[LockSpec]:
    """The registered lock called *name* (``Owner.attribute``), or ``None``."""
    return _BY_NAME.get(name)


def locks_by_attribute(attribute: str) -> Tuple[LockSpec, ...]:
    """Every registered lock whose attribute name is *attribute*."""
    return _BY_ATTRIBUTE.get(attribute, ())


def lock_for(owner: str, attribute: str) -> Optional[LockSpec]:
    """The lock declared as ``owner.attribute``, or ``None``."""
    return _BY_NAME.get(f"{owner}.{attribute}")


def declared_count() -> int:
    """Number of locks in the registry."""
    return len(LOCKS)


def design_table() -> str:
    """Render the registry as the DESIGN.md lock-order table (markdown).

    The table between the ``lock-table`` markers in DESIGN.md is this
    function's output verbatim — ``python -m repro.analysis`` fails when
    they diverge and ``--fix-design`` rewrites the block.
    """
    lines = [
        "  | level | lock | kind | guards |",
        "  |-------|------|------|--------|",
    ]
    for spec in LOCKS:
        name = f"`{spec.name}`"
        if spec.per_instance:
            name += " (per instance)"
        lines.append(
            f"  | {spec.level} | {name} | {spec.kind} | {spec.guards} |"
        )
    return "\n".join(lines)
