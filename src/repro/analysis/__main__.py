"""``python -m repro.analysis`` — the concurrency lint CLI.

Runs the whole static suite over ``src/repro`` and exits non-zero on any
finding:

* lock-order analysis (:mod:`repro.analysis.lockorder`): inversions,
  cycles, undeclared/unregistered lock constructions, stale registry
  entries, malformed suppressions;
* guarded-write analysis (:mod:`repro.analysis.guards`);
* DESIGN.md drift: the lock-order table between the
  ``<!-- lock-table:begin -->`` / ``<!-- lock-table:end -->`` markers must
  equal :func:`repro.analysis.registry.design_table` (``--fix-design``
  rewrites it).

Also installed as the ``repro-lint`` console script.
"""

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis import lockorder
from repro.analysis.guards import check_guards
from repro.analysis.lockorder import Finding, analyze, collect_sources
from repro.analysis.registry import design_table

TABLE_BEGIN = "<!-- lock-table:begin -->"
TABLE_END = "<!-- lock-table:end -->"


def _default_root() -> str:
    """The ``src`` directory containing the installed ``repro`` package."""
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.dirname(package_dir)


def _default_design(root: str) -> Optional[str]:
    """DESIGN.md next to (or above) the analyzed tree: for ``src/repro``
    the file lives at the repo root, two levels up."""
    parent = os.path.dirname(os.path.abspath(root))
    for candidate_dir in (parent, os.path.dirname(parent)):
        candidate = os.path.join(candidate_dir, "DESIGN.md")
        if os.path.exists(candidate):
            return candidate
    return None


def check_design(path: str, fix: bool = False) -> List[Finding]:
    """Compare (or rewrite) DESIGN.md's generated lock table."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    begin = text.find(TABLE_BEGIN)
    end = text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        return [
            Finding(
                "design-drift",
                os.path.basename(path),
                1,
                f"missing {TABLE_BEGIN} / {TABLE_END} markers around the "
                "lock-order table",
            )
        ]
    current = text[begin + len(TABLE_BEGIN):end].strip("\n")
    expected = design_table()
    if current == expected:
        return []
    if fix:
        updated = (
            text[: begin + len(TABLE_BEGIN)]
            + "\n"
            + expected
            + "\n"
            + text[end:]
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(updated)
        return []
    line = text[:begin].count("\n") + 1
    return [
        Finding(
            "design-drift",
            os.path.basename(path),
            line,
            "DESIGN.md lock-order table is out of date with "
            "repro.analysis.registry; run 'python -m repro.analysis "
            "--fix-design'",
        )
    ]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static concurrency lint for the repro package",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="directory to analyze (default: the installed src/repro tree)",
    )
    parser.add_argument(
        "--design",
        default=None,
        help="DESIGN.md to check the generated lock table in "
        "(default: <root>/../DESIGN.md when present)",
    )
    parser.add_argument(
        "--no-design",
        action="store_true",
        help="skip the DESIGN.md drift check",
    )
    parser.add_argument(
        "--fix-design",
        action="store_true",
        help="rewrite the DESIGN.md lock table from the registry",
    )
    parser.add_argument(
        "--emit-design-table",
        action="store_true",
        help="print the generated lock table and exit",
    )
    options = parser.parse_args(argv)

    if options.emit_design_table:
        print(design_table())
        return 0

    root = options.root
    if root is None:
        root = os.path.join(_default_root(), "repro")
    if not os.path.isdir(root):
        print(f"repro-lint: no such directory: {root}", file=sys.stderr)
        return 2

    sources = collect_sources(root)
    findings = analyze(sources)
    findings += check_guards(sources)

    if not options.no_design:
        design = options.design or _default_design(root)
        if design is not None:
            findings += check_design(design, fix=options.fix_design)
        elif options.design is not None:
            print(
                f"repro-lint: no such design file: {options.design}",
                file=sys.stderr,
            )
            return 2

    if not findings:
        locks = len(lockorder.Registry().locks)
        print(
            f"repro-lint: clean — {len(sources)} modules, "
            f"{locks} registered locks, 0 findings"
        )
        return 0

    findings.sort(key=lambda finding: (finding.module, finding.line, finding.rule))
    for finding in findings:
        print(finding.render())
    print(f"repro-lint: {len(findings)} finding(s)")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
