"""Opt-in runtime lock-discipline checking (``REPRO_DEBUG_LOCKS=1``).

Every lock in ``src/repro`` is constructed through :func:`make_lock` /
:func:`make_rlock` with its registry name.  Normally these return plain
``threading`` primitives — zero overhead, byte-identical behaviour.  When
``REPRO_DEBUG_LOCKS=1`` is set they return :class:`OrderedLock` /
:class:`OrderedRLock` instead: each acquisition is checked against a
per-thread stack of held locks and a **non-ascending** acquisition (a lock
whose registry level is ≤ the level of any lock already held, other than a
legal re-entry of the same re-entrant instance) raises
:class:`LockOrderViolation` at the exact site a deadlock could form — the
static hierarchy of :mod:`repro.analysis.registry` asserted live, under the
real race suites.

The environment variable is read at *construction* time, so tests can flip
it per-engine without re-importing anything.  Checked acquisitions are
counted in a process-wide total (:func:`assertion_count`), which
``PrimaEngine.maintenance_report()`` surfaces as ``lock_assertions`` so a
stress run's artifact proves the checker actually engaged.
"""

import os
import threading
from typing import List, Optional, Tuple

from repro.analysis.registry import declared_count, lock_by_name

ENV_FLAG = "REPRO_DEBUG_LOCKS"

#: Per-thread stack of (lock object, name, level) currently held, in
#: acquisition order.  Only instrumented locks appear on it.
_held = threading.local()

#: Process-wide count of checked acquisitions; guarded by _counter_lock.
#: (The counter lock is internal to the checker: it is only ever held for
#: the increment itself, never across another acquisition.)
_assertions = 0
_counter_lock = threading.Lock()


class LockOrderViolation(RuntimeError):
    """A lock was acquired out of hierarchy order on one thread."""


def enabled() -> bool:
    """``True`` when ``REPRO_DEBUG_LOCKS=1`` is set right now."""
    return os.environ.get(ENV_FLAG) == "1"


def assertion_count() -> int:
    """Checked lock acquisitions so far, process-wide."""
    return _assertions


def locks_declared() -> int:
    """Number of locks in the registry (mirrors the registry count)."""
    return declared_count()


def held_locks() -> List[Tuple[str, int]]:
    """(name, level) of every instrumented lock this thread holds."""
    return [(name, level) for _lock, name, level in _stack()]


def _stack() -> List[Tuple[object, str, int]]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def _count_assertion() -> None:
    global _assertions
    with _counter_lock:
        _assertions += 1


class _OrderedBase:
    """Shared acquire/release bookkeeping for both instrumented kinds."""

    _reentrant = False

    def __init__(self, name: str, inner) -> None:
        spec = lock_by_name(name)
        if spec is None:
            raise LockOrderViolation(
                f"lock {name!r} is not declared in repro.analysis.registry; "
                "add a LockSpec with a level before constructing it"
            )
        expected = "RLock" if self._reentrant else "Lock"
        if spec.kind != expected:
            raise LockOrderViolation(
                f"lock {name!r} is registered as a {spec.kind} but was "
                f"constructed as a {expected}"
            )
        self.name = name
        self.level = spec.level
        self._inner = inner

    def _check_order(self) -> None:
        stack = _stack()
        for held_lock, held_name, held_level in stack:
            if held_lock is self:
                if self._reentrant:
                    return  # legal re-entry of the same RLock instance
                raise LockOrderViolation(
                    f"non-reentrant lock {self.name!r} (level {self.level}) "
                    "re-acquired by the thread already holding it"
                )
        worst = max(stack, key=lambda entry: entry[2], default=None)
        if worst is not None and self.level <= worst[2]:
            held_names = " -> ".join(
                f"{name}({level})" for _lock, name, level in stack
            )
            raise LockOrderViolation(
                f"lock order violation: acquiring {self.name!r} (level "
                f"{self.level}) while holding {worst[1]!r} (level "
                f"{worst[2]}); held stack: {held_names}"
            )

    def acquire(self, blocking: bool = True, timeout: float = -1):
        self._check_order()
        _count_assertion()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _stack().append((self, self.name, self.level))
        return acquired

    def release(self) -> None:
        stack = _stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is self:
                del stack[index]
                break
        self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "OrderedRLock" if self._reentrant else "OrderedLock"
        return f"{kind}({self.name!r}, level={self.level})"


class OrderedLock(_OrderedBase):
    """An instrumented ``threading.Lock`` asserting the registry order."""

    _reentrant = False

    def __init__(self, name: str) -> None:
        super().__init__(name, threading.Lock())

    def locked(self) -> bool:
        return self._inner.locked()


class OrderedRLock(_OrderedBase):
    """An instrumented ``threading.RLock`` asserting the registry order."""

    _reentrant = True

    def __init__(self, name: str) -> None:
        super().__init__(name, threading.RLock())


def make_lock(name: str):
    """A ``threading.Lock`` for the registered lock *name*.

    Plain and overhead-free normally; an order-asserting
    :class:`OrderedLock` when ``REPRO_DEBUG_LOCKS=1`` is set.
    """
    if enabled():
        return OrderedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A ``threading.RLock`` for the registered lock *name*.

    Plain and overhead-free normally; an order-asserting
    :class:`OrderedRLock` when ``REPRO_DEBUG_LOCKS=1`` is set.
    """
    if enabled():
        return OrderedRLock(name)
    return threading.RLock()


def checker_report() -> Optional[dict]:
    """``{"locks_declared", "lock_assertions"}`` while checking is active.

    ``None`` when ``REPRO_DEBUG_LOCKS`` is not set — callers splice the
    counters into their own reports only when the checker is live, so a
    silent no-op checker can never masquerade as an engaged one.
    """
    if not enabled() and _assertions == 0:
        return None
    return {
        "locks_declared": locks_declared(),
        "lock_assertions": assertion_count(),
    }
