"""``# guarded-by:`` — static checking of shared-attribute writes.

Shared mutable attributes are annotated at their initialisation site::

    self._feed = []  # guarded-by: ReplicationHub._feed_lock

From then on every **write** to ``self._feed`` anywhere in the class — an
assignment, an augmented assignment, a ``del``, a subscript store, or a
call of a known mutator method (``append``, ``pop``, ``update``, …) — must
be one of:

* lexically inside a ``with`` statement that resolves to the declared
  lock (resolution rules are shared with :mod:`repro.analysis.lockorder`);
* inside a function annotated ``# requires: <lock>`` (on its ``def`` line
  or the line directly above) — the annotation asserts every caller holds
  the lock, and the lock-order analyzer sees those callers' ``with``
  blocks;
* inside ``__init__`` of the owning class (construction is single-threaded
  by definition);
* suppressed with ``# lock-lint: ignore[unguarded-write] — <reason>``.

Anything else is an ``unguarded-write`` finding.  Reads are deliberately
out of scope: the codebase's read paths are lock-free by design (atomic
dict/tuple snapshots), and flagging them would force suppressions on
every hot path.
"""

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lockorder import (
    UNRESOLVED,
    CommentMap,
    Finding,
    Registry,
    Scope,
    _collect_attr_types,
    _parameter_annotations,
    resolve_lock,
    scan_comments,
)

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)")
_REQUIRES = re.compile(r"#\s*requires:\s*([A-Za-z_][\w.]*)")

#: Method calls on an attribute that mutate it in place.
MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "__setitem__",
    "__delitem__", "appendleft", "popleft",
}


@dataclass(frozen=True)
class GuardDecl:
    cls: str
    attribute: str
    lock_name: str
    line: int


def _declared_guards(
    module: str,
    tree: ast.Module,
    comments: CommentMap,
    registry: Registry,
    findings: List[Finding],
) -> Dict[Tuple[str, str], GuardDecl]:
    """Collect ``# guarded-by:`` declarations from assignment lines."""
    guards: Dict[Tuple[str, str], GuardDecl] = {}
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        for node in ast.walk(class_node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            comment = comments.comments.get(node.lineno, "")
            match = _GUARDED_BY.search(comment)
            if not match:
                continue
            lock_name = match.group(1)
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            attribute: Optional[str] = None
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attribute = target.attr
            if attribute is None:
                findings.append(
                    Finding(
                        "bad-guard",
                        module,
                        node.lineno,
                        "guarded-by comment on a line that does not assign a "
                        "self attribute",
                    )
                )
                continue
            if lock_name not in registry.by_name:
                findings.append(
                    Finding(
                        "bad-guard",
                        module,
                        node.lineno,
                        f"guarded-by names unregistered lock {lock_name!r}",
                    )
                )
                continue
            guards[(class_node.name, attribute)] = GuardDecl(
                class_node.name, attribute, lock_name, node.lineno
            )
    return guards


def _function_requirements(
    node: ast.FunctionDef, comments: CommentMap
) -> Set[str]:
    """Locks a ``# requires:`` annotation asserts are held on entry."""
    required: Set[str] = set()
    for line in (node.lineno, node.lineno - 1):
        comment = comments.comments.get(line, "")
        for match in _REQUIRES.finditer(comment):
            required.add(match.group(1))
    # Decorated functions: the def line is below the decorators.
    if node.decorator_list:
        for line in (node.body[0].lineno - 1,):
            comment = comments.comments.get(line, "")
            for match in _REQUIRES.finditer(comment):
                required.add(match.group(1))
    return required


class _WriteChecker(ast.NodeVisitor):
    """Finds writes to guarded ``self.<attr>`` outside the declared lock."""

    def __init__(
        self,
        module: str,
        cls: str,
        function: ast.FunctionDef,
        guards: Dict[Tuple[str, str], GuardDecl],
        required: Set[str],
        scope: Scope,
        registry: Registry,
        comments: CommentMap,
        findings: List[Finding],
    ) -> None:
        self.module = module
        self.cls = cls
        self.function = function
        self.guards = guards
        self.required = required
        self.scope = scope
        self.registry = registry
        self.comments = comments
        self.findings = findings
        self.held_names: List[str] = []
        self.is_init = function.name == "__init__"

    # -- held tracking (with blocks only; mirrors the lockorder walker) --
    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            resolved = resolve_lock(item.context_expr, self.scope, self.registry)
            if resolved is not None and resolved is not UNRESOLVED:
                self.held_names.append(resolved.name)
                pushed += 1
        for statement in node.body:
            self.visit(statement)
        for _ in range(pushed):
            self.held_names.pop()

    visit_AsyncWith = visit_With

    # -- write sites -----------------------------------------------------
    def _self_attribute(self, node: ast.expr) -> Optional[str]:
        """``attr`` when *node* is ``self.attr`` (or targets its contents)."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _check_write(self, attribute: Optional[str], line: int, what: str) -> None:
        if attribute is None:
            return
        declaration = self.guards.get((self.cls, attribute))
        if declaration is None:
            return
        if self.is_init or line == declaration.line:
            return  # the declaration site itself is the initialisation write
        lock_name = declaration.lock_name
        if lock_name in self.held_names or lock_name in self.required:
            return
        if self.comments.suppressed(line, "unguarded-write"):
            return
        self.findings.append(
            Finding(
                "unguarded-write",
                self.module,
                line,
                f"{what} of self.{attribute} (guarded by {lock_name!r}) in "
                f"{self.cls}.{self.function.name} outside the lock; wrap it "
                f"in 'with ...' or annotate the function '# requires: "
                f"{lock_name}'",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write(self._self_attribute(target), node.lineno, "write")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(self._self_attribute(node.target), node.lineno, "write")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_write(self._self_attribute(node.target), node.lineno, "write")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write(self._self_attribute(target), node.lineno, "delete")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        if isinstance(function, ast.Attribute) and function.attr in MUTATORS:
            self._check_write(
                self._self_attribute(function.value), node.lineno, f"{function.attr}()"
            )
        self.generic_visit(node)

    # Nested defs inherit the lexical held set (thunks run under the same
    # or a deeper lock — the same approximation the lockorder walker makes).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for statement in node.body:
            self.visit(statement)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


def check_guards(
    sources: Dict[str, str], registry: Optional[Registry] = None
) -> List[Finding]:
    """Run the guarded-write check over *sources*; returns findings."""
    registry = registry or Registry()
    findings: List[Finding] = []

    class_names: Set[str] = set()
    trees: Dict[str, ast.Module] = {}
    for module, source in sorted(sources.items()):
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # lockorder reports it
        trees[module] = tree
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                class_names.add(node.name)
    attr_types: Dict[Tuple[str, str], str] = {}
    for tree in trees.values():
        attr_types.update(_collect_attr_types(tree, class_names))

    for module, tree in sorted(trees.items()):
        comments = scan_comments(sources[module])
        guards = _declared_guards(module, tree, comments, registry, findings)
        if not guards:
            continue
        for class_node in tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            for function in class_node.body:
                if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                required = _function_requirements(function, comments)
                scope = Scope(
                    module,
                    class_node.name,
                    _parameter_annotations(function),
                    attr_types,
                )
                checker = _WriteChecker(
                    module,
                    class_node.name,
                    function,
                    guards,
                    required,
                    scope,
                    registry,
                    comments,
                    findings,
                )
                for statement in function.body:
                    checker.visit(statement)
    return findings
