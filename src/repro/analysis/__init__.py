"""Static + runtime concurrency analysis for the reproduction.

The package enforces the lock discipline DESIGN.md's "Threading model"
section documents:

* :mod:`repro.analysis.registry` — the machine-readable lock registry.
  Every ``threading.Lock``/``RLock`` in ``src/repro`` is declared here with
  a numeric *level*; locks may only be acquired in strictly ascending level
  order.  DESIGN.md's lock-order table is generated from this registry
  (``python -m repro.analysis --emit-design-table``), so prose and code
  cannot drift apart.

* :mod:`repro.analysis.lockorder` — an AST-based static analyzer.  It maps
  every ``with <lock>:`` / ``<lock>.acquire()`` site to a registry entry,
  propagates held-lock sets through an intra-package call graph, and
  reports inversions (acquiring a lock at a level ≤ one already held),
  cycles in the acquired-while-held graph, and undeclared lock
  constructions.

* :mod:`repro.analysis.guards` — checks ``# guarded-by: <lock>``
  annotations on shared mutable attributes: every write must be lexically
  inside a ``with`` of that lock or in a function annotated
  ``# requires: <lock>``.

* :mod:`repro.analysis.runtime` — the opt-in instrumented locks behind
  ``REPRO_DEBUG_LOCKS=1``: every lock in the codebase is built through
  :func:`~repro.analysis.runtime.make_lock` / ``make_rlock``, which return
  plain ``threading`` primitives normally and order-asserting wrappers
  (per-thread held stack, raise on non-ascending acquisition) when the
  variable is set — the static hierarchy is then also asserted live under
  the race suites.

Run the whole suite of checks with ``python -m repro.analysis`` (or the
``repro-lint`` entry point); it exits non-zero on any finding.  Findings
are suppressed inline with ``# lock-lint: ignore[<rule>] — <reason>`` and
the reason is mandatory.
"""

from repro.analysis.registry import LOCKS, LockSpec, lock_by_name  # noqa: F401
