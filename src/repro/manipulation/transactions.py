"""Minimal transaction support: an undo log over atom and link manipulation.

The paper's manipulation facilities presume that a complex-object update is
applied atomically.  :class:`Transaction` provides that at the library level:
operations performed through it are recorded in an undo log and rolled back as
a unit on :meth:`Transaction.rollback` (or when the ``with`` block exits with
an exception).  This is deliberately a logical undo log, not a full
concurrency-control subsystem — the paper does not describe one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.atom import Atom
from repro.core.database import Database
from repro.core.link import Link
from repro.exceptions import ManipulationError, TransactionError


class TransactionLog:
    """An ordered list of undo actions."""

    def __init__(self) -> None:
        self._undo: List[Callable[[], None]] = []

    def record(self, undo: Callable[[], None]) -> None:
        """Append an undo action."""
        self._undo.append(undo)

    def undo_all(self) -> int:
        """Run all undo actions in reverse order; returns the number executed."""
        count = 0
        while self._undo:
            action = self._undo.pop()
            action()
            count += 1
        return count

    def clear(self) -> None:
        """Drop all recorded actions (commit)."""
        self._undo.clear()

    def __len__(self) -> int:
        return len(self._undo)


class Transaction:
    """Context manager bundling atom/link operations with rollback support.

    Example::

        with Transaction(db) as txn:
            state = txn.insert_atom("state", name="Tocantins", code="TO", hectare=500)
            area = txn.insert_atom("area", area_id="a_new")
            txn.connect("state-area", state, area)
            # leaving the block commits; an exception rolls everything back
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self.log = TransactionLog()
        self._active = False

    # ------------------------------------------------------------- lifecycle

    def __enter__(self) -> "Transaction":
        self.begin()
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    def begin(self) -> None:
        """Start the transaction."""
        if self._active:
            raise TransactionError("transaction already active")
        self._active = True

    def commit(self) -> None:
        """Make all changes permanent."""
        self._require_active()
        self.log.clear()
        self._active = False

    def rollback(self) -> int:
        """Undo all changes made through this transaction; returns the undo count."""
        self._require_active()
        undone = self.log.undo_all()
        self._active = False
        return undone

    def _require_active(self) -> None:
        if not self._active:
            raise TransactionError("no active transaction")

    # ------------------------------------------------------------ operations

    def insert_atom(self, atom_type_name: str, identifier: Optional[str] = None, **values) -> Atom:
        """Insert an atom, recording its removal as the undo action."""
        return self.insert_atom_values(atom_type_name, values, identifier=identifier)

    def insert_atom_values(
        self,
        atom_type_name: str,
        values: Mapping[str, object],
        identifier: Optional[str] = None,
    ) -> Atom:
        """Keyword-collision-free variant of :meth:`insert_atom`.

        The write operators pass user-supplied attribute mappings through
        here, where an attribute named ``identifier`` cannot clash with the
        parameter of the ``**values`` convenience form.
        """
        self._require_active()
        atom_type = self.database.atyp(atom_type_name)
        atom = atom_type.add(dict(values), identifier=identifier)
        self.log.record(lambda: atom_type.remove(atom.identifier))
        return atom

    def delete_atom(self, atom_type_name: str, identifier: str) -> Atom:
        """Delete an atom (and its links), recording re-insertion as the undo action."""
        self._require_active()
        atom_type = self.database.atyp(atom_type_name)
        atom = atom_type.get(identifier)
        if atom is None:
            raise TransactionError(f"no atom {identifier!r} in {atom_type_name!r}")
        removed_links: List[Tuple[str, Tuple[str, str]]] = []
        for link_type in self.database.link_types_of(atom_type_name):
            for link in link_type.links_of(identifier):
                removed_links.append((link_type.name, link.given_order))
                link_type.remove(link)
        atom_type.remove(identifier)

        def undo() -> None:
            atom_type.add(atom)
            for link_type_name, (first, second) in removed_links:
                self.database.ltyp(link_type_name).connect(first, second)

        self.log.record(undo)
        return atom

    def connect(self, link_type_name: str, first: "Atom | str", second: "Atom | str") -> Link:
        """Insert a link, recording its removal as the undo action.

        Connecting an already-linked pair is a no-op (links are sets), so no
        undo action is recorded for it — a rollback must not take away a link
        that existed before the transaction.
        """
        link = self.connect_new(link_type_name, first, second)
        if link is None:
            # Already linked: LinkType.add is idempotent and returns a link
            # carrying the type's endpoint types, without emitting an event.
            return self.database.ltyp(link_type_name).connect(first, second)
        return link

    def connect_new(
        self, link_type_name: str, first: "Atom | str", second: "Atom | str"
    ) -> Optional[Link]:
        """Insert a link with undo logging; ``None`` when it already existed.

        This is the canonical logged-connect protocol: pre-existing links
        (e.g. a shared subobject re-reached through another parent) survive a
        rollback because no undo action is recorded for them.  The return
        value tells callers whether a link was actually created.
        """
        self._require_active()
        link_type = self.database.ltyp(link_type_name)
        probe = Link(link_type_name, first, second)
        if probe in link_type:
            return None
        link = link_type.connect(first, second)
        self.log.record(lambda: link_type.remove(link))
        return link

    def modify_atom(self, atom_type_name: str, identifier: str, **updates) -> Atom:
        """Modify an atom's values in place, recording restoration of the old atom."""
        return self.modify_atom_values(atom_type_name, identifier, updates)

    def modify_atom_values(
        self, atom_type_name: str, identifier: str, updates: Mapping[str, object]
    ) -> Atom:
        """Keyword-collision-free variant of :meth:`modify_atom`.

        The replacement preserves the atom's identity (links stay valid) and
        raises :class:`ManipulationError` when an update violates the
        attribute domain — in which case nothing has been changed.  The write
        operators pass user-supplied attribute mappings through here, where
        an attribute named ``identifier`` cannot clash with the parameters of
        the ``**updates`` convenience form.
        """
        self._require_active()
        atom_type = self.database.atyp(atom_type_name)
        old = atom_type.get(identifier)
        if old is None:
            raise TransactionError(f"no atom {identifier!r} in {atom_type_name!r}")
        merged = old.values
        merged.update(updates)
        try:
            validated = atom_type.description.validate_values(merged)
        except Exception as exc:
            raise ManipulationError(
                f"invalid update for atom {identifier!r}: {exc}"
            ) from exc
        new_atom = atom_type.replace(Atom(atom_type_name, validated, identifier=identifier))
        self.log.record(lambda: atom_type.replace(old))
        return new_atom
