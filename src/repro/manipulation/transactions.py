"""Transactions: write-sets, first-committer-wins commits, and undo logging.

The paper's manipulation facilities presume that a complex-object update is
applied atomically; since the MVCC change this module also makes *interleaved*
transactions safe.  A :class:`Transaction` over a database with versioning
enabled (see :meth:`repro.core.database.Database.enable_versioning`) carries:

* a **write-set** of conflict keys — one per atom or link the transaction
  wrote.  Before every write the key is checked against the write-sets of all
  other *active* transactions and against the database's **commit log**
  (commits newer than this transaction's start); either overlap raises
  :class:`~repro.exceptions.TransactionConflictError` immediately, and the
  commit-log check is repeated at :meth:`commit` — **first committer wins**,
  the loser is rolled back completely and leaves no partial state.
* an optional pinned :class:`~repro.core.versions.Snapshot` (session
  transactions, e.g. MQL ``BEGIN WORK``): reads through the snapshot see the
  database as of ``begin`` *plus* this transaction's own writes (the write
  generations are tracked in the snapshot's ``own`` set — including the
  compensating generations of partial rollbacks).
* the **undo log** of callables, demoted to the intra-statement rollback
  mechanism: :meth:`savepoint`/:meth:`rollback_to` undo a failed statement
  inside a longer transaction, and :meth:`rollback` undoes everything.

On a database without versioning the transaction degrades to the historical
pure undo-log behaviour (no conflict detection, no snapshot).

**Thread safety.**  Each :class:`Transaction` instance belongs to the thread
that drives it (one writer = one thread), but *different* transactions may
run on different threads concurrently: claims, registration, commit
validation, the commit-log append and the durability hook are serialized on
the versioning state's engine lock, undo/redo mutations take the per-type
head locks, and writer attribution is thread-local — see DESIGN.md
"Threading model".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.database import Database
from repro.core.link import Link, LinkType
from repro.core.versions import Snapshot, WriteKey, atom_key, link_key
from repro.exceptions import (
    ManipulationError,
    TransactionConflictError,
    TransactionError,
)


class TransactionLog:
    """An ordered list of undo actions."""

    def __init__(self) -> None:
        self._undo: List[Callable[[], None]] = []

    def record(self, undo: Callable[[], None]) -> None:
        """Append an undo action."""
        self._undo.append(undo)

    def undo_all(self) -> int:
        """Run all undo actions in reverse order; returns the number executed."""
        return self.undo_to(0)

    def undo_to(self, mark: int) -> int:
        """Undo back to *mark* (a former length); returns the number executed."""
        count = 0
        while len(self._undo) > mark:
            action = self._undo.pop()
            action()
            count += 1
        return count

    def clear(self) -> None:
        """Drop all recorded actions (commit)."""
        self._undo.clear()

    def __len__(self) -> int:
        return len(self._undo)


class Transaction:
    """Context manager bundling atom/link operations with rollback support.

    Example::

        with Transaction(db) as txn:
            state = txn.insert_atom("state", name="Tocantins", code="TO", hectare=500)
            area = txn.insert_atom("area", area_id="a_new")
            txn.connect("state-area", state, area)
            # leaving the block commits; an exception rolls everything back

    With *pin_snapshot* the transaction pins the begin-time generation and
    exposes :attr:`snapshot` — the repeatable-read visibility MQL sessions
    use (``BEGIN WORK``).  Requires versioning to be enabled on the database.
    """

    def __init__(self, database: Database, pin_snapshot: bool = False) -> None:
        self.database = database
        self.log = TransactionLog()
        self._active = False
        self._pin_snapshot = pin_snapshot
        self._state = None  # the database's VersioningState while active
        self._pinned_generation: Optional[int] = None
        #: Generation the transaction began at (conflict-detection baseline).
        self.start_generation = 0
        #: Conflict keys of every atom/link this transaction wrote.
        self.write_keys: Set[WriteKey] = set()
        #: Generations produced by this transaction's writes (and undos).
        self._own_generations: Set[int] = set()
        #: Repeatable-read snapshot (session transactions only).
        self.snapshot: Optional[Snapshot] = None
        #: ``True`` once this transaction's entry is in the MVCC commit log
        #: (set in :meth:`commit`; a retried commit skips straight to the
        #: durability hook instead of re-validating against itself).
        self._commit_logged = False

    # ------------------------------------------------------------- lifecycle

    def __enter__(self) -> "Transaction":
        self.begin()
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        if exc_type is None:
            self.commit()
        elif self._active:
            self.rollback()
        return False

    def begin(self) -> None:
        """Start the transaction (registers it for conflict detection).

        Registration — start-generation read, active-set entry and the
        optional snapshot pin — happens in one critical section of the
        versioning state's engine lock, so a concurrent committer can never
        slip its commit between this transaction's baseline and its
        registration.
        """
        if self._active:
            raise TransactionError("transaction already active")
        self._active = True
        state = self.database.versioning
        self._state = state
        if state is not None:
            with state.lock:
                if getattr(state, "fenced", False):
                    self._active = False
                    raise TransactionError(
                        "engine is fenced (a follower was promoted); "
                        "writes must go to the promoted engine"
                    )
                self.start_generation = state.generation
                state.active_transactions.add(self)
                if self._pin_snapshot:
                    self._pinned_generation = state.pin(state.generation)
                    self.snapshot = state.make_snapshot(own=self._own_generations)
        elif self._pin_snapshot:
            raise TransactionError(
                "snapshot transactions require versioning; call "
                "Database.enable_versioning() first"
            )

    def commit(self) -> None:
        """Publish all changes; first committer wins on conflicting write-sets.

        Re-validates the write-set against the commit log: if any key was
        committed by another transaction after this one began, every change
        is undone and :class:`TransactionConflictError` is raised — the
        transaction leaves no partial state.

        Committers are serialized on the versioning state's engine lock:
        validation, the commit-log append and the durability hook (the WAL
        record) form one critical section, so racing threads commit in a
        total order and the WAL record order matches the commit-log order.
        The loser's rollback runs *outside* the lock (undo takes per-type
        head locks; its keys stay claimed until :meth:`_finish`).
        """
        self._require_active()
        state = self._state
        if state is not None:
            conflicting = None
            fenced = False
            with state.lock:
                if not self._commit_logged and getattr(state, "fenced", False):
                    # The engine was fenced by a replica promotion after this
                    # transaction began: its writes must not reach the commit
                    # log (the promoted follower already took the final feed
                    # cut).  Abort exactly like a conflict loser.
                    fenced = True
                if not fenced and not self._commit_logged:
                    conflicting = state.committed_after(
                        self.start_generation, self.write_keys
                    )
                    if conflicting is None:
                        state.record_commit(self.write_keys)
                        # A retried commit (after e.g. a WAL append failure
                        # below) must not re-validate against — or re-append —
                        # its own commit-log entry: the MVCC publish already
                        # happened.
                        self._commit_logged = True
                if conflicting is None and not fenced:
                    # Durability point: the WAL hook appends this
                    # transaction's commit record here, atomically with the
                    # MVCC commit-log entry.  On failure the transaction
                    # stays active and commit() is retryable.
                    state.notify_transaction_finished(self, committed=True)
            if fenced:
                with self._tracked():
                    self.log.undo_all()
                self._finish()
                state.notify_transaction_finished(self, committed=False)
                raise TransactionError(
                    "engine was fenced (a follower was promoted) before this "
                    "transaction committed; all changes were rolled back"
                )
            if conflicting is not None:
                with self._tracked():
                    self.log.undo_all()
                self._finish()
                state.notify_transaction_finished(self, committed=False)
                raise TransactionConflictError(
                    f"{conflicting!r} was committed by a concurrent transaction "
                    "after this one began (first committer wins)"
                )
        self.log.clear()
        self._finish()

    def rollback(self) -> int:
        """Undo all changes made through this transaction; returns the undo count."""
        self._require_active()
        with self._tracked():
            undone = self.log.undo_all()
        self._finish()
        if self._state is not None:
            self._state.notify_transaction_finished(self, committed=False)
        return undone

    def _finish(self) -> None:
        self._active = False
        state = self._state
        if state is not None:
            with state.lock:
                state.active_transactions.discard(self)
                state.prune_commit_log()
                pinned = self._pinned_generation
                self._pinned_generation = None
                still_recording = state.recording
            # GC runs outside the engine lock — truncation takes the
            # per-type head locks, which must never nest inside it.
            if pinned is not None:
                self.database.release_pin(pinned)
            elif not still_recording:
                # Last transaction out with no reader pinned: the chains
                # recorded for mid-flight pin safety are unreachable now.
                # (A pin or transaction that sneaks in concurrently is safe:
                # collect_versions re-reads the horizon under the lock.)
                self.database.collect_versions()

    def _require_active(self) -> None:
        if not self._active:
            raise TransactionError("no active transaction")

    @property
    def is_active(self) -> bool:
        """``True`` between ``begin`` and ``commit``/``rollback``."""
        return self._active

    @property
    def own_generations(self) -> Set[int]:
        """The write generations this transaction has produced so far.

        Consulted by :meth:`VersioningState.make_snapshot` so snapshots taken
        while this transaction is still active exclude its uncommitted
        writes (no dirty reads).
        """
        return self._own_generations

    # ------------------------------------------------------------ savepoints

    def savepoint(self) -> int:
        """Mark the current undo position (statement boundary)."""
        return len(self.log)

    def rollback_to(self, mark: int) -> int:
        """Undo back to *mark* — intra-statement rollback; the transaction
        stays active.  Compensating write generations join the transaction's
        ``own`` set so a pinned session snapshot sees the restored state."""
        self._require_active()
        with self._tracked():
            return self.log.undo_to(mark)

    # -------------------------------------------------- write-set bookkeeping

    def _claim(self, key: WriteKey) -> None:
        """Check *key* against concurrent writers, then add it to the write-set.

        Check and claim happen in one critical section of the engine lock:
        of two threads claiming the same key concurrently, exactly one sees
        the other's entry and aborts with a conflict.
        """
        if self._state is not None:
            with self._state.lock:
                self._state.check_write(key, self)
                self.write_keys.add(key)

    def _record_key(self, key: WriteKey) -> None:
        """Add *key* without a conflict check (freshly created objects)."""
        if self._state is not None:
            with self._state.lock:
                self.write_keys.add(key)

    @contextmanager
    def _tracked(self):
        """Collect the generations ticked inside the block into ``own``.

        While the block runs, the versioning state's (thread-local)
        ``current_writer`` names this transaction so event listeners (the
        engine's WAL buffer) can attribute every emitted change event to its
        writer.  Undo blocks run tracked too: their compensating events join
        the same buffer, which a rollback then discards wholesale.

        The generations are captured through the state's per-thread tick
        sink — exact, even while other threads tick the shared clock — and
        each one joins ``own`` *inside* :meth:`VersioningState.tick`'s
        critical section, so a snapshot built mid-block (which iterates
        ``own_generations`` under the same lock) already excludes every
        in-flight write: there is no window for a dirty read.
        """
        state = self._state
        if state is None:
            yield
            return
        token = state.begin_tracking(self, own=self._own_generations)
        try:
            yield
        finally:
            state.end_tracking(token)

    # ------------------------------------------------------------ operations

    def insert_atom(self, atom_type_name: str, identifier: Optional[str] = None, **values) -> Atom:
        """Insert an atom, recording its removal as the undo action."""
        return self.insert_atom_values(atom_type_name, values, identifier=identifier)

    def insert_atom_values(
        self,
        atom_type_name: str,
        values: Mapping[str, object],
        identifier: Optional[str] = None,
    ) -> Atom:
        """Keyword-collision-free variant of :meth:`insert_atom`.

        The write operators pass user-supplied attribute mappings through
        here, where an attribute named ``identifier`` cannot clash with the
        parameter of the ``**values`` convenience form.
        """
        self._require_active()
        atom_type = self.database.atyp(atom_type_name)
        if identifier is not None:
            # Re-creating a known identifier races with concurrent writers.
            self._claim(atom_key(atom_type.name, identifier))
        with self._tracked():
            atom = atom_type.add(dict(values), identifier=identifier)
        self._record_key(atom_key(atom_type.name, atom.identifier))
        self.log.record(lambda: atom_type.remove(atom.identifier))
        return atom

    def delete_atom(self, atom_type_name: str, identifier: str) -> Atom:
        """Delete an atom (and its links), recording re-insertion as the undo action."""
        self._require_active()
        atom_type = self.database.atyp(atom_type_name)
        atom = atom_type.get(identifier)
        if atom is None:
            raise TransactionError(f"no atom {identifier!r} in {atom_type_name!r}")
        removed_links: List[Tuple[str, Tuple[str, str]]] = []
        incident: List[Tuple[LinkType, Link]] = []
        for link_type in self.database.link_types_of(atom_type_name):
            for link in link_type.links_of(identifier):
                incident.append((link_type, link))
        # Claim every key before the first mutation: a conflict must abort
        # the operation without partial effects.
        self._claim(atom_key(atom_type.name, identifier))
        for link_type, link in incident:
            self._claim(link_key(link_type.name, link.identifiers))
        with self._tracked():
            for link_type, link in incident:
                removed_links.append((link_type.name, link.given_order))
                link_type.remove(link)
            atom_type.remove(identifier)

        def undo() -> None:
            atom_type.add(atom)
            for link_type_name, (first, second) in removed_links:
                self.database.ltyp(link_type_name).connect(first, second)

        self.log.record(undo)
        return atom

    def connect(self, link_type_name: str, first: "Atom | str", second: "Atom | str") -> Link:
        """Insert a link, recording its removal as the undo action.

        Connecting an already-linked pair is a no-op (links are sets), so no
        undo action is recorded for it — a rollback must not take away a link
        that existed before the transaction.
        """
        link = self.connect_new(link_type_name, first, second)
        if link is None:
            # Already linked: LinkType.add is idempotent and returns a link
            # carrying the type's endpoint types, without emitting an event.
            return self.database.ltyp(link_type_name).connect(first, second)
        return link

    def connect_new(
        self, link_type_name: str, first: "Atom | str", second: "Atom | str"
    ) -> Optional[Link]:
        """Insert a link with undo logging; ``None`` when it already existed.

        This is the canonical logged-connect protocol: pre-existing links
        (e.g. a shared subobject re-reached through another parent) survive a
        rollback because no undo action is recorded for them.  The return
        value tells callers whether a link was actually created.
        """
        self._require_active()
        link_type = self.database.ltyp(link_type_name)
        probe = Link(link_type_name, first, second)
        if probe in link_type:
            return None
        self._claim(link_key(link_type.name, probe.identifiers))
        with self._tracked():
            link = link_type.connect(first, second)
        self.log.record(lambda: link_type.remove(link))
        return link

    def disconnect(self, link_type_name: str, link: Link) -> None:
        """Remove one link, recording its re-connection as the undo action.

        Used by the delete write operator so every individual link removal
        carries its own conflict key and undo entry.
        """
        self._require_active()
        link_type = self.database.ltyp(link_type_name)
        if link not in link_type:
            return
        self._claim(link_key(link_type.name, link.identifiers))
        first, second = link.given_order
        with self._tracked():
            link_type.remove(link)
        self.log.record(lambda lt=link_type, f=first, s=second: lt.connect(f, s))

    def remove_atom_only(self, atom_type: AtomType, stored: Atom) -> None:
        """Remove *stored* from its occurrence (links must already be gone).

        The low-level primitive of the delete write operator: claims the
        conflict key, removes and records re-insertion as the undo action.
        """
        self._require_active()
        self._claim(atom_key(atom_type.name, stored.identifier))
        with self._tracked():
            atom_type.remove(stored.identifier)
        self.log.record(lambda at=atom_type, a=stored: at.add(a))

    def modify_atom(self, atom_type_name: str, identifier: str, **updates) -> Atom:
        """Modify an atom's values in place, recording restoration of the old atom."""
        return self.modify_atom_values(atom_type_name, identifier, updates)

    def modify_atom_values(
        self, atom_type_name: str, identifier: str, updates: Mapping[str, object]
    ) -> Atom:
        """Keyword-collision-free variant of :meth:`modify_atom`.

        The replacement preserves the atom's identity (links stay valid) and
        raises :class:`ManipulationError` when an update violates the
        attribute domain — in which case nothing has been changed.  The write
        operators pass user-supplied attribute mappings through here, where
        an attribute named ``identifier`` cannot clash with the parameters of
        the ``**updates`` convenience form.
        """
        self._require_active()
        atom_type = self.database.atyp(atom_type_name)
        old = atom_type.get(identifier)
        if old is None:
            raise TransactionError(f"no atom {identifier!r} in {atom_type_name!r}")
        merged = old.values
        merged.update(updates)
        try:
            validated = atom_type.description.validate_values(merged)
        except Exception as exc:
            raise ManipulationError(
                f"invalid update for atom {identifier!r}: {exc}"
            ) from exc
        self._claim(atom_key(atom_type.name, identifier))
        with self._tracked():
            new_atom = atom_type.replace(Atom(atom_type_name, validated, identifier=identifier))
        self.log.record(lambda: atom_type.replace(old))
        return new_atom
