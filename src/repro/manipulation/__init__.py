"""Manipulation facilities: molecule-level insert/delete/modify with integrity maintenance."""

from repro.manipulation.operations import (
    delete_molecule,
    insert_molecule,
    modify_atom,
)
from repro.manipulation.transactions import Transaction, TransactionLog

__all__ = [
    "Transaction",
    "TransactionLog",
    "delete_molecule",
    "insert_molecule",
    "modify_atom",
]
