"""Molecule-level manipulation: insert, delete and modify with integrity maintenance.

The paper demands "powerful manipulation facilities" alongside dynamic object
definition.  Because molecules are derived — not stored — objects, molecule
manipulation decomposes into atom and link manipulation that keeps the atom
networks consistent.  Since the write pipeline landed, these functions are
thin wrappers over single-node **write plans**: each builds the corresponding
physical write operator (:mod:`repro.engine.write`) and executes it through
:meth:`~repro.engine.executor.Executor.run_write`, inside an undo-logged
:class:`~repro.manipulation.transactions.Transaction` — so every operation is
atomic, and a failure halfway through a sweep (e.g. an integrity error on a
later child of an insert) leaves no orphan atoms or dangling links behind.

* :func:`insert_molecule` inserts a nested-dictionary object following a
  molecule-type description, creating the atoms and the connecting links in
  one sweep (and reusing existing atoms when an ``_id`` is supplied — that is
  how shared subobjects are created);
* :func:`delete_molecule` removes a molecule's atoms and links, *retaining*
  atoms that are shared with other molecules unless asked to cascade;
* :func:`modify_atom` updates attribute values in place, preserving the atom's
  identity so all links (and hence all molecules containing it) stay valid.

MQL's ``INSERT`` / ``DELETE`` / ``MODIFY`` statements run the same operators
(with a planner-optimized qualifying read for δ/μ), so the two entry points
produce identical database states — the DML parity tests assert exactly that.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.atom import Atom
from repro.core.database import Database
from repro.core.derivation import resolve_description
from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.engine.executor import Executor
from repro.engine.physical import MoleculeSource
from repro.engine.write import DeleteMoleculesOp, InsertMoleculeOp, ModifyAtomsOp
from repro.exceptions import ManipulationError


def insert_molecule(
    database: Database,
    description: MoleculeTypeDescription,
    data: Mapping[str, object],
) -> Molecule:
    """Insert one complex object described by *data* following *description*.

    *data* is a nested dictionary: the top level holds the root atom's
    attribute values; children are given under keys named after the child
    atom types, each a list of nested dictionaries.  A node carrying ``"_id"``
    refers to an *existing* atom of that type (creating a shared subobject)
    instead of creating a new one.

    Returns the freshly derived molecule rooted at the inserted root atom.
    The sweep is transactional: a failure on any child rolls back every atom
    and link created so far.
    """
    description = resolve_description(database, description)
    operator = InsertMoleculeOp("inserted", description, data)
    result = Executor(database).run_write(operator)
    return result.molecule_type.occurrence[0]


def delete_molecule(
    database: Database,
    molecule: Molecule,
    cascade: bool = False,
) -> Dict[str, int]:
    """Delete *molecule* from the database.

    Without *cascade*, only atoms **exclusive** to this molecule (not linked to
    any atom outside it) are removed; shared subobjects survive, along with
    the links among surviving atoms.  With *cascade*, every component atom is
    removed regardless of sharing.  All links incident to a removed atom are
    removed as well, so the database never contains dangling links.

    Returns counters ``{"atoms_removed": ..., "links_removed": ..., "atoms_kept": ...}``.
    """
    source = MoleculeSource(
        MoleculeType("delete_source", molecule.description, (molecule,))
    )
    result = Executor(database).run_write(DeleteMoleculesOp(source, cascade))
    summary = result.summary
    return {
        "atoms_removed": summary.atoms_removed,
        "links_removed": summary.links_removed,
        "atoms_kept": summary.atoms_kept,
    }


def modify_atom(
    database: Database,
    atom_type_name: str,
    identifier: str,
    **updates: object,
) -> Atom:
    """Update attribute values of an existing atom, preserving its identity.

    Because links reference atoms by identifier, every molecule containing the
    atom reflects the change on its next derivation — no link maintenance is
    needed.  Raises :class:`ManipulationError` when the atom does not exist or
    an update violates the attribute domain.
    """
    atom_type = database.atyp(atom_type_name)
    atom = atom_type.get(identifier)
    if atom is None:
        raise ManipulationError(f"no atom {identifier!r} in atom type {atom_type_name!r}")
    source = MoleculeSource(
        MoleculeType(
            "modify_source",
            MoleculeTypeDescription([atom.type_name], []),
            (Molecule(atom, (atom,), ()),),
        )
    )
    operator = ModifyAtomsOp(source, atom_type_name, tuple(updates.items()))
    Executor(database).run_write(operator)
    return atom_type.get(identifier)
