"""Molecule-level manipulation: insert, delete and modify with integrity maintenance.

The paper demands "powerful manipulation facilities" alongside dynamic object
definition.  Because molecules are derived — not stored — objects, molecule
manipulation decomposes into atom and link manipulation that keeps the atom
networks consistent:

* :func:`insert_molecule` inserts a nested-dictionary object following a
  molecule-type description, creating the atoms and the connecting links in
  one sweep (and reusing existing atoms when an ``_id`` is supplied — that is
  how shared subobjects are created);
* :func:`delete_molecule` removes a molecule's atoms and links, *retaining*
  atoms that are shared with other molecules unless asked to cascade;
* :func:`modify_atom` updates attribute values in place, preserving the atom's
  identity so all links (and hence all molecules containing it) stay valid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.atom import Atom
from repro.core.database import Database
from repro.core.derivation import derive_occurrence, resolve_description
from repro.core.molecule import Molecule, MoleculeTypeDescription
from repro.exceptions import ManipulationError


def insert_molecule(
    database: Database,
    description: MoleculeTypeDescription,
    data: Mapping[str, object],
) -> Molecule:
    """Insert one complex object described by *data* following *description*.

    *data* is a nested dictionary: the top level holds the root atom's
    attribute values; children are given under keys named after the child
    atom types, each a list of nested dictionaries.  A node carrying ``"_id"``
    refers to an *existing* atom of that type (creating a shared subobject)
    instead of creating a new one.

    Returns the freshly derived molecule rooted at the inserted root atom.
    """
    description = resolve_description(database, description)

    def insert_node(type_name: str, node: Mapping[str, object]) -> Atom:
        atom_type = database.atyp(type_name)
        child_type_names = {dl.target for dl in description.children_of(type_name)}
        identifier = node.get("_id")
        if identifier is not None and atom_type.get(str(identifier)) is not None:
            atom = atom_type.get(str(identifier))
        else:
            values = {
                key: value
                for key, value in node.items()
                if key not in child_type_names and key != "_id"
            }
            unknown = set(values) - set(atom_type.description.names)
            if unknown:
                raise ManipulationError(
                    f"unknown attributes {sorted(unknown)!r} for atom type {type_name!r}"
                )
            atom = atom_type.add(values, identifier=str(identifier) if identifier is not None else None)
        for directed in description.children_of(type_name):
            children = node.get(directed.target, [])
            if isinstance(children, Mapping):
                children = [children]
            link_type = database.ltyp(directed.link_type_name)
            for child_node in children:
                child_atom = insert_node(directed.target, child_node)
                link_type.connect(atom, child_atom)
        return atom

    root_atom = insert_node(description.root, data)
    from repro.core.derivation import derive_molecule  # local import avoids a cycle at module load

    return derive_molecule(database, description, root_atom)


def delete_molecule(
    database: Database,
    molecule: Molecule,
    cascade: bool = False,
) -> Dict[str, int]:
    """Delete *molecule* from the database.

    Without *cascade*, only atoms **exclusive** to this molecule (not linked to
    any atom outside it) are removed; shared subobjects survive, along with
    the links among surviving atoms.  With *cascade*, every component atom is
    removed regardless of sharing.  All links incident to a removed atom are
    removed as well, so the database never contains dangling links.

    Returns counters ``{"atoms_removed": ..., "links_removed": ..., "atoms_kept": ...}``.
    """
    component_ids = set(molecule.atom_identifiers)
    removable: Set[str] = set()
    for atom in molecule.atoms:
        if cascade:
            removable.add(atom.identifier)
            continue
        external = False
        for link_type in database.link_types:
            for link in link_type.links_of(atom.identifier):
                if link.other(atom.identifier) not in component_ids:
                    external = True
                    break
            if external:
                break
        if not external and atom.identifier != molecule.root_atom.identifier:
            removable.add(atom.identifier)
    # The root atom always goes away: the molecule is identified by it.
    removable.add(molecule.root_atom.identifier)

    links_removed = 0
    for identifier in removable:
        for link_type in database.link_types:
            links_removed += link_type.remove_atom(identifier)
    atoms_removed = 0
    for atom_type in database.atom_types:
        for identifier in list(removable):
            if identifier in atom_type:
                atom_type.remove(identifier)
                atoms_removed += 1
    return {
        "atoms_removed": atoms_removed,
        "links_removed": links_removed,
        "atoms_kept": len(component_ids) - atoms_removed,
    }


def modify_atom(
    database: Database,
    atom_type_name: str,
    identifier: str,
    **updates: object,
) -> Atom:
    """Update attribute values of an existing atom, preserving its identity.

    Because links reference atoms by identifier, every molecule containing the
    atom reflects the change on its next derivation — no link maintenance is
    needed.  Raises :class:`ManipulationError` when the atom does not exist or
    an update violates the attribute domain.
    """
    atom_type = database.atyp(atom_type_name)
    atom = atom_type.get(identifier)
    if atom is None:
        raise ManipulationError(f"no atom {identifier!r} in atom type {atom_type_name!r}")
    merged = atom.values
    merged.update(updates)
    try:
        validated = atom_type.description.validate_values(merged)
    except Exception as exc:
        raise ManipulationError(f"invalid update for atom {identifier!r}: {exc}") from exc
    atom_type.remove(identifier)
    return atom_type.add(Atom(atom_type_name, validated, identifier=identifier))
