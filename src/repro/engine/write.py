"""Physical write operators: streaming molecule mutations under an undo log.

The read pipeline pulls molecules; the write pipeline pushes them into atom
and link mutations.  Each operator consumes the molecules of a physical
*source* operator (the optimized qualifying read of a DML statement) and
applies the corresponding manipulation — recording an undo action for every
individual mutation in the surrounding transaction's log, so a mid-statement
failure (domain violation on a later child, cardinality error on a link)
rolls the whole statement back and leaves no orphan atoms or dangling links.

Operators:

* :class:`InsertMoleculeOp` — ι: create the atoms and connecting links of one
  nested complex object in a single sweep, reusing existing atoms referenced
  by ``"_id"`` (shared subobjects);
* :class:`DeleteMoleculesOp` — δ: remove each source molecule's exclusive
  atoms (all atoms under *cascade*) together with every incident link;
* :class:`ModifyAtomsOp` — μ: replace attribute values of the target type's
  atoms in place, preserving identity so links and containing molecules stay
  valid.

Every mutation goes through :class:`~repro.core.atom.AtomType` /
:class:`~repro.core.link.LinkType`, so change events fire in mutation order
and the storage engine's incremental cache maintenance sees inserts,
deletions and modifications exactly once (rollbacks emit the compensating
events).  :meth:`apply` returns the affected molecules plus a
:class:`WriteSummary` of the counts reported on ``QueryResult``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Set, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.derivation import (
    derive_molecule,
    resolve_description,
    resolve_directed_link,
)
from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.engine.physical import ExecutionContext, PhysicalOperator
from repro.exceptions import ManipulationError

if TYPE_CHECKING:  # deferred at runtime: manipulation imports this module
    from repro.manipulation.transactions import Transaction


@dataclass
class WriteSummary:
    """Affected-count report of one write-plan execution."""

    operation: str
    molecules_affected: int = 0
    atoms_inserted: int = 0
    atoms_removed: int = 0
    atoms_modified: int = 0
    atoms_kept: int = 0
    links_inserted: int = 0
    links_removed: int = 0


class WriteOperator:
    """Base class of the push-based write operators."""

    def apply(
        self, ctx: ExecutionContext, txn: "Transaction"
    ) -> Tuple[MoleculeType, WriteSummary]:
        """Apply the mutations, logging undo actions in *txn*.

        Returns the affected molecules (post-state for inserts, qualifying
        pre-state for deletes/modifications) and the count summary.
        """
        raise NotImplementedError

    # ------------------------------------------------------- shared helpers

    @staticmethod
    def _atom_type_of(ctx: ExecutionContext, type_name: str) -> AtomType:
        """Resolve *type_name* against the context database, accepting decorated names."""
        if ctx.database.has_atom_type(type_name):
            return ctx.database.atyp(type_name)
        return ctx.database.atyp(type_name.split("@", 1)[0])


class InsertMoleculeOp(WriteOperator):
    """ι as a physical operator: one-sweep creation of a nested complex object."""

    def __init__(
        self, name: str, description: MoleculeTypeDescription, data: Mapping[str, object]
    ) -> None:
        self.name = name
        self.description = description
        self.data = data

    def apply(
        self, ctx: ExecutionContext, txn: "Transaction"
    ) -> Tuple[MoleculeType, WriteSummary]:
        summary = WriteSummary("insert")
        description = resolve_description(ctx.database, self.description)
        link_types = {
            directed.as_tuple(): resolve_directed_link(ctx.database, directed)
            for directed in description.directed_links
        }

        def insert_node(type_name: str, node: Mapping[str, object]) -> Atom:
            atom_type = ctx.database.atyp(type_name)
            child_type_names = {dl.target for dl in description.children_of(type_name)}
            identifier = node.get("_id")
            if identifier is not None and atom_type.get(str(identifier)) is not None:
                atom = atom_type.get(str(identifier))
            else:
                values = {
                    key: value
                    for key, value in node.items()
                    if key not in child_type_names and key != "_id"
                }
                unknown = set(values) - set(atom_type.description.names)
                if unknown:
                    raise ManipulationError(
                        f"unknown attributes {sorted(unknown)!r} for atom type {type_name!r}"
                    )
                atom = txn.insert_atom_values(
                    type_name, values, identifier=str(identifier) if identifier is not None else None
                )
                summary.atoms_inserted += 1
                ctx.counters.atoms_touched += 1
            for directed in description.children_of(type_name):
                children = node.get(directed.target, [])
                if isinstance(children, Mapping):
                    children = [children]
                link_type = link_types[directed.as_tuple()]
                for child_node in children:
                    child_atom = insert_node(directed.target, child_node)
                    if txn.connect_new(link_type.name, atom, child_atom) is not None:
                        summary.links_inserted += 1
                        ctx.counters.links_followed += 1
            return atom

        root_atom = insert_node(description.root, self.data)
        molecule = derive_molecule(ctx.database, description, root_atom)
        ctx.counters.molecules_derived += 1
        summary.molecules_affected = 1
        return MoleculeType(self.name, description, (molecule,)), summary


class DeleteMoleculesOp(WriteOperator):
    """δ as a physical operator: stream qualifying molecules into deletions.

    Deletion follows the manipulation semantics: per molecule, atoms linked to
    any atom *outside* the molecule are shared subobjects and survive (unless
    *cascade*); the root always goes away, and every link incident to a
    removed atom is removed with it — the database never holds dangling links.
    """

    def __init__(self, source: PhysicalOperator, cascade: bool = False) -> None:
        self.source = source
        self.cascade = cascade

    def apply(
        self, ctx: ExecutionContext, txn: "Transaction"
    ) -> Tuple[MoleculeType, WriteSummary]:
        summary = WriteSummary("delete")
        affected: List[Molecule] = []
        component_union: Set[str] = set()
        removed: Set[str] = set()
        # The qualifying read is materialized up front: mutating occurrences
        # while the scan still iterates them would be the Halloween problem.
        for molecule in tuple(self.source.execute(ctx)):
            affected.append(molecule)
            summary.molecules_affected += 1
            component_union |= molecule.atom_identifiers
            for identifier in self._removable(ctx, molecule, removed):
                self._delete_atom(ctx, txn, molecule, identifier, summary)
                removed.add(identifier)
        summary.atoms_kept = len(component_union) - summary.atoms_removed
        description = self.source.describe(ctx)
        return MoleculeType("deleted", description, tuple(affected)), summary

    def _removable(
        self, ctx: ExecutionContext, molecule: Molecule, already_removed: Set[str]
    ) -> List[str]:
        component_ids = set(molecule.atom_identifiers)
        removable: List[str] = []
        for atom in molecule.atoms:
            if atom.identifier in already_removed:
                continue
            if self.cascade or atom.identifier == molecule.root_atom.identifier:
                removable.append(atom.identifier)
                continue
            external = False
            for link_type in ctx.database.link_types:
                for link in link_type.links_of(atom.identifier):
                    if link.other(atom.identifier) not in component_ids:
                        external = True
                        break
                if external:
                    break
            if not external:
                removable.append(atom.identifier)
        return removable

    def _delete_atom(
        self,
        ctx: ExecutionContext,
        txn: "Transaction",
        molecule: Molecule,
        identifier: str,
        summary: WriteSummary,
    ) -> None:
        atom = molecule.get(identifier)
        atom_type = self._atom_type_of(ctx, atom.type_name)
        stored = atom_type.get(identifier)
        if stored is None:
            return
        # Each removal goes through the transaction so it carries a conflict
        # key (first-committer-wins detection) besides its undo action.
        for link_type in ctx.database.link_types:
            for link in link_type.links_of(identifier):
                txn.disconnect(link_type.name, link)
                summary.links_removed += 1
        txn.remove_atom_only(atom_type, stored)
        summary.atoms_removed += 1
        ctx.counters.atoms_touched += 1


class ModifyAtomsOp(WriteOperator):
    """μ as a physical operator: in-place attribute updates, identity preserved."""

    def __init__(
        self,
        source: PhysicalOperator,
        atom_type_name: str,
        updates: Sequence[Tuple[str, object]],
    ) -> None:
        self.source = source
        self.atom_type_name = atom_type_name
        self.updates = tuple(updates)

    def apply(
        self, ctx: ExecutionContext, txn: "Transaction"
    ) -> Tuple[MoleculeType, WriteSummary]:
        summary = WriteSummary("modify")
        affected: List[Molecule] = []
        modified: Set[str] = set()
        # Materialized for the same Halloween-problem reason as deletion: an
        # update must not re-qualify molecules it already modified.
        for molecule in tuple(self.source.execute(ctx)):
            targets = molecule.atoms_of_type(self.atom_type_name)
            if not targets:
                continue
            affected.append(molecule)
            summary.molecules_affected += 1
            for atom in targets:
                if atom.identifier in modified:
                    continue
                self._modify_atom(ctx, txn, atom)
                modified.add(atom.identifier)
                summary.atoms_modified += 1
                ctx.counters.atoms_touched += 1
        description = self.source.describe(ctx)
        return MoleculeType("modified", description, tuple(affected)), summary

    def _modify_atom(self, ctx: ExecutionContext, txn: "Transaction", atom: Atom) -> None:
        atom_type = self._atom_type_of(ctx, atom.type_name)
        if atom_type.get(atom.identifier) is None:
            raise ManipulationError(
                f"no atom {atom.identifier!r} in atom type {atom_type.name!r}"
            )
        # The transaction owns the merge/validate/replace/undo protocol.
        txn.modify_atom_values(atom_type.name, atom.identifier, dict(self.updates))
