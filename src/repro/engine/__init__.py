"""The streaming plan pipeline: logical plan IR → physical operators → executor.

This package is the shared spine between the MQL front-end, the optimizer and
the storage layer (the ROADMAP's "one cost-planned, iterator-style pipeline"):

* :mod:`repro.engine.logical` — the plan IR produced by the MQL translator
  and rewritten/costed by the optimizer;
* :mod:`repro.engine.physical` — pull-based, generator-backed operators with
  work counters, secondary-index root access and atom-network traversal;
* :mod:`repro.engine.executor` — compilation of logical plans onto physical
  operators, plus the :class:`Executor` that binds a database and its access
  structures.

The molecule-algebra functions of :mod:`repro.core.molecule_algebra` are thin
wrappers over single-node plans from this package, so the closure theorems
(Thms. 2–3) hold verbatim for the materializing algebra while MQL statements
run through the streaming pipeline.
"""

from repro.engine.executor import (
    ExecutionResult,
    Executor,
    WriteExecutionResult,
    compile_plan,
    compile_write_plan,
    run_plan,
)
from repro.engine.logical import (
    DefinePlan,
    DeleteMolecules,
    InsertMolecule,
    ModifyAtoms,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
    WritePlanNode,
    canonical_structure,
    describe_plan,
    plan_description,
    plan_name,
)
from repro.engine.physical import (
    Difference,
    ExecutionContext,
    ExecutionCounters,
    IndexPool,
    Intersection,
    MoleculeScan,
    MoleculeSource,
    PhysicalOperator,
    Project,
    RecursiveScan,
    Restrict,
    Union,
    molecule_value_key,
)
from repro.engine.write import (
    DeleteMoleculesOp,
    InsertMoleculeOp,
    ModifyAtomsOp,
    WriteOperator,
    WriteSummary,
)

__all__ = [
    "DefinePlan",
    "DeleteMolecules",
    "DeleteMoleculesOp",
    "Difference",
    "InsertMolecule",
    "InsertMoleculeOp",
    "ModifyAtoms",
    "ModifyAtomsOp",
    "ExecutionContext",
    "ExecutionCounters",
    "ExecutionResult",
    "Executor",
    "IndexPool",
    "Intersection",
    "MoleculeScan",
    "MoleculeSource",
    "PhysicalOperator",
    "PlanNode",
    "Project",
    "ProjectPlan",
    "RecursivePlan",
    "RecursiveScan",
    "Restrict",
    "RestrictPlan",
    "SetOpPlan",
    "Union",
    "WriteExecutionResult",
    "WriteOperator",
    "WritePlanNode",
    "WriteSummary",
    "canonical_structure",
    "compile_plan",
    "compile_write_plan",
    "describe_plan",
    "molecule_value_key",
    "plan_description",
    "plan_name",
    "run_plan",
]
