"""Pull-based (Volcano-style) physical operators over molecule streams.

Every operator is a generator source: :meth:`PhysicalOperator.execute` yields
result molecules one at a time, pulling from its children on demand.  Nothing
is propagated or re-derived between operators — intermediate molecule sets are
never materialized, which is what makes plan pipelines cheap compared to the
literal algebra evaluation (each molecule-algebra operation materializes its
result set into an enlarged database, see
:mod:`repro.core.molecule_algebra`).

Operators:

* :class:`MoleculeScan` — the molecule-type definition α as an access path:
  iterates the root occurrence (through a :class:`~repro.storage.index.HashIndex`
  equality lookup when the pushed-down root filter permits) and performs the
  hierarchical join by traversing atom-network neighbours link type by link
  type;
* :class:`RecursiveScan` — recursive molecule expansion (§5 outlook);
* :class:`MoleculeSource` — adapter yielding an already-derived molecule type
  (used by the thin molecule-algebra wrappers);
* :class:`Restrict` / :class:`Project` — streaming Σ and Π;
* :class:`Union` / :class:`Difference` / :class:`Intersection` — streaming set
  operations with value-based molecule identity.

Work is accounted in :class:`ExecutionCounters`, which the optimizer
benchmarks compare across plan variants.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.atom import Atom
from repro.core.database import Database
from repro.core.derivation import derive_molecule, resolve_description, resolve_directed_link
from repro.core.link import Link, LinkType
from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.core.predicates import (
    AttributeRef,
    Comparison,
    Formula,
    _compare,
    split_conjunction,
)
from repro.core.recursion import RecursiveDescription, RecursiveMolecule, expand_recursive
from repro.engine.logical import canonical_structure, resolve_projection_names
from repro.exceptions import UnionCompatibilityError


@dataclass
class ExecutionCounters:
    """Work counters collected while executing a plan."""

    molecules_derived: int = 0
    atoms_touched: int = 0
    restrictions_evaluated: int = 0
    links_followed: int = 0
    index_lookups: int = 0
    atoms_indexed: int = 0
    groups_aggregated: int = 0
    columnar_rows_scanned: int = 0


def molecule_value_key(molecule: Molecule) -> Tuple:
    """Value-based identity of a molecule: root identity plus component identities."""
    return (
        molecule.root_atom.identifier,
        frozenset(molecule.atom_identifiers),
    )


class IndexPool:
    """Secondary-index access for the executor, lazily built over a database.

    The pool answers equality lookups ``(atom type, attribute, value) -> atom
    identifiers``.  When *build_transient* is set, missing indexes are built
    on first use from the database occurrence and **cached for the pool's
    lifetime** — which is only sound when the database cannot change under
    the pool, or when every change is folded in through :meth:`apply_event`
    (the storage engine does the latter: it subscribes to its snapshot's
    change events and keeps the pool's :attr:`generation` in lock-step with
    its own, so a coherent pool never needs rebuilding on writes).  Ephemeral
    executors over a live, unobserved :class:`~repro.core.database.Database`
    must leave *build_transient* off, falling back to filtered scans.
    """

    def __init__(self, database: Database, build_transient: bool = True) -> None:
        self.database = database
        self.build_transient = build_transient
        self._indexes: Dict[Tuple[str, str], object] = {}
        self._grids: Dict[Tuple[str, Tuple[str, ...]], object] = {}
        #: Write generation this pool is coherent with (stamped by the owner).
        self.generation = 0
        #: Number of full index builds performed (a full occurrence pass each).
        self.builds = 0

    def lookup(
        self,
        atom_type_name: str,
        attribute: str,
        value: object,
        counters: Optional[ExecutionCounters] = None,
    ) -> Optional[FrozenSet[str]]:
        """Return matching atom identifiers, or ``None`` when no index is usable.

        Building a transient index is a full pass over the type's occurrence;
        it is charged to ``counters.atoms_indexed`` so moved work stays
        visible in plan comparisons.
        """
        key = (atom_type_name, attribute)
        index = self._indexes.get(key)
        if index is None:
            if not self.build_transient or not self.database.has_atom_type(atom_type_name):
                return None
            from repro.storage.index import HashIndex  # deferred: avoids a package cycle

            index = HashIndex(atom_type_name, attribute)
            for atom in self.database.atyp(atom_type_name):
                index.insert(atom)
                if counters is not None:
                    counters.atoms_indexed += 1
            self._indexes[key] = index
            self.builds += 1
        return index.lookup(value)

    def grid_for(
        self,
        atom_type_name: str,
        attributes: Tuple[str, ...],
        counters: Optional[ExecutionCounters] = None,
    ):
        """A composite :class:`~repro.storage.index.GridIndex` over the given
        attribute tuple, or ``None`` when none is usable.

        Like :meth:`lookup`, missing grids are built transiently (one full
        occurrence pass, charged to ``counters.atoms_indexed``) and then
        maintained through :meth:`apply_event`.
        """
        key = (atom_type_name, tuple(attributes))
        grid = self._grids.get(key)
        if grid is None:
            if not self.build_transient or not self.database.has_atom_type(atom_type_name):
                return None
            from repro.storage.index import GridIndex  # deferred: avoids a package cycle

            grid = GridIndex(atom_type_name, key[1])
            for atom in self.database.atyp(atom_type_name):
                grid.insert(atom)
                if counters is not None:
                    counters.atoms_indexed += 1
            self._grids[key] = grid
            self.builds += 1
        return grid

    def apply_event(self, event, generation: Optional[int] = None) -> None:
        """Fold one atom-level change event into every matching cached index.

        ``HashIndex.insert`` replaces a previous entry for the same
        identifier, so insertions and modifications share one path.  Link
        events carry no indexed values and are ignored.  When *generation* is
        given the pool is stamped coherent with that write generation.
        """
        if event.atom is not None:
            for (type_name, _attribute), index in self._indexes.items():
                if type_name.split("@", 1)[0] != event.type_name:
                    continue
                if event.kind == "atom_deleted":
                    index.remove(event.atom.identifier)
                else:  # atom_inserted / atom_modified
                    index.insert(event.atom)
            for (type_name, _attributes), grid in self._grids.items():
                if type_name.split("@", 1)[0] != event.type_name:
                    continue
                if event.kind == "atom_deleted":
                    grid.remove(event.atom.identifier)
                else:  # atom_inserted / atom_modified
                    grid.insert(event.atom)
        if generation is not None:
            self.generation = generation


class ExecutionContext:
    """Per-execution state: the database, work counters and access structures.

    *indexes* is an optional :class:`IndexPool`; *network* an optional
    :class:`~repro.storage.network.AtomNetwork` whose typed adjacency
    (``links_via``) replaces per-link-type lookups when present — the storage
    engine shares its cached network across queries this way.
    """

    def __init__(
        self,
        database: Database,
        counters: Optional[ExecutionCounters] = None,
        indexes: Optional[IndexPool] = None,
        network=None,
        snapshot=None,
        structure=None,
        columnar=None,
    ) -> None:
        self.database = database
        self.counters = counters or ExecutionCounters()
        self.indexes = indexes
        self.network = network
        #: The pinned :class:`~repro.core.versions.Snapshot` when *database*
        #: is a generation-stamped view, ``None`` for head execution.
        self.snapshot = snapshot
        #: Optional :class:`~repro.storage.structure_index.StructureIndexStore`
        #: — the interval-encoded accelerator for recursive definitions.
        self.structure = structure
        #: Optional :class:`~repro.storage.columnar.ColumnarStore` — the
        #: read-optimized per-type attribute arrays for aggregate scans.
        self.columnar = columnar

    def links_via(self, link_type: LinkType, identifier: str) -> "Iterable[Link]":
        """The links of *link_type* incident to *identifier* (neighbour traversal)."""
        if self.network is not None:
            links = self.network.links_via(link_type.name, identifier)
            if links is not None:
                return links
        return link_type.links_of(identifier)


class PhysicalOperator:
    """Base class of the pull-based operators."""

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        """The (resolved) description of the molecules this operator yields."""
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        """Yield the result molecules, pulling from children on demand."""
        raise NotImplementedError


class MoleculeScan(PhysicalOperator):
    """α as an access path: derive one molecule per qualifying root atom.

    When a root filter is present, its equality conjuncts are answered through
    the context's index pool where possible, so only the matching root atoms
    are visited; the remaining conjuncts are evaluated per candidate.  The
    hierarchical join follows the molecule structure root-first, traversing
    the atom network neighbour lists of each link type.
    """

    def __init__(
        self,
        name: str,
        description: MoleculeTypeDescription,
        root_filter: Optional[Formula] = None,
        root_access: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.name = name
        self.description = description
        self.root_filter = root_filter
        #: The planner's costed access-path choice: ``None`` (default
        #: preference), ``("grid", attr, ...)`` or ``("hash", attr, ...)``.
        self.root_access = root_access
        self._resolved: Optional[MoleculeTypeDescription] = None
        self._resolved_for: Optional[Database] = None

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        # Resolution is memoized per database: execute(), Executor.run() and
        # set-operator compatibility checks all describe the same scan.
        if self._resolved is None or self._resolved_for is not ctx.database:
            self._resolved = resolve_description(ctx.database, self.description)
            self._resolved_for = ctx.database
        return self._resolved

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        description = self.describe(ctx)
        link_types = {
            directed.as_tuple(): resolve_directed_link(ctx.database, directed)
            for directed in description.directed_links
        }
        for root_atom in self._root_atoms(ctx, description):
            molecule = self._derive(ctx, description, link_types, root_atom)
            ctx.counters.molecules_derived += 1
            ctx.counters.atoms_touched += len(molecule)
            yield molecule

    # ------------------------------------------------------------ root access

    def _root_atoms(self, ctx: ExecutionContext, description: MoleculeTypeDescription):
        root_type = ctx.database.atyp(description.root)
        if self.root_filter is None:
            yield from root_type
            return
        candidates = self._indexed_candidates(ctx, description, root_type)
        for atom in candidates if candidates is not None else root_type:
            ctx.counters.restrictions_evaluated += 1
            if self.root_filter.evaluate_atom(atom):
                yield atom

    def _indexed_candidates(
        self, ctx: ExecutionContext, description: MoleculeTypeDescription, root_type
    ) -> Optional[List[Atom]]:
        """Root atoms matching indexable equality conjuncts, or ``None``.

        Two or more equality conjuncts on distinct root attributes are
        answered as one composite (grid) lookup — the conjunctive cell read
        prunes far more than any single hash bucket; a single conjunct keeps
        the hash-index path.  Every candidate still passes through the full
        root filter afterwards, so index choice never affects results.
        """
        if ctx.indexes is None:
            return None
        root_bare = description.root.split("@", 1)[0]
        equalities: Dict[str, object] = {}
        for conjunct in split_conjunction(self.root_filter):
            if not isinstance(conjunct, Comparison) or conjunct.op not in ("=", "=="):
                continue
            if isinstance(conjunct.rhs, AttributeRef):
                continue
            lhs_type = conjunct.lhs.atom_type
            if lhs_type is not None and lhs_type.split("@", 1)[0] != root_bare:
                continue
            equalities.setdefault(conjunct.lhs.attribute, conjunct.rhs)
        if not equalities:
            return None
        use_grid = len(equalities) >= 2 and (
            self.root_access is None or self.root_access[0] == "grid"
        )
        if use_grid:
            attributes = tuple(sorted(equalities))
            grid = ctx.indexes.grid_for(description.root, attributes, ctx.counters)
            if grid is None:
                grid = ctx.indexes.grid_for(root_bare, attributes, ctx.counters)
            if grid is not None:
                ctx.counters.index_lookups += 1
                atoms = [root_type.get(identifier) for identifier in sorted(grid.lookup(equalities))]
                return [atom for atom in atoms if atom is not None]
        if self.root_access is not None and self.root_access[0] == "hash":
            # The planner named the most selective attribute(s) first; try
            # them before the arbitrary dict order of the remaining conjuncts.
            ordered = [a for a in self.root_access[1:] if a in equalities]
            ordered += [a for a in equalities if a not in ordered]
            equalities = {attribute: equalities[attribute] for attribute in ordered}
        for attribute, value in equalities.items():
            identifiers = ctx.indexes.lookup(
                description.root, attribute, value, ctx.counters
            )
            if identifiers is None:
                identifiers = ctx.indexes.lookup(
                    root_bare, attribute, value, ctx.counters
                )
            if identifiers is None:
                continue
            ctx.counters.index_lookups += 1
            atoms = [root_type.get(identifier) for identifier in sorted(identifiers)]
            return [atom for atom in atoms if atom is not None]
        return None

    # ------------------------------------------------------ hierarchical join

    def _derive(
        self,
        ctx: ExecutionContext,
        description: MoleculeTypeDescription,
        link_types: Dict[Tuple[str, str, str], LinkType],
        root_atom: Atom,
    ) -> Molecule:
        def count_link(_link: Link) -> None:
            ctx.counters.links_followed += 1

        return derive_molecule(
            ctx.database,
            description,
            root_atom,
            link_types=link_types,
            links_of=ctx.links_via,
            on_link_followed=count_link,
        )


class RecursiveScan(PhysicalOperator):
    """Recursive molecule expansion over a (typically reflexive) link type."""

    def __init__(
        self,
        name: str,
        description: RecursiveDescription,
        formula: Optional[Formula] = None,
    ) -> None:
        self.name = name
        self.description = description
        self.formula = formula
        #: Optional ``(index, count)`` root partition — a worker executing
        #: one slice of a fanned-out scan expands only its own roots.
        self.partition: Optional[Tuple[int, int]] = None

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        return MoleculeTypeDescription([self.description.atom_type_name], [])

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        base_description = self.describe(ctx)
        for root_atom in ctx.database.atyp(self.description.atom_type_name):
            if not partition_member(root_atom.identifier, self.partition):
                continue
            molecule = expand_recursive(ctx.database, self.description, root_atom)
            molecule.description = base_description
            ctx.counters.molecules_derived += 1
            ctx.counters.atoms_touched += len(molecule)
            if self.formula is not None:
                ctx.counters.restrictions_evaluated += 1
                if not self.formula.evaluate_molecule(molecule):
                    continue
            yield molecule


class IntervalScan(PhysicalOperator):
    """Recursive molecule expansion answered by the structure index.

    Result-equivalent to :class:`RecursiveScan`: one recursively expanded
    molecule per root atom, restricted by the optional formula.  The closure
    of each root comes from the context's
    :class:`~repro.storage.structure_index.StructureIndexStore` — a pre/post
    interval range scan on forest-shaped data, a compact-adjacency BFS
    otherwise — and the fixpoint loop remains the per-root fallback whenever
    the index cannot answer coherently (pinned snapshot ahead/behind the
    encoding, stale encoding mid-rebuild, unknown root).

    On forest-shaped data with an equality-restricted formula, roots whose
    closure provably misses one of the restriction's candidate sets are
    skipped *before* materialisation (the existential restriction is then
    guaranteed false); every emitted molecule is byte-identical to the
    fixpoint path's.
    """

    def __init__(
        self,
        name: str,
        description: RecursiveDescription,
        formula: Optional[Formula] = None,
    ) -> None:
        self.name = name
        self.description = description
        self.formula = formula
        #: Optional ``(index, count)`` root partition — a worker executing
        #: one slice of a fanned-out scan expands only its own roots.
        self.partition: Optional[Tuple[int, int]] = None

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        return MoleculeTypeDescription([self.description.atom_type_name], [])

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        base_description = self.describe(ctx)
        store = getattr(ctx, "structure", None)
        index = store.for_execution(self.description, ctx) if store is not None else None
        candidate_sets = None
        if index is not None and store.supports_pruning(index):
            candidate_sets = self._candidate_sets(ctx)
        for root_atom in ctx.database.atyp(self.description.atom_type_name):
            if not partition_member(root_atom.identifier, self.partition):
                continue
            if candidate_sets is not None and not store.may_qualify(
                index, root_atom.identifier, candidate_sets, self.description.max_depth
            ):
                # The closure provably misses a required candidate set: the
                # existential restriction is false without materialisation.
                ctx.counters.restrictions_evaluated += 1
                continue
            molecule = None
            if index is not None:
                molecule = self._materialize(ctx, store, index, root_atom)
            if molecule is None:
                molecule = expand_recursive(ctx.database, self.description, root_atom)
            molecule.description = base_description
            ctx.counters.molecules_derived += 1
            ctx.counters.atoms_touched += len(molecule)
            if self.formula is not None:
                ctx.counters.restrictions_evaluated += 1
                if not self.formula.evaluate_molecule(molecule):
                    continue
            yield molecule

    def _materialize(self, ctx, store, index, root_atom) -> Optional[RecursiveMolecule]:
        """Build the closure molecule from the index, or ``None`` to fall back."""
        pair = store.closure(index, root_atom.identifier, self.description.max_depth)
        if pair is None:
            return None
        ctx.counters.index_lookups += 1
        members, links = pair
        database = ctx.database
        atom_type = database.atyp(self.description.atom_type_name)
        link_type = database.ltyp(self.description.link_type_name)
        other_name = link_type.other_type(self.description.atom_type_name)
        other_type = (
            database.atyp(other_name)
            if other_name != self.description.atom_type_name
            and database.has_atom_type(other_name)
            else None
        )
        atoms: List[Atom] = []
        levels: Dict[str, int] = {}
        for identifier, level, _parent_link in members:
            if level == 0 and identifier == root_atom.identifier:
                atom = root_atom
            else:
                # Same resolution order as expand_recursive: the recursion
                # atom type first, then the link's other endpoint type.
                atom = atom_type.get(identifier)
                if atom is None and other_type is not None:
                    atom = other_type.get(identifier)
                if atom is None:
                    return None  # member vanished under the index — fall back
            atoms.append(atom)
            levels[identifier] = level
        return RecursiveMolecule(root_atom, atoms, links, levels)

    def _candidate_sets(self, ctx) -> Optional[List[FrozenSet[str]]]:
        """Per-conjunct candidate-atom sets for containment pruning, or ``None``.

        Each usable equality conjunct ``root_type.attr = const`` contributes
        the set of atoms satisfying it (via hash or grid index).  Pruning is
        sound per conjunct only: the restriction is existential, so different
        closure members may satisfy different conjuncts — the closure must
        merely *intersect* every set.  Oversized sets are dropped (testing
        them costs more than it saves); dropping only weakens pruning.
        """
        if self.formula is None or ctx.indexes is None:
            return None
        type_name = self.description.atom_type_name
        bare = type_name.split("@", 1)[0]
        wanted: List[Tuple[str, object]] = []
        for conjunct in split_conjunction(self.formula):
            if not isinstance(conjunct, Comparison) or conjunct.op not in ("=", "=="):
                continue
            if isinstance(conjunct.rhs, AttributeRef):
                continue
            lhs_type = conjunct.lhs.atom_type
            if lhs_type is None or lhs_type.split("@", 1)[0] != bare:
                continue
            wanted.append((conjunct.lhs.attribute, conjunct.rhs))
        if not wanted:
            return None
        sets: List[FrozenSet[str]] = []
        attributes = tuple(sorted({attribute for attribute, _ in wanted}))
        grid = (
            ctx.indexes.grid_for(type_name, attributes, ctx.counters)
            if len(attributes) >= 2
            else None
        )
        for attribute, value in wanted:
            if grid is not None:
                ctx.counters.index_lookups += 1
                identifiers = grid.lookup({attribute: value})
            else:
                identifiers = ctx.indexes.lookup(type_name, attribute, value, ctx.counters)
                if identifiers is None:
                    return None
                ctx.counters.index_lookups += 1
            if len(identifiers) > 1024:
                continue  # testing a huge set beats no molecules — skip it
            sets.append(frozenset(identifiers))
        return sets or None


class MoleculeSource(PhysicalOperator):
    """Adapter streaming an already-derived molecule type into a pipeline."""

    def __init__(self, molecule_type: MoleculeType) -> None:
        self.molecule_type = molecule_type

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        return self.molecule_type.description

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        return iter(self.molecule_type)


class Restrict(PhysicalOperator):
    """Streaming Σ: forward the molecules satisfying the qualification."""

    def __init__(self, child: PhysicalOperator, formula: Formula) -> None:
        self.child = child
        self.formula = formula

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        return self.child.describe(ctx)

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        for molecule in self.child.execute(ctx):
            ctx.counters.restrictions_evaluated += 1
            if self.formula.evaluate_molecule(molecule):
                yield molecule


class Project(PhysicalOperator):
    """Streaming Π: cut each molecule down to the retained atom types.

    *owner* names the projected molecule type in validation errors.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        atom_type_names: Sequence[str],
        owner: Optional[str] = None,
    ) -> None:
        self.child = child
        self.atom_type_names = tuple(atom_type_names)
        self.owner = owner

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        child_description = self.child.describe(ctx)
        resolved = resolve_projection_names(
            child_description, self.atom_type_names, self.owner
        )
        return child_description.projected(resolved)

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        projected_description = self.describe(ctx)
        for molecule in self.child.execute(ctx):
            yield molecule.projected(projected_description)


class _BinarySetOperator(PhysicalOperator):
    """Common shape of the streaming set operations.

    :meth:`execute` checks union compatibility eagerly — before the caller
    first pulls — then delegates to the subclass's :meth:`_stream` generator.
    """

    operation = "set operation"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        self.left = left
        self.right = right

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        return self.left.describe(ctx)

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        if canonical_structure(self.left.describe(ctx)) != canonical_structure(
            self.right.describe(ctx)
        ):
            raise UnionCompatibilityError(
                f"molecule-type {self.operation} requires structurally identical "
                "descriptions; the operand structures differ"
            )
        return self._stream(ctx)

    def _stream(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        raise NotImplementedError


class Union(_BinarySetOperator):
    """Streaming Ω: left molecules first, then unseen right molecules."""

    operation = "union"

    def _stream(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        seen: Set[Tuple] = set()
        for molecule in self.left.execute(ctx):
            key = molecule_value_key(molecule)
            if key not in seen:
                seen.add(key)
                yield molecule
        for molecule in self.right.execute(ctx):
            key = molecule_value_key(molecule)
            if key not in seen:
                seen.add(key)
                yield molecule


class Difference(_BinarySetOperator):
    """Streaming Δ: left molecules whose value is absent from the right side."""

    operation = "difference"

    def _stream(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        removed = {molecule_value_key(m) for m in self.right.execute(ctx)}
        for molecule in self.left.execute(ctx):
            if molecule_value_key(molecule) not in removed:
                yield molecule


class Intersection(_BinarySetOperator):
    """Streaming Ψ — by the paper's identity Ψ(mt1,mt2) = Δ(mt1, Δ(mt1,mt2))."""

    operation = "intersection"

    def _stream(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        kept = {molecule_value_key(m) for m in self.right.execute(ctx)}
        seen: Set[Tuple] = set()
        for molecule in self.left.execute(ctx):
            key = molecule_value_key(molecule)
            if key in kept and key not in seen:
                seen.add(key)
                yield molecule


# --------------------------------------------------------------- aggregation


def _canonical_key(values: Tuple) -> Tuple:
    """Total order over group-key tuples: NULLs last, then textual order."""
    return tuple((value is None, str(value)) for value in values)


def partition_member(identifier: str, partition: "Optional[Tuple[int, int]]") -> bool:
    """Whether *identifier* belongs to partition ``(index, count)``.

    Membership hashes the identifier with :func:`zlib.crc32`, not the builtin
    ``hash`` — the builtin is salted per process, and partitioned execution
    splits one scan across worker *processes* whose partitions must tile the
    occurrence exactly (every root in exactly one partition).
    """
    if partition is None:
        return True
    index, count = partition
    return zlib.crc32(identifier.encode("utf-8")) % count == index


def _distinct_key(value: object) -> object:
    """The set member recorded for one DISTINCT value.

    Hashable values stand for themselves (``==``-equal values collapse, the
    usual SQL reading of DISTINCT); unhashable values fall back to a
    canonical ``(type name, repr)`` tag so a list- or dict-valued attribute
    still counts deterministically instead of raising.
    """
    try:
        hash(value)
    except TypeError:
        return ("__unhashable__", type(value).__name__, repr(value))
    return value


def _robust_extreme(values: List[object], pick) -> object:
    """MIN/MAX tolerant of mixed value types (falls back to a textual order).

    ``==``-equal extremes can carry distinct renderings (``-0.0`` vs ``0.0``,
    ``1`` vs ``1.0``) and which one a fold meets first depends on scan order,
    so ties are re-picked textually — the row and columnar paths then return
    the same bytes no matter how they ordered the values.
    """
    textual = lambda v: (type(v).__name__, str(v))  # noqa: E731
    try:
        result = pick(values)
    except TypeError:
        return pick(values, key=textual)
    ties = [value for value in values if value == result]
    return pick(ties, key=textual) if len(ties) > 1 else result


class _GroupAccumulator:
    """Running state of one group: molecule count plus one target per spec.

    Attribute targets are ``{atom identifier: value}`` maps — an atom shared
    by several molecules of the group contributes exactly once; component
    targets are identifier sets (distinct component atoms); DISTINCT targets
    are sets of observed values (see :func:`_distinct_key`); ``COUNT(*)``
    needs only the molecule counter.
    """

    __slots__ = ("count", "targets")

    def __init__(self, specs) -> None:
        self.count = 0
        self.targets: List[object] = [
            set()
            if spec.component is not None or spec.distinct
            else ({} if spec.attribute is not None else None)
            for spec in specs
        ]

    def fold_molecule(self, specs, molecule: Molecule) -> None:
        self.count += 1
        for spec, target in zip(specs, self.targets):
            if spec.component is not None:
                for atom in molecule.atoms_of_type(spec.component):
                    target.add(atom.identifier)
            elif spec.distinct:
                for atom in molecule.atoms_of_type(spec.attribute.atom_type):
                    value = atom.get(spec.attribute.attribute)
                    if value is not None:
                        target.add(_distinct_key(value))
            elif spec.attribute is not None:
                for atom in molecule.atoms_of_type(spec.attribute.atom_type):
                    target.setdefault(atom.identifier, atom.get(spec.attribute.attribute))

    def fold_atom(self, specs, identifier: str, values: "Sequence[object]") -> None:
        """Fold one single-type root atom (row or columnar form).

        *values* carries one pre-extracted attribute value per spec (``None``
        placeholders for ``COUNT(*)``/component specs).
        """
        self.count += 1
        for spec, target, value in zip(specs, self.targets, values):
            if spec.component is not None:
                target.add(identifier)
            elif spec.distinct:
                if value is not None:
                    target.add(_distinct_key(value))
            elif spec.attribute is not None:
                target.setdefault(identifier, value)

    def finalize(self, spec, target) -> object:
        if spec.component is not None or spec.distinct:
            return len(target)
        if spec.attribute is None:
            return self.count  # COUNT(*)
        values = [value for value in target.values() if value is not None]
        if spec.func == "COUNT":
            return len(values)
        if not values:
            return None
        if spec.func in ("SUM", "AVG"):
            try:
                # math.fsum keeps float sums order-independent (byte parity
                # between row and columnar folds); all-int sums stay exact.
                total = (
                    math.fsum(values)
                    if any(isinstance(v, float) for v in values)
                    else sum(values)
                )
            except TypeError:
                return None  # non-numeric values — NULL, on both paths
            return total if spec.func == "SUM" else total / len(values)
        if spec.func == "MIN":
            return _robust_extreme(values, min)
        return _robust_extreme(values, max)


def finalize_groups(
    group_by: Tuple[AttributeRef, ...],
    specs,
    groups: "Dict[Tuple, _GroupAccumulator]",
) -> List[Tuple]:
    """Turn accumulated groups into canonically ordered result rows.

    Shared by every Γ operator — the row, sorted and columnar folds all
    finalize through this one function, which is what makes their outputs
    byte-identical.  A global aggregate (no GROUP BY) over empty input yields
    its one row with zero counts and NULL value aggregates; a grouped
    aggregate over empty input yields no rows.
    """
    if not group_by and not groups:
        groups = {(): _GroupAccumulator(specs)}
    rows: List[Tuple] = []
    for key in sorted(groups, key=_canonical_key):
        accumulator = groups[key]
        rows.append(
            key
            + tuple(
                accumulator.finalize(spec, target)
                for spec, target in zip(specs, accumulator.targets)
            )
        )
    return rows


def merge_group_accumulators(
    specs,
    groups: "Dict[Tuple, _GroupAccumulator]",
    partial: "Dict[Tuple, _GroupAccumulator]",
) -> None:
    """Merge one partition's partial groups into *groups* (in place).

    The inverse of splitting a fold across disjoint root partitions: counts
    add, identifier/value sets (components, DISTINCT) union, and per-atom
    value maps merge with first-writer-wins ``setdefault`` — exactly what a
    single fold over the union of the partitions would have produced,
    because partitions never share a root atom.  Finalizing the merged
    groups through :func:`finalize_groups` therefore yields byte-identical
    rows to the serial fold.
    """
    for key, accumulator in partial.items():
        into = groups.get(key)
        if into is None:
            groups[key] = accumulator
            continue
        into.count += accumulator.count
        for index, spec in enumerate(specs):
            if spec.component is not None or spec.distinct:
                into.targets[index] |= accumulator.targets[index]
            elif spec.attribute is not None:
                target = into.targets[index]
                for identifier, value in accumulator.targets[index].items():
                    target.setdefault(identifier, value)


def aggregate_columns(group_by: Tuple[AttributeRef, ...], specs) -> Tuple[str, ...]:
    """Result column names: the group keys first, then the aggregates."""
    keys = tuple(
        f"{ref.atom_type}.{ref.attribute}" if ref.atom_type else ref.attribute
        for ref in group_by
    )
    return keys + tuple(spec.output for spec in specs)


class AggregationOperator(PhysicalOperator):
    """Base of the Γ operators: produces rows, not molecules."""

    group_by: Tuple[AttributeRef, ...] = ()
    aggregates = ()

    def columns(self) -> Tuple[str, ...]:
        return aggregate_columns(self.group_by, self.aggregates)

    def rows(self, ctx: ExecutionContext) -> List[Tuple]:
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext) -> Iterator[Molecule]:
        raise TypeError(
            "aggregation operators produce rows, not molecules; "
            "run them through Executor.run_aggregate"
        )


class HashAggregate(AggregationOperator):
    """Streaming Γ: fold the child's molecule stream into a group hash table."""

    def __init__(self, child: PhysicalOperator, group_by, aggregates) -> None:
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        return self.child.describe(ctx)

    def rows(self, ctx: ExecutionContext) -> List[Tuple]:
        groups: Dict[Tuple, _GroupAccumulator] = {}
        for molecule in self.child.execute(ctx):
            key = tuple(ref.value_from_atom(molecule.root_atom) for ref in self.group_by)
            accumulator = groups.get(key)
            if accumulator is None:
                accumulator = groups[key] = _GroupAccumulator(self.aggregates)
            accumulator.fold_molecule(self.aggregates, molecule)
        ctx.counters.groups_aggregated += len(groups)
        return finalize_groups(self.group_by, self.aggregates, groups)


class SortedGroupAggregate(AggregationOperator):
    """Γ by sorting: materialize keyed molecules, sort, fold adjacent runs.

    Result-identical to :class:`HashAggregate` (the planner's cost model
    picks between them): equal keys are adjacent after the canonical sort, so
    one accumulator is live at a time; a final merge pass guards the
    pathological case of ``==``-equal keys with distinct canonical forms
    (e.g. ``1`` vs ``1.0``).
    """

    def __init__(self, child: PhysicalOperator, group_by, aggregates) -> None:
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        return self.child.describe(ctx)

    def rows(self, ctx: ExecutionContext) -> List[Tuple]:
        keyed: List[Tuple[Tuple, Molecule]] = [
            (
                tuple(ref.value_from_atom(molecule.root_atom) for ref in self.group_by),
                molecule,
            )
            for molecule in self.child.execute(ctx)
        ]
        keyed.sort(key=lambda pair: _canonical_key(pair[0]))
        groups: Dict[Tuple, _GroupAccumulator] = {}
        run_key: Optional[Tuple] = None
        accumulator: Optional[_GroupAccumulator] = None
        for key, molecule in keyed:
            if accumulator is None or key != run_key:
                run_key = key
                previous = groups.get(key)
                if previous is None:
                    accumulator = groups[key] = _GroupAccumulator(self.aggregates)
                else:  # an ==-equal key seen under another canonical form
                    accumulator = previous
            accumulator.fold_molecule(self.aggregates, molecule)
        ctx.counters.groups_aggregated += len(groups)
        return finalize_groups(self.group_by, self.aggregates, groups)


class ColumnarAggregate(AggregationOperator):
    """Γ over the columnar projection of a single-type structure.

    The group keys and aggregate targets are read straight out of per-type
    attribute arrays; the optional root filter (a conjunction of simple
    comparisons, guaranteed by the optimizer rule) is evaluated column-wise
    with the exact :func:`~repro.core.predicates._compare` semantics of the
    row path.  When the context's columnar store refuses to serve the
    executing snapshot (stale arrays, private transaction writes) the
    operator folds the row occurrence directly — same accumulators, same
    finalize, byte-identical rows.
    """

    def __init__(
        self,
        name: str,
        atom_type_name: str,
        group_by,
        aggregates,
        root_filter: Optional[Formula] = None,
    ) -> None:
        self.name = name
        self.atom_type_name = atom_type_name
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        self.root_filter = root_filter
        #: Optional ``(index, count)`` root partition — a worker folding one
        #: slice of a fanned-out Γ accumulates only its own root atoms; the
        #: partial groups are merged via :func:`merge_group_accumulators`.
        self.partition: Optional[Tuple[int, int]] = None

    def describe(self, ctx: ExecutionContext) -> MoleculeTypeDescription:
        return resolve_description(
            ctx.database, MoleculeTypeDescription([self.atom_type_name], [])
        )

    def _spec_attributes(self) -> List[Optional[str]]:
        """One attribute name per spec (``None`` for COUNT(*)/components)."""
        return [
            spec.attribute.attribute if spec.attribute is not None else None
            for spec in self.aggregates
        ]

    def _filter_conjuncts(self) -> Optional[List[Comparison]]:
        """The root filter as simple literal comparisons, or ``None``."""
        if self.root_filter is None:
            return []
        conjuncts: List[Comparison] = []
        for conjunct in split_conjunction(self.root_filter):
            if not isinstance(conjunct, Comparison) or isinstance(
                conjunct.rhs, AttributeRef
            ):
                return None
            conjuncts.append(conjunct)
        return conjuncts

    def rows(self, ctx: ExecutionContext) -> List[Tuple]:
        groups = self.partial_groups(ctx)
        ctx.counters.groups_aggregated += len(groups)
        return finalize_groups(self.group_by, self.aggregates, groups)

    def partial_groups(self, ctx: ExecutionContext) -> "Dict[Tuple, _GroupAccumulator]":
        """The (possibly partition-restricted) accumulated groups, unfinalized.

        Partitioned workers return these raw states for the primary to merge
        through :func:`merge_group_accumulators` before one shared
        :func:`finalize_groups` pass.
        """
        store = getattr(ctx, "columnar", None)
        projection = (
            store.for_execution(self.atom_type_name, ctx) if store is not None else None
        )
        conjuncts = self._filter_conjuncts()
        if projection is not None and conjuncts is not None:
            return self._fold_columnar(ctx, projection, conjuncts)
        if store is not None:
            store.count_fallback()
        return self._fold_rows(ctx)

    def _fold_columnar(
        self, ctx: ExecutionContext, projection, conjuncts: List[Comparison]
    ) -> Dict[Tuple, _GroupAccumulator]:
        identifiers = projection.identifiers
        total = len(identifiers)
        ctx.counters.columnar_rows_scanned += total
        filter_columns = [
            (projection.column(c.lhs.attribute), c.op, c.rhs) for c in conjuncts
        ]
        if filter_columns:
            rows: "range | List[int]" = [
                row
                for row in range(total)
                if all(
                    _compare(op, column[row], rhs)
                    for column, op, rhs in filter_columns
                )
            ]
        else:
            rows = range(total)
        if self.partition is not None:
            rows = [
                row for row in rows if partition_member(identifiers[row], self.partition)
            ]
        # Partition the qualifying rows by group key — the only per-row loop;
        # everything after runs column-wise over each partition's index list.
        key_columns = [projection.column(ref.attribute) for ref in self.group_by]
        partitions: Dict[Tuple, List[int]] = {}
        if len(key_columns) == 1:
            column = key_columns[0]
            for row in rows:
                key = (column[row],)
                bucket = partitions.get(key)
                if bucket is None:
                    bucket = partitions[key] = []
                bucket.append(row)
        elif key_columns:
            for row in rows:
                key = tuple(column[row] for column in key_columns)
                bucket = partitions.get(key)
                if bucket is None:
                    bucket = partitions[key] = []
                bucket.append(row)
        else:
            bucket = list(rows)
            if bucket:
                partitions[()] = bucket
        # Every projection row is one distinct root atom, so the bulk fills
        # below land exactly where fold_atom's setdefault/add would.
        spec_columns = [
            projection.column(attribute) if attribute is not None else None
            for attribute in self._spec_attributes()
        ]
        groups: Dict[Tuple, _GroupAccumulator] = {}
        for key, bucket in partitions.items():
            accumulator = groups[key] = _GroupAccumulator(self.aggregates)
            accumulator.count = len(bucket)
            for index, (spec, column) in enumerate(zip(self.aggregates, spec_columns)):
                if spec.component is not None:
                    accumulator.targets[index] = {identifiers[row] for row in bucket}
                elif spec.distinct:
                    accumulator.targets[index] = {
                        _distinct_key(column[row])
                        for row in bucket
                        if column[row] is not None
                    }
                elif spec.attribute is not None:
                    accumulator.targets[index] = {
                        identifiers[row]: column[row] for row in bucket
                    }
        return groups

    def _fold_rows(self, ctx: ExecutionContext) -> Dict[Tuple, _GroupAccumulator]:
        """Row-path fallback: fold the type occurrence atom by atom."""
        attributes = self._spec_attributes()
        groups: Dict[Tuple, _GroupAccumulator] = {}
        for atom in ctx.database.atyp(self.atom_type_name):
            if not partition_member(atom.identifier, self.partition):
                continue
            ctx.counters.atoms_touched += 1
            if self.root_filter is not None:
                ctx.counters.restrictions_evaluated += 1
                if not self.root_filter.evaluate_atom(atom):
                    continue
            key = tuple(ref.value_from_atom(atom) for ref in self.group_by)
            accumulator = groups.get(key)
            if accumulator is None:
                accumulator = groups[key] = _GroupAccumulator(self.aggregates)
            values = tuple(
                atom.get(attribute) if attribute is not None else None
                for attribute in attributes
            )
            accumulator.fold_atom(self.aggregates, atom.identifier, values)
        return groups
