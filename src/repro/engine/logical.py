"""The logical plan IR shared by MQL translation and the optimizer.

A logical plan is a small tree of algebra operations — the "sound basis to
express the semantics" of MQL made explicit.  The same node types serve three
consumers:

* :class:`~repro.mql.translator.QueryTranslator` produces a literal plan from
  an MQL statement (α for the FROM clause, Σ for WHERE, Π for SELECT, Ω/Δ/Ψ
  for set operations between query blocks);
* :mod:`repro.optimizer.rules` rewrites plans (restriction push-down,
  structure pruning, restriction merging) and
  :mod:`repro.optimizer.statistics` costs them;
* :mod:`repro.engine.executor` compiles plans into the pull-based physical
  operators of :mod:`repro.engine.physical`.

Node types:

* :class:`DefinePlan` — the molecule-type definition α, optionally with a
  *root filter*: a qualification evaluated on root atoms **before** molecule
  derivation (the result of restriction push-down);
* :class:`RestrictPlan` — the molecule-type restriction Σ;
* :class:`ProjectPlan` — the molecule-type projection Π;
* :class:`RecursivePlan` — a recursive molecule-type definition (§5 outlook),
  optionally restricted;
* :class:`SetOpPlan` — Ω (UNION), Δ (DIFFERENCE) or the derived Ψ (INTERSECT)
  between two sub-plans.

DML statements compile to **write plans** — a write node on top of an
ordinary read plan, so the planner optimizes the qualifying read exactly like
a query:

* :class:`InsertMolecule` — ι: insert one complex object (nested data)
  following a molecule-type description;
* :class:`DeleteMolecules` — δ: delete every molecule streamed by the
  *source* read plan (shared subobjects survive unless *cascade*);
* :class:`ModifyAtoms` — μ: update the attributes of the target atom type's
  atoms within every molecule streamed by the *source* read plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.molecule import MoleculeTypeDescription
from repro.core.predicates import AttributeRef, Formula
from repro.core.recursion import RecursiveDescription
from repro.exceptions import MoleculeGraphError


@dataclass(frozen=True)
class DefinePlan:
    """α — molecule-type definition, optionally pre-filtering the root atoms.

    *root_access* is the planner's costed choice of access path for the root
    filter's equality conjuncts: ``None`` leaves the scan operator to its
    default (grid preferred when the attribute pair matches),
    ``("grid", attr, ...)`` forces the grid file, ``("hash", attr, ...)``
    forces per-attribute hash lookups over the named attributes.
    """

    name: str
    description: MoleculeTypeDescription
    root_filter: Optional[Formula] = None
    root_access: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class RestrictPlan:
    """Σ — molecule-type restriction applied to a child plan's result."""

    child: "PlanNode"
    formula: Formula


@dataclass(frozen=True)
class ProjectPlan:
    """Π — molecule-type projection applied to a child plan's result."""

    child: "PlanNode"
    atom_type_names: Tuple[str, ...]


@dataclass(frozen=True)
class RecursivePlan:
    """α_rec — recursive molecule-type definition, optionally restricted."""

    name: str
    description: RecursiveDescription
    formula: Optional[Formula] = None


@dataclass(frozen=True)
class IntervalScanPlan:
    """α_rec accelerated — a recursive definition answered by the structure
    index (interval range scans / compact-adjacency sweeps) instead of the
    fixpoint loop.  Result-equivalent to the :class:`RecursivePlan` it
    replaces; produced only by the optimizer's ``accelerate_recursion`` rule.
    """

    name: str
    description: RecursiveDescription
    formula: Optional[Formula] = None


@dataclass(frozen=True)
class SetOpPlan:
    """Ω / Δ / Ψ between two sub-plans (operator: UNION | DIFFERENCE | INTERSECT)."""

    operator: str
    left: "PlanNode"
    right: "PlanNode"
    name: Optional[str] = None


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in a Γ node: ``func`` over an attribute or a component.

    Exactly one of the targets is set: *attribute* (a resolved atom-attribute
    reference — SUM/MIN/MAX/AVG/COUNT over its non-NULL values), *component*
    (a molecule component type — COUNT of its distinct atoms per group), or
    neither (``COUNT(*)`` — molecules per group).  *distinct* marks
    ``COUNT(DISTINCT attr)``: the accumulator then keeps a set of observed
    values instead of a per-atom value map.  *output* is the column name in
    the result rows.
    """

    func: str
    attribute: Optional[AttributeRef] = None
    component: Optional[str] = None
    output: str = ""
    distinct: bool = False


@dataclass(frozen=True)
class AggregatePlan:
    """Γ — grouped aggregation over a child plan's molecule stream.

    *group_by* keys always reference the root atom type (one molecule = one
    root atom, so root attributes partition the stream unambiguously).
    *strategy* names the physical choice (``"hash"`` or ``"sort"``) the
    planner costed; both produce canonically-ordered, byte-identical rows.
    """

    child: "PlanNode"
    group_by: Tuple[AttributeRef, ...]
    aggregates: Tuple[AggregateSpec, ...]
    strategy: str = "hash"


@dataclass(frozen=True)
class ColumnarAggregatePlan:
    """Γ_col — aggregation answered from the columnar projection.

    Result-equivalent to the single-type :class:`AggregatePlan` it replaces;
    produced only by the optimizer's ``columnarize_aggregate`` rule.  The
    physical operator falls back to the row path when the MVCC gate refuses
    the columnar arrays for the executing snapshot.
    """

    atom_type_name: str
    group_by: Tuple[AttributeRef, ...]
    aggregates: Tuple[AggregateSpec, ...]
    root_filter: Optional[Formula] = None
    name: str = ""


PlanNode = Union[
    DefinePlan,
    RestrictPlan,
    ProjectPlan,
    RecursivePlan,
    IntervalScanPlan,
    SetOpPlan,
    AggregatePlan,
    ColumnarAggregatePlan,
]


@dataclass(frozen=True, eq=False)
class InsertMolecule:
    """ι — insert one complex object following a molecule-type description.

    *data* is the nested-dictionary form also accepted by the manipulation
    facilities: top-level keys are root attributes, child atom-type names map
    to nested objects (or lists of them), ``"_id"`` references an existing
    atom to create a shared subobject.
    """

    name: str
    description: MoleculeTypeDescription
    data: Mapping[str, object]


@dataclass(frozen=True, eq=False)
class DeleteMolecules:
    """δ — delete every molecule produced by the qualifying read *source*.

    Without *cascade* only atoms exclusive to a deleted molecule are removed
    (shared subobjects survive); with *cascade* every component atom goes.
    """

    source: PlanNode
    cascade: bool = False


@dataclass(frozen=True, eq=False)
class ModifyAtoms:
    """μ — update attributes of *atom_type_name* atoms in qualifying molecules.

    *updates* is an ordered tuple of ``(attribute, value)`` pairs applied to
    every atom of the target type occurring in a molecule streamed by
    *source*; atom identity (and hence every link) is preserved.
    """

    source: PlanNode
    atom_type_name: str
    updates: Tuple[Tuple[str, object], ...]


WritePlanNode = Union[InsertMolecule, DeleteMolecules, ModifyAtoms]

SET_OPERATION_SYMBOLS = {"UNION": "Ω", "DIFFERENCE": "Δ", "INTERSECT": "Ψ"}


def describe_plan(plan: PlanNode, indent: str = "") -> str:
    """Render a plan as an indented, human-readable algebra expression."""
    if isinstance(plan, DefinePlan):
        suffix = f" [root filter: {plan.root_filter!r}]" if plan.root_filter is not None else ""
        if plan.root_access is not None:
            suffix += f" [access: {plan.root_access[0]}({', '.join(plan.root_access[1:])})]"
        return f"{indent}α {plan.name}({', '.join(plan.description.atom_type_names)}){suffix}"
    if isinstance(plan, RestrictPlan):
        return f"{indent}Σ [{plan.formula!r}]\n" + describe_plan(plan.child, indent + "  ")
    if isinstance(plan, ProjectPlan):
        return (
            f"{indent}Π [{', '.join(plan.atom_type_names)}]\n"
            + describe_plan(plan.child, indent + "  ")
        )
    if isinstance(plan, RecursivePlan):
        suffix = f" [restr: {plan.formula!r}]" if plan.formula is not None else ""
        return (
            f"{indent}α_rec {plan.name}[{plan.description.atom_type_name} via "
            f"{plan.description.link_type_name} {plan.description.direction}]{suffix}"
        )
    if isinstance(plan, IntervalScanPlan):
        suffix = f" [restr: {plan.formula!r}]" if plan.formula is not None else ""
        return (
            f"{indent}α_rec {plan.name}[{plan.description.atom_type_name} via "
            f"{plan.description.link_type_name} {plan.description.direction}, "
            f"interval scan]{suffix}"
        )
    if isinstance(plan, SetOpPlan):
        symbol = SET_OPERATION_SYMBOLS[plan.operator]
        return (
            f"{indent}{symbol} ({plan.operator.lower()})\n"
            + describe_plan(plan.left, indent + "  ")
            + "\n"
            + describe_plan(plan.right, indent + "  ")
        )
    if isinstance(plan, AggregatePlan):
        keys = ", ".join(repr(key) for key in plan.group_by)
        aggs = ", ".join(spec.output for spec in plan.aggregates)
        header = f"{indent}Γ [{aggs}]"
        if keys:
            header += f" group by [{keys}]"
        header += f" ({plan.strategy})"
        return header + "\n" + describe_plan(plan.child, indent + "  ")
    if isinstance(plan, ColumnarAggregatePlan):
        keys = ", ".join(repr(key) for key in plan.group_by)
        aggs = ", ".join(spec.output for spec in plan.aggregates)
        header = f"{indent}Γ_col {plan.atom_type_name} [{aggs}]"
        if keys:
            header += f" group by [{keys}]"
        if plan.root_filter is not None:
            header += f" [root filter: {plan.root_filter!r}]"
        return header
    if isinstance(plan, InsertMolecule):
        return (
            f"{indent}ι insert {plan.name}"
            f"({', '.join(plan.description.atom_type_names)})"
        )
    if isinstance(plan, DeleteMolecules):
        suffix = " [cascade]" if plan.cascade else ""
        return f"{indent}δ delete{suffix}\n" + describe_plan(plan.source, indent + "  ")
    if isinstance(plan, ModifyAtoms):
        assignments = ", ".join(f"{attr} = {value!r}" for attr, value in plan.updates)
        return (
            f"{indent}μ modify {plan.atom_type_name} [{assignments}]\n"
            + describe_plan(plan.source, indent + "  ")
        )
    raise TypeError(f"unknown plan node: {plan!r}")


def plan_description(plan: PlanNode) -> MoleculeTypeDescription:
    """Return the molecule-type description a plan ultimately derives from.

    For Σ/Π chains this descends to the defining α; for set operations the
    left operand is representative (union compatibility makes both sides
    structurally identical).
    """
    if isinstance(plan, DefinePlan):
        return plan.description
    if isinstance(plan, (RecursivePlan, IntervalScanPlan)):
        return MoleculeTypeDescription([plan.description.atom_type_name], [])
    if isinstance(plan, ColumnarAggregatePlan):
        return MoleculeTypeDescription([plan.atom_type_name], [])
    if isinstance(plan, SetOpPlan):
        return plan_description(plan.left)
    return plan_description(plan.child)


def plan_name(plan: PlanNode) -> str:
    """The name of a plan's result molecule type (inherited through Σ and Π)."""
    if isinstance(plan, (DefinePlan, RecursivePlan, IntervalScanPlan)):
        return plan.name
    if isinstance(plan, ColumnarAggregatePlan):
        return plan.name
    if isinstance(plan, SetOpPlan):
        if plan.name is not None:
            return plan.name
        return f"{plan.operator.lower()}({plan_name(plan.left)},{plan_name(plan.right)})"
    return plan_name(plan.child)


def resolve_projection_names(
    description: MoleculeTypeDescription,
    atom_type_names: Sequence[str],
    owner: Optional[str] = None,
) -> Tuple[str, ...]:
    """Resolve projection names against *description*, accepting bare names.

    Propagated atom types carry decorated names ("state@mt$3"); a projection
    may reference them by the original bare name.  Unknown names raise
    :class:`MoleculeGraphError` exactly like molecule-type projection does;
    *owner* (the projected type's name) is included in the message when known.
    """
    resolved: List[str] = []
    for requested in atom_type_names:
        match = None
        for present in description.atom_type_names:
            if present == requested or present.split("@", 1)[0] == requested:
                match = present
                break
        if match is None:
            subject = (
                f"molecule type {owner!r}" if owner else "the plan's molecule structure"
            )
            raise MoleculeGraphError(f"atom type {requested!r} is not part of {subject}")
        resolved.append(match)
    return tuple(resolved)


def recursive_nodes(
    plan: "PlanNode | WritePlanNode",
) -> Tuple[Union[RecursivePlan, IntervalScanPlan], ...]:
    """Every recursive node (fixpoint or accelerated) in *plan*, pre-order."""
    found: List[Union[RecursivePlan, IntervalScanPlan]] = []

    def walk(node) -> None:
        if isinstance(node, (RecursivePlan, IntervalScanPlan)):
            found.append(node)
        elif isinstance(node, (RestrictPlan, ProjectPlan, AggregatePlan)):
            walk(node.child)
        elif isinstance(node, SetOpPlan):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (DeleteMolecules, ModifyAtoms)):
            walk(node.source)

    walk(plan)
    return tuple(found)


def canonical_structure(description: MoleculeTypeDescription) -> Tuple[FrozenSet, FrozenSet]:
    """Structure signature modulo propagation renaming (union compatibility)."""
    strip = lambda name: name.split("@", 1)[0]  # noqa: E731 - tiny local helper
    nodes = frozenset(strip(name) for name in description.atom_type_names)
    edges = frozenset(
        (dl.link_type_name.split("~", 1)[0], strip(dl.source), strip(dl.target))
        for dl in description.directed_links
    )
    return (nodes, edges)
