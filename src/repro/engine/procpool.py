"""A persistent pool of checkpoint-seeded worker processes for read plans.

The GIL caps CPU-bound query execution at ~1× no matter how many threads
`parallel_query` fans out (the honest E-PERF7 number).  This module buys
real multi-core execution on stock CPython by shipping **compiled logical
plans** to worker **processes**:

* **Seeding.**  Each worker loads the primary's latest checkpoint image and
  replays the WAL tail using the :mod:`repro.storage.recovery` machinery
  verbatim (``load_checkpoint`` / ``apply_checkpoint`` / ``read_wal`` /
  ``apply_ddl_record`` / ``apply_event_record``) — the same idempotent redo
  path crash recovery trusts.  Workers never write the primary's files:
  unlike :func:`~repro.storage.recovery.recover`, seeding does not truncate
  torn WAL tails, it just stops at the last valid record.

* **Catch-up.**  The primary taps its WAL through
  :meth:`~repro.storage.wal.WriteAheadLog.add_observer` into an in-memory
  **record feed** with monotone sequence numbers.  Before a dispatch, each
  worker receives exactly the feed slice past its applied position — never
  a full reload.  Sequence numbers (not generations) drive the slice:
  commit order is not generation order (a later-committing transaction can
  carry smaller generations), so filtering by generation could silently
  drop records.  Generations are used only to *fast-forward* a worker's
  applied generation to the pin (generation ticks without WAL records —
  rollbacks, no-op writes — ship no bytes) and to *refuse* plans pinned to
  a generation behind the worker's state (a worker cannot rewind; the
  router falls back to primary-side snapshot execution).

* **Crash transparency.**  A worker that dies mid-dispatch (``kill -9``
  included) is detected on the pipe, respawned, reseeded from the on-disk
  checkpoint + WAL, caught up from the feed, and the statement retried;
  repeated crashes degrade to primary-side fallback, never to an error.

Because the observer fires *after* the record's bytes reach the OS, the
feed is always a suffix of the durable log: a worker seeded from the files
has at least every record the feed held at spawn time, and re-shipping the
overlap is safe — replay is idempotent (the same property recovery relies
on for the checkpoint-truncate crash window).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import threading

from repro.analysis.runtime import make_lock
from typing import Dict, List, Optional, Tuple

from repro.exceptions import StorageError

#: Dispatch labels used in shipped results and EXPLAIN notes.
DISPATCH_PROCESS = "process"
DISPATCH_PARTITIONED = "process-partitioned"


class WorkerCrashed(Exception):
    """The worker process died mid-conversation (detected on the pipe)."""


class WorkerRefused(Exception):
    """The worker cannot serve the plan's pinned generation."""


# ----------------------------------------------------------- worker process


def _seed_engine(directory: str):
    """Build a read-only engine replica from *directory*'s checkpoint + WAL.

    Thin wrapper over :func:`repro.storage.replication.seed_engine` — the
    seeding path followers share — returning the pool's historical
    ``(engine, generation, records_replayed)`` tuple.
    """
    from repro.storage.replication import seed_engine

    seed = seed_engine(directory, name="prima-worker")
    return seed.engine, seed.generation, seed.records_replayed


def _apply_record(engine, record: Dict[str, object]) -> int:
    """Replay one WAL/feed record; returns the record's highest generation."""
    from repro.storage.replication import apply_record

    return apply_record(engine, record)


def _execute_job(engine, job: Dict[str, object], applied_generation: int):
    """Execute one shipped plan on the worker's engine; returns the payload."""
    from repro.engine.executor import compile_plan
    from repro.engine.physical import (
        AggregationOperator,
        ColumnarAggregate,
        IntervalScan,
        RecursiveScan,
    )
    from repro.storage.shipping import (
        encode_group_states,
        encode_molecule_result,
        encode_row_result,
        plan_from_json,
    )

    pin = int(job["pin"])
    if pin > applied_generation:
        raise WorkerRefused(
            f"plan pinned to generation {pin} but worker applied only "
            f"{applied_generation} — catch-up missing"
        )
    if pin < applied_generation:
        raise WorkerRefused(
            f"plan pinned to generation {pin} but worker already applied "
            f"{applied_generation} — a worker cannot rewind"
        )
    plan = plan_from_json(job["plan"])
    interpreter = engine.interpreter()
    executor = interpreter.executor
    operator = compile_plan(plan)
    partition = job.get("partition")
    if partition is not None:
        if not isinstance(operator, (RecursiveScan, IntervalScan, ColumnarAggregate)):
            raise WorkerRefused(
                f"operator {type(operator).__name__} does not support partitioned execution"
            )
        operator.partition = (int(partition[0]), int(partition[1]))
    ctx = executor.context()
    if isinstance(operator, ColumnarAggregate) and job.get("mode") == "groups":
        groups = operator.partial_groups(ctx)
        payload: Dict[str, object] = {
            "kind": "groups",
            "groups": encode_group_states(operator.aggregates, groups),
        }
    elif isinstance(operator, AggregationOperator):
        payload = encode_row_result(operator.columns(), operator.rows(ctx))
    else:
        payload = encode_molecule_result(operator.execute(ctx))
    counters = ctx.counters
    payload["counters"] = {
        "molecules_derived": counters.molecules_derived,
        "atoms_touched": counters.atoms_touched,
        "restrictions_evaluated": counters.restrictions_evaluated,
        "links_followed": counters.links_followed,
        "index_lookups": counters.index_lookups,
        "groups_aggregated": counters.groups_aggregated,
        "columnar_rows_scanned": counters.columnar_rows_scanned,
    }
    return payload


def _worker_main(directory: str, conn) -> None:
    """Worker-process entry point: seed, then serve the pipe until stopped."""
    try:
        engine, applied_generation, replayed = _seed_engine(directory)
    except BaseException as exc:  # noqa: BLE001 - reported to the primary
        try:
            conn.send(("seed_error", repr(exc)))
        finally:
            conn.close()
        return
    conn.send(("ready", applied_generation, replayed))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "stop":
            conn.send(("stopped",))
            break
        try:
            if op == "ping":
                conn.send(("pong", applied_generation))
            elif op == "catchup":
                _op, records, target = message
                for record in records:
                    _apply_record(engine, record)
                if records:
                    # The records went into the stores through the recovery
                    # primitives, beneath the engine's cached access
                    # structures — drop them so the next plan re-exports.
                    engine._invalidate()  # noqa: SLF001 - intentional internal reuse
                applied_generation = max(applied_generation, int(target))
                conn.send(("caught", applied_generation, len(records)))
            elif op == "execute":
                payload = _execute_job(engine, message[1], applied_generation)
                conn.send(("result", payload))
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except WorkerRefused as refusal:
            conn.send(("refused", str(refusal)))
        except BaseException as exc:  # noqa: BLE001 - reported to the primary
            conn.send(("error", repr(exc)))
    conn.close()


# ---------------------------------------------------------------- primary


class _WorkerHandle:
    """Primary-side state of one worker: process, pipe, applied positions."""

    __slots__ = ("process", "conn", "applied_seq", "applied_gen")

    def __init__(self, process, conn, applied_seq: int, applied_gen: int) -> None:
        self.process = process
        self.conn = conn
        #: Feed position (absolute sequence number) this worker has applied.
        #: Tracked primary-side: it only advances when the primary ships.
        self.applied_seq = applied_seq
        #: Generation the worker has reached (applied records + fast-forwards).
        self.applied_gen = applied_gen


class ProcessPool:
    """Spawn-context worker processes executing shipped read plans.

    Created lazily by :meth:`PrimaEngine.process_pool` (durable engines
    only).  The pool owns the catch-up feed: construction installs a WAL
    observer, so every record appended after this point is shippable
    incrementally; anything earlier is covered by the workers' file-based
    seeding.
    """

    def __init__(self, engine, size: int) -> None:
        if engine.durability is None or engine.wal is None:
            raise StorageError(
                "process-pool execution requires a durable engine: workers "
                "seed from the checkpoint image and WAL tail"
            )
        self._engine = engine
        self._directory = str(engine.durability.directory)
        self._context = multiprocessing.get_context("spawn")
        self._feed: List[Dict[str, object]] = []  # guarded-by: ProcessPool._feed_lock
        self._feed_base = 0  # absolute sequence number of self._feed[0]  # guarded-by: ProcessPool._feed_lock
        self._feed_lock = make_lock("ProcessPool._feed_lock")
        self._closed = False
        self.counters: Dict[str, int] = {
            "workers_started": 0,
            "dispatches": 0,
            "plans_shipped": 0,
            "catchup_records": 0,
            "restarts": 0,
            "refusals": 0,
            "fallbacks": 0,
            "partitioned": 0,
        }
        # Tap the WAL before any worker spawns: every record not yet on the
        # feed at spawn time is, by the observer's post-flush contract,
        # already in the files the worker seeds from.  The tap is one of
        # possibly many subscribers (a replication hub may tail the same
        # log); shutdown removes exactly this one.
        engine.wal.add_observer(self._observe)
        self._workers: List[_WorkerHandle] = [self._spawn() for _ in range(size)]  # guarded-by: ProcessPool._slot_locks
        #: One conversation (catch-up + execute batch, restarts included) at
        #: a time per worker slot — concurrent dispatches interleave across
        #: slots, never on one pipe.
        self._slot_locks: List[threading.Lock] = [
            make_lock("ProcessPool._slot_locks") for _ in self._workers
        ]

    # ------------------------------------------------------------- the feed

    def _observe(self, record: Dict[str, object]) -> None:
        with self._feed_lock:
            self._feed.append(record)

    def feed_position(self) -> int:
        """The absolute sequence number one past the last feed record."""
        with self._feed_lock:
            return self._feed_base + len(self._feed)

    def _feed_slice(self, start: int, stop: int) -> List[Dict[str, object]]:
        with self._feed_lock:
            base = self._feed_base
            return list(self._feed[max(0, start - base) : max(0, stop - base)])

    def _trim_feed(self) -> None:
        """Drop feed records every worker has applied (bounded memory)."""
        floor = min((worker.applied_seq for worker in self._workers), default=0)
        with self._feed_lock:
            drop = floor - self._feed_base
            if drop > 0:
                del self._feed[:drop]
                self._feed_base = floor

    # ------------------------------------------------------------ lifecycle

    @property
    def size(self) -> int:
        return len(self._workers)

    def _spawn(self) -> _WorkerHandle:
        # Capture the feed position *before* the process starts: every
        # record below it is durably in the files the worker reads, and any
        # overlap with records at/after it double-applies idempotently.
        applied_seq = self.feed_position()
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(self._directory, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            reply = parent_conn.recv()
        except (EOFError, OSError) as exc:
            raise StorageError(f"process-pool worker died while seeding: {exc!r}")
        if reply[0] != "ready":
            raise StorageError(f"process-pool worker failed to seed: {reply!r}")
        self.counters["workers_started"] += 1
        return _WorkerHandle(process, parent_conn, applied_seq, int(reply[1]))

    # requires: ProcessPool._slot_locks
    def _restart(self, index: int) -> None:
        worker = self._workers[index]
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=10)
        self._workers[index] = self._spawn()
        self.counters["restarts"] += 1

    def shutdown(self) -> None:
        """Stop every worker and remove the WAL tap (idempotent)."""
        if self._closed:
            return
        self._closed = True
        wal = self._engine.wal
        if wal is not None:
            wal.remove_observer(self._observe)
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
                worker.conn.recv()
            except (EOFError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=10)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=10)
        # Slot locks are deliberately NOT taken here: shutdown runs after
        # the engine unpublished the pool (no new dispatches can reach it)
        # and closing the pipes makes any in-flight conversation fail over
        # to serial execution rather than deadlock against a dead worker.
        self._workers = []  # lock-lint: ignore[unguarded-write] — see above: pool already unpublished, pipes closed

    # ------------------------------------------------------------- dispatch

    def _call(self, worker: _WorkerHandle, message: Tuple) -> Tuple:
        """One pipe round-trip; raises :class:`WorkerCrashed` on a dead pipe."""
        try:
            worker.conn.send(message)
            return worker.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(repr(exc))

    def _catch_up(self, worker: _WorkerHandle, pin_gen: int, cut_seq: int) -> None:
        """Ship the feed slice ``(worker.applied_seq, cut_seq]`` and fast-forward.

        Raises :class:`WorkerRefused` when the worker is already past the
        pin (an explicitly pinned older generation) — it cannot rewind.
        """
        if worker.applied_gen > pin_gen or worker.applied_seq > cut_seq:
            raise WorkerRefused(
                f"worker at generation {worker.applied_gen} (seq {worker.applied_seq}) "
                f"is ahead of the pinned generation {pin_gen} (seq {cut_seq})"
            )
        records = self._feed_slice(worker.applied_seq, cut_seq)
        # A worker has no version store: applying a record puts its state AT
        # that record's generation.  When the dispatch pins an older
        # generation the slice may contain commits past the pin (the cut is
        # the live feed head) — shipping those would make the worker answer
        # for a future the pin must not see, so the plan is refused instead.
        for record in records:
            if int(record.get("gen", 0)) > pin_gen:
                raise WorkerRefused(
                    f"catch-up slice contains a commit at generation "
                    f"{record.get('gen')}, past the pinned generation {pin_gen}"
                )
        reply = self._call(worker, ("catchup", records, pin_gen))
        if reply[0] != "caught":
            raise WorkerCrashed(f"catch-up failed: {reply!r}")
        worker.applied_seq = cut_seq
        worker.applied_gen = max(worker.applied_gen, pin_gen)
        self.counters["catchup_records"] += len(records)

    def catch_up_all(self, pin_gen: int, cut_seq: int) -> None:
        """Bring every worker to *(pin_gen, cut_seq)* (used by benchmarks/tests)."""
        for index in range(len(self._workers)):
            with self._slot_locks[index]:
                try:
                    self._catch_up(self._workers[index], pin_gen, cut_seq)
                except WorkerCrashed:
                    self._restart(index)
                    self._catch_up(self._workers[index], pin_gen, cut_seq)
        self._trim_feed()

    def run_batch(
        self,
        index: int,
        pin_gen: int,
        cut_seq: int,
        jobs: List[Tuple[int, Dict[str, object]]],
    ) -> Dict[int, Tuple]:
        """Run *jobs* (``(key, job)`` pairs) on worker *index*, in order.

        Each job's outcome is a worker reply tuple: ``("result", payload)``,
        ``("refused", why)`` or — after the crash-retry budget is spent —
        ``("fallback", why)``.  A crash mid-batch respawns the worker
        (reseeded from disk, caught up from the feed) and resumes with the
        job that was in flight.
        """
        outcomes: Dict[int, Tuple] = {}
        pending = list(jobs)
        crashes = 0
        with self._slot_locks[index]:
            while pending:
                worker = self._workers[index]
                try:
                    self._catch_up(worker, pin_gen, cut_seq)
                    while pending:
                        key, job = pending[0]
                        reply = self._call(worker, ("execute", job))
                        pending.pop(0)
                        outcomes[key] = reply
                        if reply[0] == "result":
                            self.counters["plans_shipped"] += 1
                        elif reply[0] == "refused":
                            self.counters["refusals"] += 1
                except WorkerRefused as refusal:
                    for key, _job in pending:
                        outcomes[key] = ("refused", str(refusal))
                    self.counters["refusals"] += len(pending)
                    pending = []
                except WorkerCrashed:
                    crashes += 1
                    if crashes > 2:
                        for key, _job in pending:
                            outcomes[key] = ("fallback", "worker crashed repeatedly")
                        pending = []
                    else:
                        self._restart(index)
        return outcomes

    def dispatch_state(self) -> Dict[str, int]:
        """Pool telemetry for the planner's dispatch costing."""
        tail = self.feed_position()
        backlog = max(
            (tail - worker.applied_seq for worker in self._workers), default=0
        )
        return {"workers": len(self._workers), "backlog": backlog}

    def worker_pids(self) -> List[int]:
        """The workers' process ids (crash tests kill these)."""
        return [worker.process.pid for worker in self._workers]
