"""Compilation of logical plans into physical operators, and their execution.

:func:`compile_plan` maps each logical node onto its streaming counterpart
(α → :class:`~repro.engine.physical.MoleculeScan`, Σ →
:class:`~repro.engine.physical.Restrict`, …).  :class:`Executor` binds a
database plus its access structures (index pool, atom network) and runs plans,
materializing only the final result as a
:class:`~repro.core.molecule.MoleculeType`.

The executor itself applies **no** rewrites — optimization is the planner's
job (:mod:`repro.optimizer.planner`), which rewrites and costs the same
logical IR and hands the chosen variant to :func:`Executor.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.core.database import Database
from repro.core.molecule import Molecule, MoleculeType
from repro.engine.logical import (
    AggregatePlan,
    ColumnarAggregatePlan,
    DefinePlan,
    DeleteMolecules,
    InsertMolecule,
    IntervalScanPlan,
    ModifyAtoms,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
    WritePlanNode,
    plan_name,
)
from repro.engine.physical import (
    AggregationOperator,
    ColumnarAggregate,
    Difference,
    ExecutionContext,
    ExecutionCounters,
    HashAggregate,
    IndexPool,
    Intersection,
    IntervalScan,
    MoleculeScan,
    PhysicalOperator,
    Project,
    RecursiveScan,
    Restrict,
    SortedGroupAggregate,
    Union,
)
from repro.engine.write import (
    DeleteMoleculesOp,
    InsertMoleculeOp,
    ModifyAtomsOp,
    WriteOperator,
    WriteSummary,
)


def compile_plan(plan: PlanNode) -> PhysicalOperator:
    """Translate a logical plan into a tree of pull-based physical operators."""
    if isinstance(plan, DefinePlan):
        return MoleculeScan(
            plan.name, plan.description, plan.root_filter, root_access=plan.root_access
        )
    if isinstance(plan, AggregatePlan):
        child = compile_plan(plan.child)
        if plan.strategy == "sort":
            return SortedGroupAggregate(child, plan.group_by, plan.aggregates)
        return HashAggregate(child, plan.group_by, plan.aggregates)
    if isinstance(plan, ColumnarAggregatePlan):
        return ColumnarAggregate(
            plan.name,
            plan.atom_type_name,
            plan.group_by,
            plan.aggregates,
            plan.root_filter,
        )
    if isinstance(plan, RecursivePlan):
        return RecursiveScan(plan.name, plan.description, plan.formula)
    if isinstance(plan, IntervalScanPlan):
        return IntervalScan(plan.name, plan.description, plan.formula)
    if isinstance(plan, RestrictPlan):
        return Restrict(compile_plan(plan.child), plan.formula)
    if isinstance(plan, ProjectPlan):
        return Project(compile_plan(plan.child), plan.atom_type_names, owner=plan_name(plan.child))
    if isinstance(plan, SetOpPlan):
        left = compile_plan(plan.left)
        right = compile_plan(plan.right)
        operator = {"UNION": Union, "DIFFERENCE": Difference, "INTERSECT": Intersection}[
            plan.operator
        ]
        return operator(left, right)
    raise TypeError(f"unknown plan node: {plan!r}")


def compile_write_plan(plan: WritePlanNode) -> WriteOperator:
    """Translate a logical write plan into its physical write operator.

    The qualifying-read source of δ/μ nodes is compiled through
    :func:`compile_plan`, so index-backed root access and atom-network
    traversal serve the write path exactly as they serve queries.
    """
    if isinstance(plan, InsertMolecule):
        return InsertMoleculeOp(plan.name, plan.description, plan.data)
    if isinstance(plan, DeleteMolecules):
        return DeleteMoleculesOp(compile_plan(plan.source), plan.cascade)
    if isinstance(plan, ModifyAtoms):
        return ModifyAtomsOp(compile_plan(plan.source), plan.atom_type_name, plan.updates)
    raise TypeError(f"unknown write plan node: {plan!r}")


@dataclass
class ExecutionResult:
    """The materialized outcome of running one plan."""

    molecule_type: MoleculeType
    database: Database
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)

    def __len__(self) -> int:
        return len(self.molecule_type)

    def __iter__(self) -> Iterator[Molecule]:
        return iter(self.molecule_type)


@dataclass
class AggregateExecutionResult:
    """The outcome of running one Γ plan: named columns over ordered rows."""

    columns: Tuple[str, ...]
    rows: "Tuple[Tuple, ...]"
    database: Database
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> "Iterator[Tuple]":
        return iter(self.rows)


@dataclass
class WriteExecutionResult:
    """The outcome of running one write plan: affected molecules plus counts."""

    molecule_type: MoleculeType
    database: Database
    summary: WriteSummary
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)

    def __len__(self) -> int:
        return len(self.molecule_type)

    def __iter__(self) -> Iterator[Molecule]:
        return iter(self.molecule_type)


class Executor:
    """Runs logical plans over one database with shared access structures.

    The executor consults an :class:`IndexPool` for pushed-down equality
    filters and an optional atom network for link traversal.  The default
    pool does **not** cache transient indexes — a bare :class:`Database` may
    be mutated between runs and the executor has no invalidation hook.
    Callers that can guarantee an immutable database (the storage engine
    binds one pool per snapshot) pass a pool with transient builds enabled.
    """

    def __init__(
        self,
        database: Database,
        indexes: Optional[IndexPool] = None,
        network=None,
        structure=None,
        columnar=None,
    ) -> None:
        self.database = database
        self.indexes = (
            indexes if indexes is not None else IndexPool(database, build_transient=False)
        )
        self.network = network
        #: Optional :class:`~repro.storage.structure_index.StructureIndexStore`
        #: shared with the owning engine; accelerates recursive plans.
        self.structure = structure
        #: Optional :class:`~repro.storage.columnar.ColumnarStore` shared with
        #: the owning engine; accelerates single-type aggregate scans.
        self.columnar = columnar

    def context(
        self,
        counters: Optional[ExecutionCounters] = None,
        snapshot=None,
    ) -> ExecutionContext:
        """A fresh execution context sharing the executor's access structures.

        With *snapshot* (a :class:`~repro.core.versions.Snapshot`) the context
        reads through a pinned :meth:`Database.at` view instead: the head's
        index pool and atom network are bypassed — they are maintained at the
        head generation and would leak post-snapshot state into the read.

        Snapshot contexts are safe to build and run from any thread: every
        object here is freshly constructed, the pinned views resolve
        lock-free over immutable version chains (copying mutable head
        collections briefly under the per-type head locks), and neither the
        shared index pool nor the shared network is touched.  The structure
        index store *is* shared, but it is internally locked and serves a
        pinned reader only when its encoding is provably coherent with the
        pin (falling back to the fixpoint loop otherwise).  Head contexts
        (``snapshot=None``) share those mutable access structures and belong
        to the engine's owning thread.
        """
        if snapshot is None:
            return ExecutionContext(
                self.database, counters, self.indexes, self.network,
                structure=self.structure, columnar=self.columnar,
            )
        return ExecutionContext(
            self.database.at(snapshot), counters, None, None, snapshot=snapshot,
            structure=self.structure, columnar=self.columnar,
        )

    def stream(
        self, plan: PlanNode, context: Optional[ExecutionContext] = None
    ) -> Iterator[Molecule]:
        """Execute *plan* lazily, yielding result molecules as they are produced."""
        ctx = context or self.context()
        return compile_plan(plan).execute(ctx)

    def run(self, plan: PlanNode, context: Optional[ExecutionContext] = None) -> ExecutionResult:
        """Execute *plan* and materialize the result molecule type."""
        ctx = context or self.context()
        operator = compile_plan(plan)
        molecules: Tuple[Molecule, ...] = tuple(operator.execute(ctx))
        description = operator.describe(ctx)
        molecule_type = MoleculeType(plan_name(plan), description, molecules)
        return ExecutionResult(molecule_type, self.database, ctx.counters)

    def run_aggregate(
        self, plan: PlanNode, context: Optional[ExecutionContext] = None
    ) -> AggregateExecutionResult:
        """Execute a Γ plan and materialize its canonically ordered rows."""
        ctx = context or self.context()
        operator = compile_plan(plan)
        if not isinstance(operator, AggregationOperator):
            raise TypeError(f"not an aggregation plan: {plan!r}")
        rows = tuple(operator.rows(ctx))
        return AggregateExecutionResult(
            operator.columns(), rows, self.database, ctx.counters
        )

    def run_write(
        self,
        plan: "WritePlanNode | WriteOperator",
        context: Optional[ExecutionContext] = None,
        txn=None,
    ) -> WriteExecutionResult:
        """Execute a write plan atomically and report the affected molecules.

        Without *txn* the statement runs inside its own auto-committed
        :class:`~repro.manipulation.transactions.Transaction`: any failure —
        a domain violation on a later child, a cardinality error, a broken
        source stream — rolls back every mutation already applied, so a DML
        statement either happens completely or not at all.  On a versioned
        database the commit additionally performs first-committer-wins
        conflict detection.

        With *txn* (an active session transaction, e.g. MQL ``BEGIN WORK``)
        the statement runs inside it under a savepoint: a failing statement
        is undone back to its own start, the surrounding transaction stays
        active, and nothing is published until the session commits.
        """
        from repro.manipulation.transactions import Transaction  # deferred: cycle

        ctx = context or self.context()
        operator = plan if isinstance(plan, WriteOperator) else compile_write_plan(plan)
        if txn is not None:
            mark = txn.savepoint()
            try:
                molecule_type, summary = operator.apply(ctx, txn)
            except BaseException:
                txn.rollback_to(mark)
                raise
            return WriteExecutionResult(molecule_type, self.database, summary, ctx.counters)
        txn = Transaction(self.database)
        txn.begin()
        try:
            molecule_type, summary = operator.apply(ctx, txn)
        except BaseException:
            if txn.is_active:
                txn.rollback()
            raise
        try:
            txn.commit()
        except BaseException:
            # A commit-time failure (e.g. the durable engine's WAL append)
            # must not leave an orphaned active transaction holding applied
            # but undurable state: the auto-committed statement is atomic.
            if txn.is_active:
                txn.rollback()
            raise
        return WriteExecutionResult(molecule_type, self.database, summary, ctx.counters)


def run_plan(
    database: Database,
    plan: PlanNode,
    indexes: Optional[IndexPool] = None,
    network=None,
) -> ExecutionResult:
    """One-call convenience: compile and run *plan* over *database*."""
    return Executor(database, indexes=indexes, network=network).run(plan)
