"""Bill-of-material databases: the reflexive ``composition`` link type (§3.1, §5).

The paper's canonical example of a reflexive link type: "when modeling the
bill-of-material application with its super-component and sub-component view,
we just have to define one reflexive link type called 'composition' on the
atom type 'parts'.  Exploiting the link type's symmetry it is now easy to
evaluate either the super-component view or only the sub-component view."

:func:`build_bill_of_materials` generates a layered assembly graph (a DAG over
parts) of configurable depth and fan-out, optionally with shared sub-assemblies
(the same component used by several parents — non-disjoint complex objects).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.atom import Atom
from repro.core.database import Database


def define_bom_schema(name: str = "BOM_DB") -> Database:
    """Create the bill-of-material schema: one atom type, one reflexive link type."""
    db = Database(name)
    db.define_atom_type(
        "part",
        {"part_no": "string", "description": "string", "level": "integer", "cost": "real"},
    )
    db.define_link_type("composition", "part", "part")
    return db


def build_bill_of_materials(
    depth: int = 3,
    fan_out: int = 3,
    share_every: int = 0,
    n_roots: int = 1,
    name: str = "BOM_DB",
) -> Database:
    """Build a layered bill-of-material database.

    Parameters
    ----------
    depth:
        Number of composition levels below the root assemblies.
    fan_out:
        Number of sub-components per part (per level).
    share_every:
        When > 0, every ``share_every``-th component at a level is *shared*:
        instead of creating a fresh part it reuses an existing part of that
        level, producing non-disjoint sub-assemblies.
    n_roots:
        Number of top-level assemblies.

    The composition link is directed super-component → sub-component in the
    sense of the :class:`repro.core.recursion.RecursiveDescription` "down"
    direction: the super-component is the link's *first* endpoint.
    """
    db = define_bom_schema(name)
    part_type = db.atyp("part")
    composition = db.ltyp("composition")

    counter = 0

    def new_part(level: int) -> Atom:
        nonlocal counter
        counter += 1
        return part_type.add(
            {
                "part_no": f"P{counter:05d}",
                "description": f"part at level {level}",
                "level": level,
                "cost": float(10 * (depth - level + 1)),
            },
            identifier=f"P{counter:05d}",
        )

    roots = [new_part(0) for _ in range(n_roots)]
    current_level: List[Atom] = list(roots)
    per_level_parts: Dict[int, List[Atom]] = {0: list(roots)}

    for level in range(1, depth + 1):
        next_level: List[Atom] = []
        produced_at_level: List[Atom] = []
        for parent in current_level:
            for child_index in range(fan_out):
                reuse = (
                    share_every > 0
                    and produced_at_level
                    and (child_index + 1) % share_every == 0
                )
                if reuse:
                    child = produced_at_level[child_index % len(produced_at_level)]
                else:
                    child = new_part(level)
                    produced_at_level.append(child)
                    next_level.append(child)
                # Directed super-component -> sub-component: parent is the
                # first endpoint of the (reflexive) composition link.
                composition.connect(parent, child)
        per_level_parts[level] = produced_at_level
        current_level = next_level if next_level else current_level
        if not next_level:
            break

    db.validate()
    return db


def root_parts(db: Database) -> Tuple[Atom, ...]:
    """Return the top-level assemblies (parts with level 0)."""
    return tuple(atom for atom in db.atyp("part") if atom.get("level") == 0)
