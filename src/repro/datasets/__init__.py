"""Datasets used by examples, tests, and benchmarks.

* :mod:`repro.datasets.geography` — the Brazil geographic database of the
  paper's Figures 1 and 4 (states, rivers, cities and the shared geographic
  model of points, edges, areas, and nets), plus a parameterizable generator
  for scaled-up variants.
* :mod:`repro.datasets.bill_of_materials` — bill-of-material databases with
  the reflexive ``composition`` link type (parts explosion, §5 outlook).
* :mod:`repro.datasets.synthetic` — random atom networks used by the
  closure/property benchmarks and by hypothesis strategies.
"""

from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.datasets.geography import build_geography, load_geography
from repro.datasets.synthetic import build_synthetic_network

__all__ = [
    "build_bill_of_materials",
    "build_geography",
    "build_synthetic_network",
    "load_geography",
]
