"""The geographic sample database of Figures 1 and 4 (Brazil).

The database schema mirrors the MAD diagram of Fig. 1:

* application atom types: ``state`` (area-like), ``river`` (network-like),
  ``city`` (point-like),
* geographic-model atom types shared by all of them: ``area``, ``net``,
  ``edge``, ``point``,
* link types: ``state-area``, ``river-net``, ``city-point``, ``area-edge``,
  ``net-edge``, ``edge-point``.

The occurrence (:func:`load_geography`) reproduces the situation described in
the paper: "the river Parana shares with the states Minas Gerais, Sao Paulo,
and Parana some edge and point tuples — representing in one case the course of
the river and in another case the border of the states", and contains the
point named ``'pn'`` whose neighborhood (Fig. 2) reaches the states SP, MS,
MG, GO and the river Parana.

:func:`build_geography` generalizes the construction to arbitrary sizes for
the performance benchmarks: a grid of states with shared border edges and a
set of rivers flowing along those borders.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.atom import Atom
from repro.core.database import Database

#: The ten states shown in Fig. 1, with rough areas in thousands of hectares
#: (the figure only shows a few values; the rest are invented but stable).
STATES: Tuple[Tuple[str, str, int], ...] = (
    ("Bahia", "BA", 1000),
    ("Goias", "GO", 900),
    ("Minas Gerais", "MG", 900),
    ("Mato Grosso do Sul", "MS", 850),
    ("Espirito Santo", "ES", 300),
    ("Rio de Janeiro", "RJ", 400),
    ("Sao Paulo", "SP", 750),
    ("Parana", "PR", 600),
    ("Santa Catarina", "SC", 450),
    ("Rio Grande do Sul", "RS", 700),
)

#: The three rivers of Fig. 4 with their lengths in kilometres.
RIVERS: Tuple[Tuple[str, int], ...] = (
    ("Parana", 4880),
    ("Amazonas", 6992),
    ("Uruguai", 1838),
)

#: A few cities (point-like application objects of Fig. 1).
CITIES: Tuple[Tuple[str, str, int], ...] = (
    ("Salvador", "BA", 2900000),
    ("Goiania", "GO", 1500000),
    ("Belo Horizonte", "MG", 2500000),
    ("Campo Grande", "MS", 900000),
    ("Vitoria", "ES", 365000),
    ("Rio de Janeiro", "RJ", 6700000),
    ("Sao Paulo", "SP", 12300000),
    ("Curitiba", "PR", 1900000),
    ("Florianopolis", "SC", 500000),
    ("Porto Alegre", "RS", 1400000),
)

#: Which states the river Parana borders in our occurrence (drives sharing).
PARANA_BORDER_STATES: Tuple[str, ...] = ("MG", "SP", "PR", "MS", "GO")


def define_geography_schema(name: str = "GEO_DB") -> Database:
    """Create the MAD schema of Fig. 1 (atom types and link types, no atoms)."""
    db = Database(name)
    db.define_atom_type("state", {"name": "string", "code": "string", "hectare": "integer"})
    db.define_atom_type("river", {"name": "string", "length": "integer"})
    db.define_atom_type("city", {"name": "string", "population": "integer"})
    db.define_atom_type("area", {"area_id": "string", "kind": "string"})
    db.define_atom_type("net", {"net_id": "string", "kind": "string"})
    db.define_atom_type("edge", {"edge_id": "string", "length": "real"})
    db.define_atom_type("point", {"name": "string", "x": "real", "y": "real"})
    db.define_link_type("state-area", "state", "area")
    db.define_link_type("river-net", "river", "net")
    db.define_link_type("city-point", "city", "point")
    db.define_link_type("area-edge", "area", "edge")
    db.define_link_type("net-edge", "net", "edge")
    db.define_link_type("edge-point", "edge", "point")
    return db


def load_geography() -> Database:
    """Load the paper-faithful Brazil occurrence (Figs. 1, 2 and 4).

    The construction guarantees the two situations the paper highlights:

    * **shared subobjects** — the border edges of MG, SP, PR, MS and GO are
      the same edge atoms as the course edges of the river Parana;
    * the **point 'pn'** sits on the corner where SP, MS, MG and GO meet and
      on the Parana, so the ``point neighborhood`` molecule of 'pn' (Fig. 2)
      contains exactly those four states and that river.
    """
    db = define_geography_schema()
    state_type = db.atyp("state")
    river_type = db.atyp("river")
    city_type = db.atyp("city")
    area_type = db.atyp("area")
    net_type = db.atyp("net")
    edge_type = db.atyp("edge")
    point_type = db.atyp("point")

    states: Dict[str, Atom] = {}
    areas: Dict[str, Atom] = {}
    for index, (name, code, hectare) in enumerate(STATES, start=1):
        state = state_type.add({"name": name, "code": code, "hectare": hectare}, identifier=code)
        area = area_type.add({"area_id": f"a{index}", "kind": "state-border"}, identifier=f"a{index}")
        db.connect("state-area", state, area)
        states[code] = state
        areas[code] = area

    rivers: Dict[str, Atom] = {}
    nets: Dict[str, Atom] = {}
    for index, (name, length) in enumerate(RIVERS, start=1):
        river = river_type.add({"name": name, "length": length}, identifier=name)
        net = net_type.add({"net_id": f"n{index}", "kind": "river-course"}, identifier=f"n{index}")
        db.connect("river-net", river, net)
        rivers[name] = river
        nets[name] = net

    # Points: a grid corner point 'pn' plus two boundary points per state.
    pn = point_type.add({"name": "pn", "x": 0.0, "y": 0.0}, identifier="p_pn")
    points: Dict[str, Atom] = {"pn": pn}
    edge_counter = 0

    def new_edge(length: float) -> Atom:
        nonlocal edge_counter
        edge_counter += 1
        return edge_type.add(
            {"edge_id": f"e{edge_counter}", "length": length}, identifier=f"e{edge_counter}"
        )

    # Border edges shared between the Parana river and its bordering states.
    shared_edges: List[Atom] = []
    for offset, code in enumerate(PARANA_BORDER_STATES, start=1):
        point_a = point_type.add(
            {"name": f"{code}-riverbank-a", "x": float(offset), "y": 1.0},
            identifier=f"p_{code}_ra",
        )
        points[f"{code}-riverbank-a"] = point_a
        edge = new_edge(length=10.0 * offset)
        shared_edges.append(edge)
        db.connect("area-edge", areas[code], edge)          # part of the state border ...
        db.connect("net-edge", nets["Parana"], edge)        # ... and of the river course
        db.connect("edge-point", edge, point_a)
        if code in ("SP", "MS", "MG", "GO"):
            # These four states meet at the corner point 'pn' (Fig. 2).
            db.connect("edge-point", edge, pn)
        else:
            point_b = point_type.add(
                {"name": f"{code}-riverbank-b", "x": float(offset), "y": 2.0},
                identifier=f"p_{code}_rb",
            )
            points[f"{code}-riverbank-b"] = point_b
            db.connect("edge-point", edge, point_b)

    # Border edges shared between neighbouring states (Fig. 2 shows the
    # mt_state molecules of SP and MG overlapping in shared subobjects).
    neighbour_pairs = (("SP", "MG"), ("SP", "PR"), ("MG", "GO"), ("SC", "RS"))
    for index, (left, right) in enumerate(neighbour_pairs, start=1):
        border_point = point_type.add(
            {"name": f"{left}-{right}-border", "x": -float(index), "y": -float(index)},
            identifier=f"p_border_{left}_{right}",
        )
        edge = new_edge(length=15.0 + index)
        db.connect("area-edge", areas[left], edge)
        db.connect("area-edge", areas[right], edge)
        db.connect("edge-point", edge, border_point)

    # Interior edges private to each state's border polygon.
    for index, (name, code, _) in enumerate(STATES, start=1):
        for side in range(2):
            point_a = point_type.add(
                {"name": f"{code}-corner-{side}a", "x": float(index), "y": 10.0 + side},
                identifier=f"p_{code}_{side}a",
            )
            point_b = point_type.add(
                {"name": f"{code}-corner-{side}b", "x": float(index) + 0.5, "y": 10.0 + side},
                identifier=f"p_{code}_{side}b",
            )
            edge = new_edge(length=5.0 + side)
            db.connect("area-edge", areas[code], edge)
            db.connect("edge-point", edge, point_a)
            db.connect("edge-point", edge, point_b)

    # River courses away from any border (private edges of each net).
    for index, (name, _) in enumerate(RIVERS, start=1):
        for segment in range(3):
            point_a = point_type.add(
                {"name": f"{name}-course-{segment}a", "x": 100.0 + index, "y": float(segment)},
                identifier=f"p_{name}_{segment}a",
            )
            point_b = point_type.add(
                {"name": f"{name}-course-{segment}b", "x": 100.0 + index, "y": float(segment) + 0.5},
                identifier=f"p_{name}_{segment}b",
            )
            edge = new_edge(length=25.0 + segment)
            db.connect("net-edge", nets[name], edge)
            db.connect("edge-point", edge, point_a)
            db.connect("edge-point", edge, point_b)

    # Cities sit on their own points (point-like application objects).
    for name, state_code, population in CITIES:
        city = city_type.add(
            {"name": name, "population": population}, identifier=f"city_{state_code}"
        )
        location = point_type.add(
            {"name": f"{name}-location", "x": 200.0, "y": 200.0},
            identifier=f"p_city_{state_code}",
        )
        db.connect("city-point", city, location)

    db.validate()
    return db


def build_geography(
    n_states: int = 10,
    edges_per_state: int = 4,
    n_rivers: int = 3,
    shared_fraction: float = 0.5,
    name: str = "GEO_SYNTH",
) -> Database:
    """Build a scaled synthetic geography with the same schema as Fig. 1.

    States are arranged in a ring; each consecutive pair of states shares one
    border edge, and each river runs along ``shared_fraction`` of the state
    borders (sharing those edge atoms) plus private course edges.  Used by the
    E-PERF1 benchmark to grow the database while keeping the schema and the
    sharing structure of the paper's example.
    """
    db = define_geography_schema(name)
    area_type = db.atyp("area")
    edge_type = db.atyp("edge")
    point_type = db.atyp("point")
    net_type = db.atyp("net")

    states = []
    areas = []
    for index in range(n_states):
        state = db.insert_atom(
            "state",
            identifier=f"S{index}",
            name=f"state-{index}",
            code=f"S{index}",
            hectare=100 + (index * 37) % 900,
        )
        area = area_type.add({"area_id": f"A{index}", "kind": "state-border"}, identifier=f"A{index}")
        db.connect("state-area", state, area)
        states.append(state)
        areas.append(area)

    # Private edges of each state.
    for index, area in enumerate(areas):
        for e in range(edges_per_state):
            edge = edge_type.add(
                {"edge_id": f"E{index}_{e}", "length": float(e + 1)}, identifier=f"E{index}_{e}"
            )
            p1 = point_type.add(
                {"name": f"P{index}_{e}a", "x": float(index), "y": float(e)},
                identifier=f"P{index}_{e}a",
            )
            p2 = point_type.add(
                {"name": f"P{index}_{e}b", "x": float(index), "y": float(e) + 0.5},
                identifier=f"P{index}_{e}b",
            )
            db.connect("area-edge", area, edge)
            db.connect("edge-point", edge, p1)
            db.connect("edge-point", edge, p2)

    # Shared border edges between consecutive states (ring topology).
    border_edges = []
    for index in range(n_states):
        neighbour = (index + 1) % n_states
        edge = edge_type.add(
            {"edge_id": f"B{index}", "length": 7.5}, identifier=f"B{index}"
        )
        corner = point_type.add(
            {"name": f"corner-{index}", "x": float(index), "y": -1.0},
            identifier=f"PB{index}",
        )
        db.connect("area-edge", areas[index], edge)
        db.connect("area-edge", areas[neighbour], edge)
        db.connect("edge-point", edge, corner)
        border_edges.append(edge)

    # Rivers share a fraction of the border edges and add private course edges.
    shared_count = max(1, int(len(border_edges) * shared_fraction)) if border_edges else 0
    for r in range(n_rivers):
        river = db.insert_atom(
            "river", identifier=f"R{r}", name=f"river-{r}", length=1000 + 100 * r
        )
        net = net_type.add({"net_id": f"N{r}", "kind": "river-course"}, identifier=f"N{r}")
        db.connect("river-net", river, net)
        for offset in range(shared_count):
            edge = border_edges[(r + offset * max(1, n_rivers)) % len(border_edges)]
            db.connect("net-edge", net, edge)
        for segment in range(edges_per_state):
            edge = edge_type.add(
                {"edge_id": f"RC{r}_{segment}", "length": 30.0}, identifier=f"RC{r}_{segment}"
            )
            p1 = point_type.add(
                {"name": f"RP{r}_{segment}", "x": 50.0 + r, "y": float(segment)},
                identifier=f"RP{r}_{segment}",
            )
            db.connect("net-edge", net, edge)
            db.connect("edge-point", edge, p1)

    # Cities: one per state, on a private point.
    for index in range(n_states):
        city = db.insert_atom(
            "city",
            identifier=f"C{index}",
            name=f"city-{index}",
            population=10000 * (index + 1),
        )
        location = point_type.add(
            {"name": f"city-point-{index}", "x": 300.0, "y": float(index)},
            identifier=f"PC{index}",
        )
        db.connect("city-point", city, location)

    db.validate()
    return db


def mt_state_description() -> Tuple[Tuple[str, ...], Tuple[Tuple[str, str, str], ...]]:
    """The molecule structure of ``mt_state`` (Fig. 2): state→area→edge→point."""
    return (
        ("state", "area", "edge", "point"),
        (
            ("state-area", "state", "area"),
            ("area-edge", "area", "edge"),
            ("edge-point", "edge", "point"),
        ),
    )


def point_neighborhood_description() -> Tuple[Tuple[str, ...], Tuple[Tuple[str, str, str], ...]]:
    """The molecule structure of ``point neighborhood`` (Fig. 2).

    point→edge, edge→area, area→state, edge→net, net→river — the same link
    types as ``mt_state`` traversed in the opposite direction, demonstrating
    the symmetric use of the bidirectional link concept.
    """
    return (
        ("point", "edge", "area", "state", "net", "river"),
        (
            ("edge-point", "point", "edge"),
            ("area-edge", "edge", "area"),
            ("state-area", "area", "state"),
            ("net-edge", "edge", "net"),
            ("river-net", "net", "river"),
        ),
    )
