"""Random atom-network generator for closure audits and property benchmarks.

The closure theorems (Theorems 1 and 3) quantify over *all* valid databases;
their executable audit (E-THM1 / E-THM3) therefore runs over randomly
generated databases.  :func:`build_synthetic_network` produces a database with
a random schema (a connected random graph of atom types and link types) and a
random occurrence, with a seeded :class:`random.Random` so every run is
reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.atom import Atom
from repro.core.database import Database
from repro.core.graph import DirectedLink
from repro.core.molecule import MoleculeTypeDescription


def build_synthetic_network(
    n_atom_types: int = 4,
    atoms_per_type: int = 20,
    n_link_types: Optional[int] = None,
    links_per_type: int = 30,
    seed: int = 7,
    name: str = "SYNTH_DB",
) -> Database:
    """Build a random but valid database (schema + occurrence).

    The schema's atom-type connection graph is guaranteed to be connected
    (atom type *i* is linked to a random earlier atom type), so molecule-type
    descriptions spanning several types always exist.  Attribute values are
    small integers and short strings, giving selective and non-selective
    predicates alike.
    """
    rng = random.Random(seed)
    db = Database(name)
    type_names = [f"t{i}" for i in range(n_atom_types)]
    for type_name in type_names:
        db.define_atom_type(
            type_name,
            {"key": "string", "value": "integer", "grp": "string"},
        )
        atom_type = db.atyp(type_name)
        for index in range(atoms_per_type):
            atom_type.add(
                {
                    "key": f"{type_name}_{index}",
                    "value": rng.randint(0, 100),
                    "grp": rng.choice(["alpha", "beta", "gamma"]),
                },
                identifier=f"{type_name}_{index}",
            )

    if n_link_types is None:
        n_link_types = max(1, n_atom_types - 1)

    link_names: List[str] = []
    for i in range(1, n_atom_types):
        parent = type_names[rng.randint(0, i - 1)]
        child = type_names[i]
        link_name = f"l_{parent}_{child}"
        if not db.has_link_type(link_name):
            db.define_link_type(link_name, parent, child)
            link_names.append(link_name)
    extra = n_link_types - len(link_names)
    for index in range(max(0, extra)):
        first, second = rng.sample(type_names, 2) if n_atom_types > 1 else (type_names[0], type_names[0])
        link_name = f"l_extra{index}_{first}_{second}"
        db.define_link_type(link_name, first, second)
        link_names.append(link_name)

    for link_name in link_names:
        link_type = db.ltyp(link_name)
        first_name, second_name = link_type.atom_type_names
        first_ids = list(db.atyp(first_name).identifiers())
        second_ids = list(db.atyp(second_name).identifiers())
        for _ in range(links_per_type):
            a = rng.choice(first_ids)
            b = rng.choice(second_ids)
            if first_name == second_name and a == b:
                continue
            link_type.connect(a, b)

    db.validate()
    return db


def random_molecule_description(
    db: Database,
    max_types: int = 3,
    seed: int = 11,
) -> MoleculeTypeDescription:
    """Pick a random valid molecule-type description over *db*'s schema.

    Performs a random walk over the schema graph starting from a random atom
    type, collecting up to *max_types* atom types and the link types that
    connect them; the result always satisfies ``md_graph``.
    """
    rng = random.Random(seed)
    atom_names = list(db.atom_type_names)
    root = rng.choice(atom_names)
    nodes = [root]
    edges: List[DirectedLink] = []
    frontier = [root]
    while frontier and len(nodes) < max_types:
        current = frontier.pop(0)
        candidates = [
            lt for lt in db.link_types_of(current) if lt.other_type(current) not in nodes
        ]
        rng.shuffle(candidates)
        for link_type in candidates[:2]:
            target = link_type.other_type(current)
            if target in nodes or len(nodes) >= max_types:
                continue
            nodes.append(target)
            edges.append(DirectedLink(link_type.name, current, target))
            frontier.append(target)
    return MoleculeTypeDescription(nodes, edges)
