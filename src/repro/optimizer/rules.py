"""Algebraic rewrite rules over molecule-query plans.

Four rules, all of which preserve the result molecules (their correctness is
checked by the optimizer tests, the executor/algebra parity tests and the
ablation benchmark):

* :func:`merge_restrictions` — ``Σ[f2](Σ[f1](x)) → Σ[f1 AND f2](x)``; avoids
  one full pass over the intermediate molecule stream.
* :func:`push_down_restriction` — when the restriction formula only references
  the *root* atom type of the defining α, evaluate it on root atoms before
  derivation (``Σ[f](α(...)) → α[root filter f](...)``); molecules that would
  be filtered out are never derived, and the scan can answer equality filters
  through a secondary index.
* :func:`prune_structure` — drop atom types that neither the projection nor
  any restriction references (and that are not needed to keep the structure
  coherent); the hierarchical join then has fewer branches to follow.
* :func:`accelerate_recursion` — swap a fixpoint :class:`RecursivePlan` for an
  :class:`IntervalScanPlan` when a registered structure index covers its
  recursive description; closures are then answered by interval range scans
  (or compact-adjacency sweeps) instead of hop-by-hop link chasing.

All rules recurse through set operations (each side of Ω/Δ/Ψ is rewritten
independently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.core.molecule import MoleculeTypeDescription
from repro.core.predicates import And, Formula
from repro.engine.logical import (
    DefinePlan,
    IntervalScanPlan,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
)


@dataclass
class RewriteResult:
    """A rewritten plan plus the names of the rules that fired."""

    plan: PlanNode
    applied_rules: Tuple[str, ...] = ()


def merge_restrictions(plan: PlanNode) -> RewriteResult:
    """Collapse directly nested restrictions into a single conjunction."""
    applied: List[str] = []

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, RestrictPlan):
            child = walk(node.child)
            if isinstance(child, RestrictPlan):
                applied.append("merge_restrictions")
                return RestrictPlan(child.child, And(child.formula, node.formula))
            return RestrictPlan(child, node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        if isinstance(node, SetOpPlan):
            return SetOpPlan(node.operator, walk(node.left), walk(node.right), node.name)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def push_down_restriction(plan: PlanNode) -> RewriteResult:
    """Move root-only restrictions into the defining α as a root filter."""
    applied: List[str] = []

    def references_only_root(formula: Formula, description: MoleculeTypeDescription) -> bool:
        referenced = formula.referenced_atom_types()
        if not referenced:
            return False  # unqualified or opaque predicates stay where they are
        root_bare = description.root.split("@", 1)[0]
        return all(name.split("@", 1)[0] == root_bare for name in referenced)

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, RestrictPlan):
            child = walk(node.child)
            if isinstance(child, DefinePlan) and references_only_root(
                node.formula, child.description
            ):
                applied.append("push_down_restriction")
                combined = (
                    node.formula
                    if child.root_filter is None
                    else And(child.root_filter, node.formula)
                )
                return DefinePlan(child.name, child.description, combined)
            return RestrictPlan(child, node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        if isinstance(node, SetOpPlan):
            return SetOpPlan(node.operator, walk(node.left), walk(node.right), node.name)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def prune_structure(plan: PlanNode) -> RewriteResult:
    """Remove atom types no projection or restriction needs from the α structure.

    Only applies when the outermost operation of a query block is a projection
    (otherwise the full structure is part of the result and nothing may be
    dropped).  Set operations are pruned side by side — pruning never changes
    the post-projection structure, so union compatibility is preserved.  The
    pruned structure keeps every atom type on a root-to-needed-type path so it
    stays coherent.
    """
    if isinstance(plan, SetOpPlan):
        left = prune_structure(plan.left)
        right = prune_structure(plan.right)
        return RewriteResult(
            SetOpPlan(plan.operator, left.plan, right.plan, plan.name),
            left.applied_rules + right.applied_rules,
        )
    if not isinstance(plan, ProjectPlan):
        return RewriteResult(plan, ())

    needed: Set[str] = {name.split("@", 1)[0] for name in plan.atom_type_names}

    def collect_restrictions(node: PlanNode) -> None:
        if isinstance(node, RestrictPlan):
            for atom_type in node.formula.referenced_atom_types():
                needed.add(atom_type.split("@", 1)[0])
            collect_restrictions(node.child)
        elif isinstance(node, ProjectPlan):
            collect_restrictions(node.child)
        elif isinstance(node, DefinePlan) and node.root_filter is not None:
            for atom_type in node.root_filter.referenced_atom_types():
                needed.add(atom_type.split("@", 1)[0])

    collect_restrictions(plan)
    applied: List[str] = []

    def prune_description(description: MoleculeTypeDescription) -> MoleculeTypeDescription:
        keep: Set[str] = set()
        for target in needed:
            path = _path_to(description, target)
            keep.update(path)
        keep.add(description.root)
        if keep >= set(description.atom_type_names):
            return description
        ordered = [name for name in description.atom_type_names if name in keep]
        applied.append("prune_structure")
        return description.projected(ordered)

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, DefinePlan):
            return DefinePlan(node.name, prune_description(node.description), node.root_filter)
        if isinstance(node, RestrictPlan):
            return RestrictPlan(walk(node.child), node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def _path_to(description: MoleculeTypeDescription, target_bare: str) -> Set[str]:
    """Atom types on some root-to-target path (empty when the target is absent)."""
    target = None
    for name in description.atom_type_names:
        if name.split("@", 1)[0] == target_bare:
            target = name
            break
    if target is None:
        return set()
    # Walk parents back to the root, accumulating every node on the way.
    path: Set[str] = {target}
    frontier = [target]
    while frontier:
        current = frontier.pop()
        for directed in description.parents_of(current):
            if directed.source not in path:
                path.add(directed.source)
                frontier.append(directed.source)
    return path


def accelerate_recursion(plan: PlanNode, accelerators) -> RewriteResult:
    """Replace fixpoint recursion with an interval scan where an index exists.

    *accelerators* is the engine's
    :class:`~repro.storage.structure_index.StructureIndexStore` (or ``None``
    outside an engine).  The rule fires only for descriptions whose
    ``(atom type, link type, direction)`` key has been registered via
    ``CREATE STRUCTURE INDEX`` — the physical operator still falls back to
    the fixpoint loop per root when the index cannot answer coherently, so
    firing the rule never changes results.
    """
    applied: List[str] = []
    if accelerators is None:
        return RewriteResult(plan, ())

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, RecursivePlan) and accelerators.is_registered(node.description):
            applied.append("accelerate_recursion")
            return IntervalScanPlan(node.name, node.description, node.formula)
        if isinstance(node, RestrictPlan):
            return RestrictPlan(walk(node.child), node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        if isinstance(node, SetOpPlan):
            return SetOpPlan(node.operator, walk(node.left), walk(node.right), node.name)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def rewrite(plan: PlanNode, accelerators=None) -> RewriteResult:
    """Apply all rules in their canonical order: merge, push down, prune,
    accelerate recursion.

    A rule firing in several places (e.g. on both sides of a union) is
    reported once.
    """
    merged = merge_restrictions(plan)
    pushed = push_down_restriction(merged.plan)
    pruned = prune_structure(pushed.plan)
    accelerated = accelerate_recursion(pruned.plan, accelerators)
    applied = (
        merged.applied_rules
        + pushed.applied_rules
        + pruned.applied_rules
        + accelerated.applied_rules
    )
    return RewriteResult(accelerated.plan, tuple(dict.fromkeys(applied)))
