"""Algebraic rewrite rules over molecule-query plans.

Six rules, all of which preserve the result molecules (their correctness is
checked by the optimizer tests, the executor/algebra parity tests and the
ablation benchmark):

* :func:`merge_restrictions` — ``Σ[f2](Σ[f1](x)) → Σ[f1 AND f2](x)``; avoids
  one full pass over the intermediate molecule stream.
* :func:`push_down_restriction` — when the restriction formula only references
  the *root* atom type of the defining α, evaluate it on root atoms before
  derivation (``Σ[f](α(...)) → α[root filter f](...)``); molecules that would
  be filtered out are never derived, and the scan can answer equality filters
  through a secondary index.
* :func:`choose_root_access` — cost composite grid-file probes against the
  best single hash-bucket lookup for multi-equality root filters and pin the
  winner on the α as its ``root_access`` (the scan previously always
  preferred the grid).
* :func:`prune_structure` — drop atom types that neither the projection nor
  any restriction references (and that are not needed to keep the structure
  coherent); the hierarchical join then has fewer branches to follow.
* :func:`accelerate_recursion` — swap a fixpoint :class:`RecursivePlan` for an
  :class:`IntervalScanPlan` when a registered structure index covers its
  recursive description; closures are then answered by interval range scans
  (or compact-adjacency sweeps) instead of hop-by-hop link chasing.
* :func:`columnarize_aggregate` — route a Γ over a single-type, link-free α
  (with an index-friendly literal filter, or none) onto the columnar
  projection scan; the physical operator still falls back to the row path
  whenever the projection cannot serve the read coherently, so firing the
  rule never changes results.

All rules recurse through set operations (each side of Ω/Δ/Ψ is rewritten
independently) and through Γ inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.molecule import MoleculeTypeDescription
from repro.core.predicates import (
    And,
    AttributeRef,
    Comparison,
    Formula,
    split_conjunction,
)
from repro.engine.logical import (
    AggregatePlan,
    ColumnarAggregatePlan,
    DefinePlan,
    IntervalScanPlan,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
)


@dataclass
class RewriteResult:
    """A rewritten plan plus the names of the rules that fired."""

    plan: PlanNode
    applied_rules: Tuple[str, ...] = ()


def merge_restrictions(plan: PlanNode) -> RewriteResult:
    """Collapse directly nested restrictions into a single conjunction."""
    applied: List[str] = []

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, RestrictPlan):
            child = walk(node.child)
            if isinstance(child, RestrictPlan):
                applied.append("merge_restrictions")
                return RestrictPlan(child.child, And(child.formula, node.formula))
            return RestrictPlan(child, node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        if isinstance(node, AggregatePlan):
            return AggregatePlan(walk(node.child), node.group_by, node.aggregates, node.strategy)
        if isinstance(node, SetOpPlan):
            return SetOpPlan(node.operator, walk(node.left), walk(node.right), node.name)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def push_down_restriction(plan: PlanNode) -> RewriteResult:
    """Move root-only restrictions into the defining α as a root filter."""
    applied: List[str] = []

    def references_only_root(formula: Formula, description: MoleculeTypeDescription) -> bool:
        referenced = formula.referenced_atom_types()
        if not referenced:
            return False  # unqualified or opaque predicates stay where they are
        root_bare = description.root.split("@", 1)[0]
        return all(name.split("@", 1)[0] == root_bare for name in referenced)

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, RestrictPlan):
            child = walk(node.child)
            if isinstance(child, DefinePlan) and references_only_root(
                node.formula, child.description
            ):
                applied.append("push_down_restriction")
                combined = (
                    node.formula
                    if child.root_filter is None
                    else And(child.root_filter, node.formula)
                )
                return DefinePlan(child.name, child.description, combined, child.root_access)
            return RestrictPlan(child, node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        if isinstance(node, AggregatePlan):
            return AggregatePlan(walk(node.child), node.group_by, node.aggregates, node.strategy)
        if isinstance(node, SetOpPlan):
            return SetOpPlan(node.operator, walk(node.left), walk(node.right), node.name)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def prune_structure(plan: PlanNode) -> RewriteResult:
    """Remove atom types no projection or restriction needs from the α structure.

    Only applies when the outermost operation of a query block is a projection
    (otherwise the full structure is part of the result and nothing may be
    dropped).  Set operations are pruned side by side — pruning never changes
    the post-projection structure, so union compatibility is preserved.  The
    pruned structure keeps every atom type on a root-to-needed-type path so it
    stays coherent.
    """
    if isinstance(plan, SetOpPlan):
        left = prune_structure(plan.left)
        right = prune_structure(plan.right)
        return RewriteResult(
            SetOpPlan(plan.operator, left.plan, right.plan, plan.name),
            left.applied_rules + right.applied_rules,
        )
    if not isinstance(plan, ProjectPlan):
        return RewriteResult(plan, ())

    needed: Set[str] = {name.split("@", 1)[0] for name in plan.atom_type_names}

    def collect_restrictions(node: PlanNode) -> None:
        if isinstance(node, RestrictPlan):
            for atom_type in node.formula.referenced_atom_types():
                needed.add(atom_type.split("@", 1)[0])
            collect_restrictions(node.child)
        elif isinstance(node, ProjectPlan):
            collect_restrictions(node.child)
        elif isinstance(node, DefinePlan) and node.root_filter is not None:
            for atom_type in node.root_filter.referenced_atom_types():
                needed.add(atom_type.split("@", 1)[0])

    collect_restrictions(plan)
    applied: List[str] = []

    def prune_description(description: MoleculeTypeDescription) -> MoleculeTypeDescription:
        keep: Set[str] = set()
        for target in needed:
            path = _path_to(description, target)
            keep.update(path)
        keep.add(description.root)
        if keep >= set(description.atom_type_names):
            return description
        ordered = [name for name in description.atom_type_names if name in keep]
        applied.append("prune_structure")
        return description.projected(ordered)

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, DefinePlan):
            return DefinePlan(
                node.name, prune_description(node.description), node.root_filter, node.root_access
            )
        if isinstance(node, RestrictPlan):
            return RestrictPlan(walk(node.child), node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def _path_to(description: MoleculeTypeDescription, target_bare: str) -> Set[str]:
    """Atom types on some root-to-target path (empty when the target is absent)."""
    target = None
    for name in description.atom_type_names:
        if name.split("@", 1)[0] == target_bare:
            target = name
            break
    if target is None:
        return set()
    # Walk parents back to the root, accumulating every node on the way.
    path: Set[str] = {target}
    frontier = [target]
    while frontier:
        current = frontier.pop()
        for directed in description.parents_of(current):
            if directed.source not in path:
                path.add(directed.source)
                frontier.append(directed.source)
    return path


def accelerate_recursion(plan: PlanNode, accelerators) -> RewriteResult:
    """Replace fixpoint recursion with an interval scan where an index exists.

    *accelerators* is the engine's
    :class:`~repro.storage.structure_index.StructureIndexStore` (or ``None``
    outside an engine).  The rule fires only for descriptions whose
    ``(atom type, link type, direction)`` key has been registered via
    ``CREATE STRUCTURE INDEX`` — the physical operator still falls back to
    the fixpoint loop per root when the index cannot answer coherently, so
    firing the rule never changes results.
    """
    applied: List[str] = []
    if accelerators is None:
        return RewriteResult(plan, ())

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, RecursivePlan) and accelerators.is_registered(node.description):
            applied.append("accelerate_recursion")
            return IntervalScanPlan(node.name, node.description, node.formula)
        if isinstance(node, RestrictPlan):
            return RestrictPlan(walk(node.child), node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        if isinstance(node, AggregatePlan):
            return AggregatePlan(walk(node.child), node.group_by, node.aggregates, node.strategy)
        if isinstance(node, SetOpPlan):
            return SetOpPlan(node.operator, walk(node.left), walk(node.right), node.name)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def _equality_attributes(formula: Formula, root_type: str) -> List[str]:
    """Root attributes bound by literal equality conjuncts of *formula*.

    Mirrors the scan's own conjunct extraction
    (:meth:`~repro.engine.physical.MoleculeScan._indexed_candidates`) so the
    access choice is costed on exactly the attributes the probe would use.
    """
    root_bare = root_type.split("@", 1)[0]
    attributes: List[str] = []
    for conjunct in split_conjunction(formula):
        if not isinstance(conjunct, Comparison) or conjunct.op not in ("=", "=="):
            continue
        if isinstance(conjunct.rhs, AttributeRef):
            continue
        lhs_type = conjunct.lhs.atom_type
        if lhs_type is not None and lhs_type.split("@", 1)[0] != root_bare:
            continue
        if conjunct.lhs.attribute not in attributes:
            attributes.append(conjunct.lhs.attribute)
    return attributes


def choose_root_access(plan: PlanNode, statistics=None) -> RewriteResult:
    """Pin the costed grid-vs-hash access method on multi-equality α scans.

    *statistics* is a :class:`~repro.optimizer.statistics.DatabaseStatistics`
    or a zero-argument callable returning one (evaluated only when a
    candidate scan exists, preserving the planner's lazy collection).  The
    scan's built-in default is the composite grid probe, so the rule only
    reports firing when the cost model overturns it in favour of a hash
    bucket on the most selective attribute — either way the full root filter
    still post-checks every candidate, so the choice never affects results.
    """
    applied: List[str] = []
    if statistics is None:
        return RewriteResult(plan, ())
    from repro.optimizer.statistics import CostModel  # deferred: keeps import cost off the rule path

    state: dict = {}

    def cost_model() -> CostModel:
        if "model" not in state:
            stats = statistics() if callable(statistics) else statistics
            state["model"] = CostModel(stats)
        return state["model"]

    def decide(node: DefinePlan) -> DefinePlan:
        if node.root_access is not None or node.root_filter is None:
            return node
        attributes = _equality_attributes(node.root_filter, node.description.root)
        if len(attributes) < 2:
            return node  # single-attribute probes already use the hash index
        choice = cost_model().root_access_choice(node.description.root, attributes)
        if choice is None or choice[0][0] != "hash":
            return node  # the grid remains the scan's default
        applied.append("choose_root_access")
        return DefinePlan(node.name, node.description, node.root_filter, choice[0])

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, DefinePlan):
            return decide(node)
        if isinstance(node, RestrictPlan):
            return RestrictPlan(walk(node.child), node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        if isinstance(node, AggregatePlan):
            return AggregatePlan(walk(node.child), node.group_by, node.aggregates, node.strategy)
        if isinstance(node, SetOpPlan):
            return SetOpPlan(node.operator, walk(node.left), walk(node.right), node.name)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def _literal_conjunction(formula: Formula) -> "Optional[Tuple[Comparison, ...]]":
    """*formula* as simple literal comparisons, or ``None`` when ineligible."""
    conjuncts: List[Comparison] = []
    for conjunct in split_conjunction(formula):
        if not isinstance(conjunct, Comparison) or isinstance(conjunct.rhs, AttributeRef):
            return None
        conjuncts.append(conjunct)
    return tuple(conjuncts)


def columnarize_aggregate(plan: PlanNode, columnar) -> RewriteResult:
    """Route an eligible Γ onto the columnar projection scan.

    *columnar* is the engine's
    :class:`~repro.storage.columnar.ColumnarStore` (or ``None`` outside an
    engine).  Eligible means: the Γ input is a bare single-type, link-free α
    whose root filter is absent or a conjunction of literal comparisons —
    exactly the shape the columnar operator can evaluate column-wise.  The
    operator re-checks coherence at execution time and falls back to the row
    path over the same (possibly pinned) view, so the rewrite is always
    result-preserving.
    """
    applied: List[str] = []
    if columnar is None or not getattr(columnar, "enabled", True):
        return RewriteResult(plan, ())

    def eligible(node: AggregatePlan) -> Optional[DefinePlan]:
        child = node.child
        if not isinstance(child, DefinePlan):
            return None
        description = child.description
        if len(description.atom_type_names) != 1 or description.directed_links:
            return None
        if child.root_filter is not None and _literal_conjunction(child.root_filter) is None:
            return None
        return child

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, AggregatePlan):
            child = eligible(node)
            if child is not None:
                applied.append("columnarize_aggregate")
                return ColumnarAggregatePlan(
                    child.description.root,
                    node.group_by,
                    node.aggregates,
                    root_filter=child.root_filter,
                    name=child.name,
                )
            return AggregatePlan(walk(node.child), node.group_by, node.aggregates, node.strategy)
        if isinstance(node, RestrictPlan):
            return RestrictPlan(walk(node.child), node.formula)
        if isinstance(node, ProjectPlan):
            return ProjectPlan(walk(node.child), node.atom_type_names)
        if isinstance(node, SetOpPlan):
            return SetOpPlan(node.operator, walk(node.left), walk(node.right), node.name)
        return node

    return RewriteResult(walk(plan), tuple(applied))


def rewrite(plan: PlanNode, accelerators=None, columnar=None, statistics=None) -> RewriteResult:
    """Apply all rules in their canonical order: merge, push down, choose the
    root access method, prune, accelerate recursion, columnarize aggregates.

    A rule firing in several places (e.g. on both sides of a union) is
    reported once.
    """
    merged = merge_restrictions(plan)
    pushed = push_down_restriction(merged.plan)
    access = choose_root_access(pushed.plan, statistics)
    pruned = prune_structure(access.plan)
    accelerated = accelerate_recursion(pruned.plan, accelerators)
    columnarized = columnarize_aggregate(accelerated.plan, columnar)
    applied = (
        merged.applied_rules
        + pushed.applied_rules
        + access.applied_rules
        + pruned.applied_rules
        + accelerated.applied_rules
        + columnarized.applied_rules
    )
    return RewriteResult(columnarized.plan, tuple(dict.fromkeys(applied)))
