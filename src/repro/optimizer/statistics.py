"""Statistics and a simple cost model for molecule-query plans.

The cost model estimates the number of atoms a plan touches: molecule
derivation visits, per root atom, the expected number of component atoms
(computed from average link degrees along the structure); restrictions cost
one evaluation per molecule; pushed-down root filters scale the number of
derivations by the filter's estimated selectivity.  The absolute values are
crude, but they rank plan variants correctly on the workloads the E-PERF3
benchmark runs — which is all a rule-driven planner needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.core.database import Database
from repro.core.molecule import MoleculeTypeDescription
from repro.core.predicates import Comparison, Formula
from repro.engine.logical import (
    AggregatePlan,
    ColumnarAggregatePlan,
    DefinePlan,
    IntervalScanPlan,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
    plan_description,
)

#: Default selectivity assumed for a predicate whose selectivity cannot be estimated.
DEFAULT_SELECTIVITY = 0.25

#: Cost units per closure member reached by the fixpoint loop: every member
#: is found by scanning its parent's incident links (copy + orient + filter),
#: several times the cost of an indexed touch.
FIXPOINT_HOP_COST = 4.0

#: Cost units per closure member emitted by an interval range scan (one
#: sorted-array slot plus one atom fetch).
INTERVAL_TOUCH_COST = 1.0

#: Cost units per row visited by a columnar aggregate scan: a list index into
#: the attribute array instead of a per-atom dict traversal plus molecule
#: assembly — a fraction of a row-path touch.
COLUMNAR_TOUCH_COST = 0.25

#: Fixed cost units per dimension of a composite grid-file probe (locating
#: and intersecting the matching grid regions).
GRID_PROBE_COST = 8.0

#: Fixed cost units for one hash-index bucket lookup.
HASH_PROBE_COST = 1.0

#: Fixed cost units for shipping one compiled plan to a worker process:
#: codec round-trip, pipe transfer, and result decode on the way back.
#: Dispatch only pays off once the plan's execution cost dwarfs this.
PLAN_SHIP_COST = 250.0

#: Cost units per WAL record a worker must apply to catch up to the pinned
#: generation before it may execute the shipped plan (decode + store write
#: + cache invalidation, amortized).
CATCHUP_RECORD_COST = 2.0

#: Fixed cost units for routing one read statement to an in-process
#: follower replica: snapshot pin + parse on the follower's interpreter.
#: Far cheaper than PLAN_SHIP_COST (no codec, no pipe), so replica routing
#: pays off earlier — but a lagging follower still owes one catch-up
#: record application per feed record behind the pin.
REPLICA_ROUTE_COST = 50.0


def recursion_profile_key(description) -> Tuple[str, str, str]:
    """The profile key of a recursive description (``max_depth`` is per-query)."""
    return (
        description.atom_type_name,
        description.link_type_name,
        description.direction,
    )


@dataclass
class DatabaseStatistics:
    """Occurrence sizes and average link degrees collected from a database."""

    atom_counts: Dict[str, int] = field(default_factory=dict)
    link_counts: Dict[str, int] = field(default_factory=dict)
    distinct_values: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Observed fixpoint behaviour per recursive description — running
    #: averages of closure size and traversal depth, fed back by the
    #: interpreter after each recursive execution.  Keys are
    #: ``(atom type, link type, direction)``.
    recursion_profiles: Dict[Tuple[str, str, str], Dict[str, float]] = field(
        default_factory=dict
    )

    @classmethod
    def collect(cls, database: Database) -> "DatabaseStatistics":
        """Gather statistics from *database* (single pass over the occurrences).

        Each occurrence is materialized atomically (``.occurrence`` is a
        single C-level copy) before Python-level iteration, so collection
        can run while writer threads mutate the head — the counts are then
        a consistent point-in-time estimate rather than a crash.
        """
        statistics = cls()
        for atom_type in database.atom_types:
            atoms = atom_type.occurrence
            statistics.atom_counts[atom_type.name] = len(atoms)
            for attribute in atom_type.description.names:
                values = {atom.get(attribute) for atom in atoms}
                statistics.distinct_values[(atom_type.name, attribute)] = max(1, len(values))
        for link_type in database.link_types:
            statistics.link_counts[link_type.name] = len(link_type)
        return statistics

    def apply_event(self, event) -> None:
        """Fold one change event into the occurrence counts.

        Atom/link counts (the inputs of the fan-out and cardinality
        estimates) stay exact; per-attribute distinct-value counts are left
        as collected — they only shape selectivity guesses, and drifting
        there changes rankings, never results.  This is what lets a planner
        survive writes without re-scanning the database.
        """
        if event.kind == "atom_inserted":
            self.atom_counts[event.type_name] = self.atom_counts.get(event.type_name, 0) + 1
        elif event.kind == "atom_deleted":
            self.atom_counts[event.type_name] = max(
                0, self.atom_counts.get(event.type_name, 0) - 1
            )
        elif event.kind == "link_connected":
            self.link_counts[event.type_name] = self.link_counts.get(event.type_name, 0) + 1
        elif event.kind == "link_disconnected":
            self.link_counts[event.type_name] = max(
                0, self.link_counts.get(event.type_name, 0) - 1
            )

    def observe_recursion(
        self,
        key: Tuple[str, str, str],
        roots: int,
        avg_closure: float,
        avg_depth: float,
    ) -> None:
        """Fold one observed recursive execution into the running profile.

        *roots* is the number of molecules expanded, *avg_closure* their mean
        closure size (atoms per molecule), *avg_depth* the mean number of
        fixpoint iterations (maximum recursion level reached).  This replaces
        the flat ``atoms + links`` recursion heuristic with measured data, so
        the rewrite-vs-fixpoint choice (and EXPLAIN's depth/closure report)
        tracks the actual workload.
        """
        if roots <= 0:
            return
        profile = self.recursion_profiles.get(key)
        if profile is None:
            self.recursion_profiles[key] = {
                "runs": 1.0,
                "roots": float(roots),
                "avg_closure": float(avg_closure),
                "avg_depth": float(avg_depth),
            }
            return
        runs = profile["runs"] + 1.0
        weight = 1.0 / runs
        profile["runs"] = runs
        profile["roots"] = profile["roots"] + (roots - profile["roots"]) * weight
        profile["avg_closure"] = (
            profile["avg_closure"] + (avg_closure - profile["avg_closure"]) * weight
        )
        profile["avg_depth"] = (
            profile["avg_depth"] + (avg_depth - profile["avg_depth"]) * weight
        )

    def recursion_profile(
        self, key: Tuple[str, str, str]
    ) -> "Dict[str, float] | None":
        """The observed profile for *key*, or ``None`` before any execution."""
        return self.recursion_profiles.get(key)

    def average_fanout(self, link_type_name: str, source_type: str) -> float:
        """Average number of links per source atom for *link_type_name*."""
        links = self.link_counts.get(link_type_name.split("~", 1)[0], self.link_counts.get(link_type_name, 0))
        atoms = self.atom_counts.get(source_type.split("@", 1)[0], self.atom_counts.get(source_type, 1))
        if atoms == 0:
            return 0.0
        return links / atoms

    def selectivity(self, formula: Formula) -> float:
        """Estimate the fraction of candidates satisfying *formula*."""
        if isinstance(formula, Comparison):
            atom_type = formula.lhs.atom_type
            attribute = formula.lhs.attribute
            if atom_type is not None:
                distinct = self.distinct_values.get(
                    (atom_type.split("@", 1)[0], attribute)
                ) or self.distinct_values.get((atom_type, attribute))
                if distinct:
                    if formula.op in ("=", "=="):
                        return 1.0 / distinct
                    if formula.op in ("!=", "<>"):
                        return 1.0 - 1.0 / distinct
                    return 1.0 / 3.0  # range predicates
        return DEFAULT_SELECTIVITY


@dataclass
class CostModel:
    """Cost estimation for molecule-query plans based on :class:`DatabaseStatistics`."""

    statistics: DatabaseStatistics

    def derivation_cost(self, description: MoleculeTypeDescription, root_count: float) -> float:
        """Expected atoms touched to derive *root_count* molecules of *description*."""
        expected_per_type: Dict[str, float] = {description.root: 1.0}
        total_per_molecule = 1.0
        for type_name in description.traversal_order():
            parent_expected = expected_per_type.get(type_name, 0.0)
            if parent_expected == 0.0:
                continue
            for directed in description.children_of(type_name):
                fanout = self.statistics.average_fanout(directed.link_type_name, directed.source)
                expected = parent_expected * fanout
                expected_per_type[directed.target] = expected_per_type.get(directed.target, 0.0) + expected
                total_per_molecule += expected
        return root_count * total_per_molecule

    def estimate(self, plan: PlanNode) -> float:
        """Estimate the total cost (atoms touched + predicate evaluations) of *plan*."""
        cost, _cardinality = self._estimate(plan)
        return cost

    def _estimate(self, plan: PlanNode) -> Tuple[float, float]:
        if isinstance(plan, DefinePlan):
            root_bare = plan.description.root.split("@", 1)[0]
            root_count = float(
                self.statistics.atom_counts.get(root_bare)
                or self.statistics.atom_counts.get(plan.description.root, 0)
            )
            filter_cost = 0.0
            if plan.root_filter is not None:
                filter_cost = root_count  # one predicate evaluation per root atom
                root_count *= self.statistics.selectivity(plan.root_filter)
            return filter_cost + self.derivation_cost(plan.description, root_count), root_count
        if isinstance(plan, RestrictPlan):
            child_cost, child_cardinality = self._estimate(plan.child)
            # One molecule-level evaluation per child molecule, plus the
            # propagation of the qualifying molecules.
            selectivity = self.statistics.selectivity(plan.formula)
            out_cardinality = child_cardinality * selectivity
            description = _description_of(plan.child)
            propagation = self.derivation_cost(description, out_cardinality)
            return child_cost + child_cardinality + propagation, out_cardinality
        if isinstance(plan, ProjectPlan):
            child_cost, child_cardinality = self._estimate(plan.child)
            description = _description_of(plan.child)
            kept = len(plan.atom_type_names) / max(1, len(description.atom_type_names))
            return child_cost + child_cardinality * kept, child_cardinality
        if isinstance(plan, (RecursivePlan, IntervalScanPlan)):
            return self._estimate_recursive(plan)
        if isinstance(plan, AggregatePlan):
            child_cost, child_cardinality = self._estimate(plan.child)
            groups = self._group_cardinality(plan.group_by, child_cardinality)
            # One fold per input molecule, plus the grouping structure: hash
            # probes are linear, sorted grouping pays the comparison sort.
            if plan.strategy == "sort":
                grouping = child_cardinality * max(1.0, math.log2(child_cardinality + 1.0))
            else:
                grouping = child_cardinality
            return child_cost + child_cardinality + grouping, groups
        if isinstance(plan, ColumnarAggregatePlan):
            bare = plan.atom_type_name.split("@", 1)[0]
            atoms = float(
                self.statistics.atom_counts.get(bare)
                or self.statistics.atom_counts.get(plan.atom_type_name, 0)
            )
            cardinality = atoms
            if plan.root_filter is not None:
                cardinality *= self.statistics.selectivity(plan.root_filter)
            groups = self._group_cardinality(plan.group_by, cardinality)
            return atoms * COLUMNAR_TOUCH_COST + groups, groups
        if isinstance(plan, SetOpPlan):
            left_cost, left_cardinality = self._estimate(plan.left)
            right_cost, right_cardinality = self._estimate(plan.right)
            # Value-key hashing: one pass over each operand stream.
            cost = left_cost + right_cost + left_cardinality + right_cardinality
            if plan.operator == "UNION":
                return cost, left_cardinality + right_cardinality
            if plan.operator == "DIFFERENCE":
                return cost, left_cardinality
            return cost, min(left_cardinality, right_cardinality)
        raise TypeError(f"unknown plan node: {plan!r}")

    def _group_cardinality(self, group_by, cardinality: float) -> float:
        """Expected number of groups a Γ over *cardinality* inputs produces."""
        if not group_by:
            return 1.0
        groups = 1.0
        for reference in group_by:
            bare = (reference.atom_type or "").split("@", 1)[0]
            distinct = self.statistics.distinct_values.get(
                (bare, reference.attribute)
            ) or self.statistics.distinct_values.get(
                (reference.atom_type, reference.attribute)
            )
            groups *= float(distinct) if distinct else max(1.0, cardinality**0.5)
        return min(groups, max(1.0, cardinality))

    def root_access_choice(
        self, root_type: str, attributes: Sequence[str]
    ) -> "Tuple[Tuple[str, ...], float, float] | None":
        """Cost a composite grid probe against the best single hash bucket.

        For *attributes* (two or more equality-constrained root attributes)
        returns ``(access, chosen_cost, alternative_cost)`` where *access* is
        ``("grid", attrs...)`` or ``("hash", best_attribute)``.  The grid
        probe pays a fixed region-intersection overhead per dimension but
        reads only the conjunctive cell; the hash probe is nearly free but
        must post-filter its whole bucket through the residual predicates.
        A near-unique attribute therefore makes the hash index win; pairs of
        low-cardinality attributes keep the grid.  Returns ``None`` when the
        occurrence is empty (nothing to rank).
        """
        bare = root_type.split("@", 1)[0]
        atoms = float(
            self.statistics.atom_counts.get(bare)
            or self.statistics.atom_counts.get(root_type, 0)
        )
        if atoms <= 0 or len(attributes) < 2:
            return None

        def distinct(attribute: str) -> float:
            return float(
                self.statistics.distinct_values.get((bare, attribute))
                or self.statistics.distinct_values.get((root_type, attribute))
                or 1.0
            )

        best = max(attributes, key=distinct)
        bucket = atoms / distinct(best)
        residual = len(attributes) - 1
        hash_cost = HASH_PROBE_COST + bucket * (1.0 + residual)
        cell = atoms
        for attribute in attributes:
            cell /= distinct(attribute)
        grid_cost = GRID_PROBE_COST * len(attributes) + cell
        if hash_cost < grid_cost:
            return ("hash", best), hash_cost, grid_cost
        return ("grid",) + tuple(sorted(attributes)), grid_cost, hash_cost

    def _estimate_recursive(self, plan) -> Tuple[float, float]:
        """Cost a recursive node — fixpoint or interval-accelerated.

        With an observed profile the true work is estimated directly: the
        fixpoint loop pays :data:`FIXPOINT_HOP_COST` per closure member plus
        one frontier pass per iteration, the interval scan
        :data:`INTERVAL_TOUCH_COST` per member.  Without observations the
        old occurrence-pass proxy remains (scaled down for the interval
        variant, which touches each closure member once instead of scanning
        every incident link).
        """
        atoms = float(self.statistics.atom_counts.get(plan.description.atom_type_name, 0))
        links = float(self.statistics.link_counts.get(plan.description.link_type_name, 0))
        accelerated = isinstance(plan, IntervalScanPlan)
        cardinality = atoms
        if plan.formula is not None:
            cardinality *= self.statistics.selectivity(plan.formula)
        profile = self.statistics.recursion_profile(recursion_profile_key(plan.description))
        if profile is not None:
            roots = atoms if atoms > 0 else profile["roots"]
            closure = profile["avg_closure"]
            depth = profile["avg_depth"]
            if accelerated:
                cost = roots * closure * INTERVAL_TOUCH_COST
            else:
                cost = roots * (closure * FIXPOINT_HOP_COST + depth)
            return cost, cardinality
        if accelerated:
            return (atoms + links) * (INTERVAL_TOUCH_COST / FIXPOINT_HOP_COST), cardinality
        return atoms + links, cardinality


def _description_of(plan: PlanNode) -> MoleculeTypeDescription:
    return plan_description(plan)
