"""Algebraic query optimization over molecule-algebra plans (§5 outlook).

"We are confident that we can conveniently exploit the algebra to considerably
simplify and enhance query transformation and query optimization."  This
package provides that exploitation for the operations the paper defines:

* :mod:`repro.optimizer.plans` — the explicit plan representation (the shared
  logical IR of :mod:`repro.engine.logical`) plus :func:`execute_plan`, which
  runs a plan on the streaming executor,
* :mod:`repro.optimizer.rules` — rewrite rules: restriction push-down into the
  molecule-type definition (filter root atoms before derivation), structure
  pruning (drop atom types that neither the projection nor the restriction
  needs), and restriction merging,
* :mod:`repro.optimizer.statistics` / :mod:`repro.optimizer.planner` — a
  simple cost model over occurrence sizes and link degrees, and a planner that
  applies the rules and picks the cheaper plan.
"""

from repro.optimizer.planner import Planner, PlanChoice
from repro.optimizer.plans import (
    DefinePlan,
    ExecutionCounters,
    PlanExecution,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
    execute_plan,
)
from repro.optimizer.rules import (
    RewriteResult,
    merge_restrictions,
    prune_structure,
    push_down_restriction,
    rewrite,
)
from repro.optimizer.statistics import CostModel, DatabaseStatistics

__all__ = [
    "CostModel",
    "DatabaseStatistics",
    "DefinePlan",
    "ExecutionCounters",
    "PlanChoice",
    "PlanExecution",
    "PlanNode",
    "Planner",
    "ProjectPlan",
    "RecursivePlan",
    "RestrictPlan",
    "RewriteResult",
    "SetOpPlan",
    "execute_plan",
    "merge_restrictions",
    "prune_structure",
    "push_down_restriction",
    "rewrite",
]
