"""Plan representation for molecule-algebra queries.

A plan is a small tree of operations, mirroring the algebra expressions that
MQL translates into:

* :class:`DefinePlan` — the molecule-type definition α, optionally with a
  *root filter*: a qualification evaluated on root atoms **before** molecule
  derivation (the result of restriction push-down);
* :class:`RestrictPlan` — the molecule-type restriction Σ;
* :class:`ProjectPlan` — the molecule-type projection Π.

:func:`execute_plan` evaluates a plan over a database and returns the result
molecule type together with execution counters (molecules derived, atoms
touched), which the E-PERF3 benchmark compares across plan variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.database import Database
from repro.core.derivation import derive_molecule, resolve_description
from repro.core.molecule import MoleculeType, MoleculeTypeDescription
from repro.core.molecule_algebra import (
    molecule_projection,
    molecule_restriction,
    molecule_type_definition,
)
from repro.core.predicates import Formula


@dataclass(frozen=True)
class DefinePlan:
    """α — molecule-type definition, optionally pre-filtering the root atoms."""

    name: str
    description: MoleculeTypeDescription
    root_filter: Optional[Formula] = None


@dataclass(frozen=True)
class RestrictPlan:
    """Σ — molecule-type restriction applied to a child plan's result."""

    child: "PlanNode"
    formula: Formula


@dataclass(frozen=True)
class ProjectPlan:
    """Π — molecule-type projection applied to a child plan's result."""

    child: "PlanNode"
    atom_type_names: Tuple[str, ...]


PlanNode = Union[DefinePlan, RestrictPlan, ProjectPlan]


@dataclass
class ExecutionCounters:
    """Work counters collected while executing a plan."""

    molecules_derived: int = 0
    atoms_touched: int = 0
    restrictions_evaluated: int = 0


@dataclass
class PlanExecution:
    """The outcome of :func:`execute_plan`."""

    molecule_type: MoleculeType
    database: Database
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)


def describe_plan(plan: PlanNode, indent: str = "") -> str:
    """Render a plan as an indented, human-readable algebra expression."""
    if isinstance(plan, DefinePlan):
        suffix = f" [root filter: {plan.root_filter!r}]" if plan.root_filter is not None else ""
        return f"{indent}α {plan.name}({', '.join(plan.description.atom_type_names)}){suffix}"
    if isinstance(plan, RestrictPlan):
        return (
            f"{indent}Σ [{plan.formula!r}]\n" + describe_plan(plan.child, indent + "  ")
        )
    if isinstance(plan, ProjectPlan):
        return (
            f"{indent}Π [{', '.join(plan.atom_type_names)}]\n"
            + describe_plan(plan.child, indent + "  ")
        )
    raise TypeError(f"unknown plan node: {plan!r}")


def plan_description(plan: PlanNode) -> MoleculeTypeDescription:
    """Return the molecule-type description a plan ultimately derives from."""
    if isinstance(plan, DefinePlan):
        return plan.description
    return plan_description(plan.child)


def execute_plan(database: Database, plan: PlanNode) -> PlanExecution:
    """Evaluate *plan* over *database*."""
    counters = ExecutionCounters()
    molecule_type, database = _execute(database, plan, counters)
    return PlanExecution(molecule_type, database, counters)


def _execute(database: Database, plan: PlanNode, counters: ExecutionCounters):
    if isinstance(plan, DefinePlan):
        description = resolve_description(database, plan.description)
        root_type = database.atyp(description.root)
        molecules = []
        for root_atom in root_type:
            if plan.root_filter is not None:
                counters.restrictions_evaluated += 1
                if not plan.root_filter.evaluate_atom(root_atom):
                    continue
            molecule = derive_molecule(database, description, root_atom)
            counters.molecules_derived += 1
            counters.atoms_touched += len(molecule)
            molecules.append(molecule)
        return MoleculeType(plan.name, description, molecules), database
    if isinstance(plan, RestrictPlan):
        child_type, database = _execute(database, plan.child, counters)
        counters.restrictions_evaluated += len(child_type)
        result = molecule_restriction(database, child_type, plan.formula)
        return result.molecule_type, result.database
    if isinstance(plan, ProjectPlan):
        child_type, database = _execute(database, plan.child, counters)
        result = molecule_projection(database, child_type, list(plan.atom_type_names))
        return result.molecule_type, result.database
    raise TypeError(f"unknown plan node: {plan!r}")
