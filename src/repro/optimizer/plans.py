"""Plan representation for molecule-algebra queries.

The plan node types live in :mod:`repro.engine.logical` — the optimizer
rewrites and costs the **same** IR that the MQL translator produces and the
streaming executor runs; this module re-exports them for the optimizer's
public API and keeps the :func:`execute_plan` entry point used by the
E-PERF3 benchmark:

* :class:`DefinePlan` — the molecule-type definition α, optionally with a
  *root filter* (the result of restriction push-down);
* :class:`RestrictPlan` — the molecule-type restriction Σ;
* :class:`ProjectPlan` — the molecule-type projection Π;
* :class:`RecursivePlan` / :class:`SetOpPlan` — recursive definitions and the
  set operations between query blocks.

:func:`execute_plan` compiles a plan onto the pull-based operators of
:mod:`repro.engine.physical` and runs it, returning the result molecule type
together with the execution counters (molecules derived, atoms touched) that
the benchmarks compare across plan variants.
"""

from __future__ import annotations

from repro.core.database import Database
from repro.engine.executor import ExecutionResult, run_plan
from repro.engine.logical import (
    AggregatePlan,
    AggregateSpec,
    ColumnarAggregatePlan,
    DefinePlan,
    IntervalScanPlan,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
    describe_plan,
    plan_description,
)
from repro.engine.physical import ExecutionCounters

__all__ = [
    "AggregatePlan",
    "AggregateSpec",
    "ColumnarAggregatePlan",
    "DefinePlan",
    "ExecutionCounters",
    "IntervalScanPlan",
    "PlanExecution",
    "PlanNode",
    "ProjectPlan",
    "RecursivePlan",
    "RestrictPlan",
    "SetOpPlan",
    "describe_plan",
    "execute_plan",
    "plan_description",
]


#: The outcome of :func:`execute_plan` — the executor's result, unrepackaged.
PlanExecution = ExecutionResult


def execute_plan(database: Database, plan: PlanNode) -> PlanExecution:
    """Evaluate *plan* over *database* through the streaming executor."""
    return run_plan(database, plan)
