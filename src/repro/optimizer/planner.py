"""The rule-driven planner: rewrite, cost, choose.

:class:`Planner` takes an initial plan (typically the literal translation of
an MQL statement: α → Σ → Π), applies the rewrite rules, estimates the cost of
both variants, and returns a :class:`PlanChoice`.  The chosen variant runs on
the streaming executor (:mod:`repro.engine.executor`) — this is the pipeline
behind ``MQLInterpreter`` and ``PrimaEngine.query``.  The E-PERF3 benchmark
executes both variants and compares the estimated ranking against the measured
work counters.

Recursive plans get extra treatment: the planner consults the executor's
structure-index store (when one is attached) for the ``accelerate_recursion``
rewrite, costs the fixpoint-vs-interval choice from the observed recursion
profiles in :class:`~repro.optimizer.statistics.DatabaseStatistics`, and
annotates the :class:`PlanChoice` with per-recursion notes — traversal depth,
estimated closure size, and the interval index state — surfaced by
``EXPLAIN``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.database import Database
from repro.engine.executor import Executor
from repro.engine.logical import (
    ColumnarAggregatePlan,
    IntervalScanPlan,
    recursive_nodes,
)
from repro.optimizer.plans import PlanExecution, PlanNode, describe_plan
from repro.optimizer.rules import RewriteResult, rewrite
from repro.optimizer.statistics import (
    CATCHUP_RECORD_COST,
    CostModel,
    DatabaseStatistics,
    PLAN_SHIP_COST,
    REPLICA_ROUTE_COST,
    recursion_profile_key,
)


@dataclass
class PlanChoice:
    """The planner's decision: both plan variants with their estimated costs."""

    original: PlanNode
    optimized: PlanNode
    original_cost: float
    optimized_cost: float
    applied_rules: Tuple[str, ...]
    #: Human-readable planner annotations (recursion depth/closure estimates,
    #: interval index state) rendered by :meth:`explain`.
    notes: Tuple[str, ...] = ()
    #: Where the planner would run this plan: ``"process"`` when shipping it
    #: to the worker-process pool is costed cheaper than serial execution,
    #: ``"serial"`` when it is not, ``None`` when no pool telemetry was
    #: available (no pool, or the plan short-circuited costing).
    dispatch: Optional[str] = None

    @property
    def best(self) -> PlanNode:
        """The cheaper plan according to the cost model."""
        return self.optimized if self.optimized_cost <= self.original_cost else self.original

    @property
    def improvement(self) -> float:
        """Estimated cost ratio original/optimized (>= 1.0 means the rewrite helps)."""
        if self.optimized_cost == 0:
            return float("inf") if self.original_cost > 0 else 1.0
        return self.original_cost / self.optimized_cost

    def explain(self) -> str:
        """Render both plans, the cost estimates, and any planner notes."""
        text = (
            "original plan (estimated cost {:.1f}):\n{}\n"
            "optimized plan (estimated cost {:.1f}, rules: {}):\n{}".format(
                self.original_cost,
                describe_plan(self.original, "  "),
                self.optimized_cost,
                ", ".join(self.applied_rules) or "none",
                describe_plan(self.optimized, "  "),
            )
        )
        if self.notes:
            text += "\n" + "\n".join(self.notes)
        return text


class Planner:
    """Applies the rewrite rules and picks the cheaper plan.

    When an :class:`~repro.engine.executor.Executor` is supplied its access
    structures (index pool, atom network, structure-index store) are reused
    for execution and for the ``accelerate_recursion`` rewrite; otherwise a
    transient executor over *database* is created on demand.

    Statistics are collected lazily, on the first optimization where a
    rewrite rule actually fired or a recursive node needs costing (costing
    identical non-recursive plans decides nothing).  Afterwards they can be
    maintained incrementally through :meth:`apply_event` — the storage engine
    subscribes its planner to the snapshot's change events, so occurrence
    counts stay exact across writes (per-attribute distinct-value counts keep
    their collected values, an approximation that only shapes selectivity
    guesses).  Results stay correct either way: ranking drift can never
    change what a plan returns.
    """

    def __init__(
        self,
        database: Database,
        statistics: Optional[DatabaseStatistics] = None,
        executor: Optional[Executor] = None,
        accelerators=None,
    ) -> None:
        self.database = database
        self._statistics = statistics
        self._cost_model: Optional[CostModel] = None
        self.executor = executor
        self._accelerators = accelerators
        #: Callable returning live process-pool telemetry
        #: (``{"workers": n, "backlog": records}``) or ``None``; the storage
        #: engine wires this so costed plans carry a dispatch recommendation.
        self.dispatch_advisor = None

    @property
    def statistics(self) -> DatabaseStatistics:
        """Occurrence statistics, collected from the database on first use."""
        if self._statistics is None:
            self._statistics = DatabaseStatistics.collect(self.database)
        return self._statistics

    @property
    def cost_model(self) -> CostModel:
        """The cost model over :attr:`statistics` (also lazily created)."""
        if self._cost_model is None:
            self._cost_model = CostModel(self.statistics)
        return self._cost_model

    @property
    def accelerators(self):
        """The structure-index store consulted by ``accelerate_recursion``."""
        if self._accelerators is not None:
            return self._accelerators
        return getattr(self.executor, "structure", None)

    @property
    def columnar(self):
        """The columnar projection store consulted by ``columnarize_aggregate``."""
        return getattr(self.executor, "columnar", None)

    def apply_event(self, event) -> None:
        """Fold one change event into the collected statistics.

        A no-op before the first collection (there is nothing to maintain
        yet).  The storage engine feeds every write through here, so a
        planner held across mutations keeps ranking on exact occurrence
        counts instead of drifting — without ever re-scanning the database.
        """
        if self._statistics is not None:
            self._statistics.apply_event(event)

    def optimize(self, plan: PlanNode) -> PlanChoice:
        """Rewrite *plan* and return the costed :class:`PlanChoice`."""
        rewritten: RewriteResult = rewrite(
            plan,
            self.accelerators,
            columnar=self.columnar,
            statistics=lambda: self.statistics,
        )
        recursive = recursive_nodes(rewritten.plan)
        if not rewritten.applied_rules and not recursive:
            # No rule fired on a non-recursive plan: both variants are the
            # same plan, so collecting statistics and estimating costs would
            # decide nothing.
            return PlanChoice(
                original=plan,
                optimized=rewritten.plan,
                original_cost=0.0,
                optimized_cost=0.0,
                applied_rules=(),
            )
        choice = PlanChoice(
            original=plan,
            optimized=rewritten.plan,
            original_cost=self.cost_model.estimate(plan),
            optimized_cost=self.cost_model.estimate(rewritten.plan),
            applied_rules=rewritten.applied_rules,
            notes=self._recursion_notes(recursive) + self._columnar_notes(rewritten.plan),
        )
        self._advise_dispatch(choice)
        return choice

    def _advise_dispatch(self, choice: PlanChoice) -> None:
        """Cost dispatch targets against serial execution of *choice*.

        Process shipping wins when the per-worker share of the plan's cost
        beats the fixed serialization overhead plus catching the workers up
        on the WAL records they have not yet applied; replica routing wins
        when the per-follower share beats the (much smaller) routing
        overhead plus the followers' replication lag.  Ties break toward
        serial, then process — the declaration order below.  The telemetry
        comes from :attr:`dispatch_advisor`; without it (no pool, no hub)
        dispatch stays ``None`` and EXPLAIN says nothing.
        """
        advisor = self.dispatch_advisor
        if advisor is None:
            return
        state = advisor()
        if not state:
            return
        workers = state.get("workers", 0)
        replicas = state.get("replicas", 0)
        backlog = state.get("backlog", 0)
        serial_cost = min(choice.original_cost, choice.optimized_cost)
        process_cost = (
            serial_cost / workers + PLAN_SHIP_COST + backlog * CATCHUP_RECORD_COST
            if workers >= 2
            else None
        )
        if replicas < 1:
            if process_cost is None:
                return
            choice.dispatch = "process" if process_cost < serial_cost else "serial"
            choice.notes += (
                "dispatch: {choice} (serial {serial:.1f} vs process {process:.1f} "
                "= {serial:.1f}/{workers} workers + {ship:.0f} ship + "
                "{backlog} backlog records × {record:.1f})".format(
                    choice=choice.dispatch,
                    serial=serial_cost,
                    process=process_cost,
                    workers=workers,
                    ship=PLAN_SHIP_COST,
                    backlog=backlog,
                    record=CATCHUP_RECORD_COST,
                ),
            )
            return
        replica_lag = state.get("replica_lag", 0)
        replica_cost = (
            serial_cost / replicas
            + REPLICA_ROUTE_COST
            + replica_lag * CATCHUP_RECORD_COST
        )
        candidates = [("serial", serial_cost)]
        if process_cost is not None:
            candidates.append(("process", process_cost))
        candidates.append(("replica", replica_cost))
        # min() is stable: on a tie the earlier candidate wins.
        choice.dispatch = min(candidates, key=lambda entry: entry[1])[0]
        versus = " vs ".join(
            "{name} {cost:.1f}".format(name=name, cost=cost)
            for name, cost in candidates
        )
        choice.notes += (
            "dispatch: {choice} ({versus}; replica = {serial:.1f}/{replicas} "
            "replicas + {route:.0f} route + {lag} lag generations × "
            "{record:.1f})".format(
                choice=choice.dispatch,
                versus=versus,
                serial=serial_cost,
                replicas=replicas,
                route=REPLICA_ROUTE_COST,
                lag=replica_lag,
                record=CATCHUP_RECORD_COST,
            ),
        )

    def _columnar_notes(self, plan: PlanNode) -> Tuple[str, ...]:
        """EXPLAIN annotations for a columnarized Γ: projection state and size."""
        if not isinstance(plan, ColumnarAggregatePlan):
            return ()
        columnar = self.columnar
        if columnar is None:
            return ()
        return tuple(columnar.describe(plan.atom_type_name))

    def _recursion_notes(self, nodes) -> Tuple[str, ...]:
        """EXPLAIN annotations for every recursive node of the chosen plan:
        observed (or bounded) traversal depth and closure size, plus the
        interval index state when the node was accelerated."""
        notes: List[str] = []
        statistics = self.statistics
        for node in nodes:
            description = node.description
            key = recursion_profile_key(description)
            atoms = statistics.atom_counts.get(description.atom_type_name, 0)
            profile = statistics.recursion_profile(key)
            if profile is not None:
                notes.append(
                    "recursion {name}[{atom} via {link} {direction}]: observed depth "
                    "{depth:.1f}, closure ≈ {closure:.1f} atoms/root over "
                    "{roots:.0f} roots ({runs:.0f} runs)".format(
                        name=node.name,
                        atom=description.atom_type_name,
                        link=description.link_type_name,
                        direction=description.direction,
                        depth=profile["avg_depth"],
                        closure=profile["avg_closure"],
                        roots=profile["roots"],
                        runs=profile["runs"],
                    )
                )
            else:
                bound = (
                    description.max_depth
                    if description.max_depth is not None
                    else max(0, atoms)
                )
                notes.append(
                    "recursion {name}[{atom} via {link} {direction}]: no observed "
                    "runs yet — estimated depth ≤ {bound}, closure ≤ {atoms} "
                    "atoms/root".format(
                        name=node.name,
                        atom=description.atom_type_name,
                        link=description.link_type_name,
                        direction=description.direction,
                        bound=bound,
                        atoms=atoms,
                    )
                )
            if isinstance(node, IntervalScanPlan):
                accelerators = self.accelerators
                if accelerators is not None:
                    notes.extend(accelerators.describe(description))
        return tuple(notes)

    def execute_best(self, plan: PlanNode) -> PlanExecution:
        """Optimize *plan* and execute the chosen variant on the executor."""
        choice = self.optimize(plan)
        executor = self.executor or Executor(self.database)
        return executor.run(choice.best)
