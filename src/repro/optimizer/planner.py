"""The rule-driven planner: rewrite, cost, choose.

:class:`Planner` takes an initial plan (typically the literal translation of
an MQL statement: α → Σ → Π), applies the rewrite rules, estimates the cost of
both variants, and returns a :class:`PlanChoice`.  The chosen variant runs on
the streaming executor (:mod:`repro.engine.executor`) — this is the pipeline
behind ``MQLInterpreter`` and ``PrimaEngine.query``.  The E-PERF3 benchmark
executes both variants and compares the estimated ranking against the measured
work counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.database import Database
from repro.engine.executor import Executor
from repro.optimizer.plans import PlanExecution, PlanNode, describe_plan
from repro.optimizer.rules import RewriteResult, rewrite
from repro.optimizer.statistics import CostModel, DatabaseStatistics


@dataclass
class PlanChoice:
    """The planner's decision: both plan variants with their estimated costs."""

    original: PlanNode
    optimized: PlanNode
    original_cost: float
    optimized_cost: float
    applied_rules: Tuple[str, ...]

    @property
    def best(self) -> PlanNode:
        """The cheaper plan according to the cost model."""
        return self.optimized if self.optimized_cost <= self.original_cost else self.original

    @property
    def improvement(self) -> float:
        """Estimated cost ratio original/optimized (>= 1.0 means the rewrite helps)."""
        if self.optimized_cost == 0:
            return float("inf") if self.original_cost > 0 else 1.0
        return self.original_cost / self.optimized_cost

    def explain(self) -> str:
        """Render both plans and the cost estimates."""
        return (
            "original plan (estimated cost {:.1f}):\n{}\n"
            "optimized plan (estimated cost {:.1f}, rules: {}):\n{}".format(
                self.original_cost,
                describe_plan(self.original, "  "),
                self.optimized_cost,
                ", ".join(self.applied_rules) or "none",
                describe_plan(self.optimized, "  "),
            )
        )


class Planner:
    """Applies the rewrite rules and picks the cheaper plan.

    When an :class:`~repro.engine.executor.Executor` is supplied its access
    structures (index pool, atom network) are reused for execution; otherwise
    a transient executor over *database* is created on demand.

    Statistics are collected lazily, on the first optimization where a
    rewrite rule actually fired (costing identical plans decides nothing).
    Afterwards they can be maintained incrementally through
    :meth:`apply_event` — the storage engine subscribes its planner to the
    snapshot's change events, so occurrence counts stay exact across writes
    (per-attribute distinct-value counts keep their collected values, an
    approximation that only shapes selectivity guesses).  Results stay
    correct either way: ranking drift can never change what a plan returns.
    """

    def __init__(
        self,
        database: Database,
        statistics: Optional[DatabaseStatistics] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.database = database
        self._statistics = statistics
        self._cost_model: Optional[CostModel] = None
        self.executor = executor

    @property
    def statistics(self) -> DatabaseStatistics:
        """Occurrence statistics, collected from the database on first use."""
        if self._statistics is None:
            self._statistics = DatabaseStatistics.collect(self.database)
        return self._statistics

    @property
    def cost_model(self) -> CostModel:
        """The cost model over :attr:`statistics` (also lazily created)."""
        if self._cost_model is None:
            self._cost_model = CostModel(self.statistics)
        return self._cost_model

    def apply_event(self, event) -> None:
        """Fold one change event into the collected statistics.

        A no-op before the first collection (there is nothing to maintain
        yet).  The storage engine feeds every write through here, so a
        planner held across mutations keeps ranking on exact occurrence
        counts instead of drifting — without ever re-scanning the database.
        """
        if self._statistics is not None:
            self._statistics.apply_event(event)

    def optimize(self, plan: PlanNode) -> PlanChoice:
        """Rewrite *plan* and return the costed :class:`PlanChoice`."""
        rewritten: RewriteResult = rewrite(plan)
        if not rewritten.applied_rules:
            # No rule fired: both variants are the same plan, so collecting
            # statistics and estimating costs would decide nothing.
            return PlanChoice(
                original=plan,
                optimized=rewritten.plan,
                original_cost=0.0,
                optimized_cost=0.0,
                applied_rules=(),
            )
        return PlanChoice(
            original=plan,
            optimized=rewritten.plan,
            original_cost=self.cost_model.estimate(plan),
            optimized_cost=self.cost_model.estimate(rewritten.plan),
            applied_rules=rewritten.applied_rules,
        )

    def execute_best(self, plan: PlanNode) -> PlanExecution:
        """Optimize *plan* and execute the chosen variant on the executor."""
        choice = self.optimize(plan)
        executor = self.executor or Executor(self.database)
        return executor.run(choice.best)
