"""The rule-driven planner: rewrite, cost, choose.

:class:`Planner` takes an initial plan (typically the literal translation of
an MQL statement: α → Σ → Π), applies the rewrite rules, estimates the cost of
both variants, and returns a :class:`PlanChoice`.  The E-PERF3 benchmark
executes both variants and compares the estimated ranking against the measured
work counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.database import Database
from repro.optimizer.plans import PlanExecution, PlanNode, describe_plan, execute_plan
from repro.optimizer.rules import RewriteResult, rewrite
from repro.optimizer.statistics import CostModel, DatabaseStatistics


@dataclass
class PlanChoice:
    """The planner's decision: both plan variants with their estimated costs."""

    original: PlanNode
    optimized: PlanNode
    original_cost: float
    optimized_cost: float
    applied_rules: Tuple[str, ...]

    @property
    def best(self) -> PlanNode:
        """The cheaper plan according to the cost model."""
        return self.optimized if self.optimized_cost <= self.original_cost else self.original

    @property
    def improvement(self) -> float:
        """Estimated cost ratio original/optimized (>= 1.0 means the rewrite helps)."""
        if self.optimized_cost == 0:
            return float("inf") if self.original_cost > 0 else 1.0
        return self.original_cost / self.optimized_cost

    def explain(self) -> str:
        """Render both plans and the cost estimates."""
        return (
            "original plan (estimated cost {:.1f}):\n{}\n"
            "optimized plan (estimated cost {:.1f}, rules: {}):\n{}".format(
                self.original_cost,
                describe_plan(self.original, "  "),
                self.optimized_cost,
                ", ".join(self.applied_rules) or "none",
                describe_plan(self.optimized, "  "),
            )
        )


class Planner:
    """Applies the rewrite rules and picks the cheaper plan."""

    def __init__(self, database: Database, statistics: Optional[DatabaseStatistics] = None) -> None:
        self.database = database
        self.statistics = statistics or DatabaseStatistics.collect(database)
        self.cost_model = CostModel(self.statistics)

    def optimize(self, plan: PlanNode) -> PlanChoice:
        """Rewrite *plan* and return the costed :class:`PlanChoice`."""
        rewritten: RewriteResult = rewrite(plan)
        return PlanChoice(
            original=plan,
            optimized=rewritten.plan,
            original_cost=self.cost_model.estimate(plan),
            optimized_cost=self.cost_model.estimate(rewritten.plan),
            applied_rules=rewritten.applied_rules,
        )

    def execute_best(self, plan: PlanNode) -> PlanExecution:
        """Optimize *plan* and execute the chosen variant."""
        choice = self.optimize(plan)
        return execute_plan(self.database, choice.best)
