"""Join-based assembly of complex objects over the relational mapping.

To answer a molecule query on the relational side, the application (or the
query processor) must join the root entity relation through the chain of
auxiliary relations down to the leaves and then re-group the flat join result
into one complex object per root tuple.  :func:`assemble_complex_objects`
performs exactly that plan and reports how many intermediate tuples were
materialized — the quantity the E-PERF1 benchmark compares against molecule
derivation's touched-atom counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.molecule import MoleculeTypeDescription
from repro.relational.algebra import WorkCounter, equijoin, project, rename, select
from repro.relational.mapping import RelationalMapping, _endpoint_columns
from repro.relational.relation import Relation


@dataclass
class JoinPlan:
    """The join plan derived from a molecule-type description.

    One step per directed link use: join the parent entity relation through
    the link's auxiliary relation to the child entity relation.
    """

    root: str
    steps: Tuple[Tuple[str, str, str], ...]  # (link type, parent, child)

    @classmethod
    def from_description(cls, description: MoleculeTypeDescription) -> "JoinPlan":
        """Build the plan by walking the description in topological order."""
        steps: List[Tuple[str, str, str]] = []
        for source in description.traversal_order():
            for directed in description.children_of(source):
                steps.append((directed.link_type_name, directed.source, directed.target))
        return cls(description.root, tuple(steps))

    def join_count(self) -> int:
        """Number of binary joins required (two per step: via the auxiliary relation)."""
        return 2 * len(self.steps)


@dataclass
class JoinQueryResult:
    """Result of the relational assembly of complex objects."""

    objects: Tuple[Dict[str, object], ...]
    counter: WorkCounter
    plan: JoinPlan

    def intermediate_tuples(self) -> int:
        """Total tuples materialized by all joins (the paper's implicit cost claim)."""
        return self.counter.tuples_produced


def assemble_complex_objects(
    mapping: RelationalMapping,
    description: MoleculeTypeDescription,
    root_predicate: Optional[Callable[[Mapping[str, object]], bool]] = None,
    counter: Optional[WorkCounter] = None,
) -> JoinQueryResult:
    """Assemble one nested object per qualifying root tuple via joins.

    The algorithm is the textbook one: for every directed link use, equi-join
    parent ids with the auxiliary relation and then with the child relation,
    keeping, per parent id, the set of child ids; finally nest the collected
    children under their roots following the description's structure.  All
    intermediate join results are counted in *counter*.
    """
    counter = counter or WorkCounter()
    plan = JoinPlan.from_description(description)
    root_relation = mapping.entity_relations[description.root]
    if root_predicate is not None:
        root_relation = select(root_relation, root_predicate, counter=counter)

    # child ids per (edge, parent id)
    children_of: Dict[Tuple[Tuple[str, str, str], str], Set[str]] = {}
    # all reachable ids per atom type, starting from the roots
    reachable: Dict[str, Set[str]] = {description.root: {row["_id"] for row in root_relation}}

    for step in plan.steps:
        link_name, parent, child = step
        auxiliary = mapping.auxiliary_relations[link_name]
        parent_entities = mapping.entity_relations[parent]
        child_entities = mapping.entity_relations[child]
        parent_col, child_col = _endpoint_columns(
            link_name, *_original_endpoints(auxiliary)
        )
        # The auxiliary relation's columns are named after the link type's
        # declared endpoint types; when the molecule traverses the link in the
        # opposite direction the roles swap.
        if not parent_col.startswith(parent) and child_col.startswith(parent):
            parent_col, child_col = child_col, parent_col

        parent_ids = reachable.get(parent, set())
        parent_id_relation = Relation(f"ids({parent})", ("_id",), [{"_id": pid} for pid in parent_ids])
        counter.record("materialize_ids", len(parent_id_relation))

        joined_aux = equijoin(parent_id_relation, auxiliary, "_id", parent_col, counter=counter)
        joined_children = equijoin(
            joined_aux, child_entities, child_col, "_id", counter=counter
        )

        bucket_ids: Set[str] = set()
        for row in joined_children:
            parent_id = row["_id"]
            child_id = row.get(child_col)
            if child_id is None:
                child_id = row.get(f"{child_entities.name}._id")
            children_of.setdefault((step, parent_id), set()).add(child_id)
            bucket_ids.add(child_id)
        reachable.setdefault(child, set()).update(bucket_ids)

    # Nest the flat join results back into complex objects, one per root tuple.
    entity_by_id: Dict[str, Dict[str, Dict[str, object]]] = {}
    for type_name, relation in mapping.entity_relations.items():
        entity_by_id[type_name] = {row["_id"]: row for row in relation}

    def build(type_name: str, identifier: str, visited: frozenset) -> Dict[str, object]:
        node = dict(entity_by_id[type_name].get(identifier, {"_id": identifier}))
        for step in plan.steps:
            _, parent, child = step
            if parent != type_name:
                continue
            child_ids = children_of.get((step, identifier), set())
            if child_ids:
                node.setdefault(child, [])
                for child_id in sorted(child_ids, key=str):
                    if child_id in visited:
                        continue
                    node[child].append(build(child, child_id, visited | {identifier}))
        return node

    objects = tuple(
        build(description.root, row["_id"], frozenset()) for row in root_relation
    )
    return JoinQueryResult(objects, counter, plan)


def _original_endpoints(auxiliary: Relation) -> Tuple[str, str]:
    """Recover the endpoint atom-type names from a junction relation's foreign keys."""
    foreign = auxiliary.schema.foreign_keys
    if len(foreign) == 2:
        return (foreign[0][1], foreign[1][1])
    # Fall back to stripping the "_id" suffix from the column names.
    first, second = auxiliary.schema.attributes[:2]
    return (first.rsplit("_", 1)[0], second.rsplit("_", 1)[0])


def relational_transitive_closure(
    mapping: RelationalMapping,
    link_type_name: str,
    root_ids: Sequence[str],
    counter: Optional[WorkCounter] = None,
) -> Dict[str, Set[str]]:
    """Iterative (semi-naive) transitive closure over a junction relation.

    The relational counterpart of recursive molecule expansion (E-PERF2): for
    each root id, repeatedly join the frontier with the auxiliary relation
    until no new ids appear.
    """
    counter = counter or WorkCounter()
    auxiliary = mapping.auxiliary_relations[link_type_name]
    first_col, second_col = auxiliary.schema.attributes[:2]
    auxiliary.build_index(first_col)

    closures: Dict[str, Set[str]] = {}
    for root in root_ids:
        seen: Set[str] = set()
        frontier = {root}
        while frontier:
            frontier_relation = Relation("frontier", (first_col,), [{first_col: fid} for fid in frontier])
            counter.record("materialize_frontier", len(frontier_relation))
            joined = equijoin(frontier_relation, auxiliary, first_col, first_col, counter=counter)
            new_ids = {row[second_col] for row in joined} - seen - {root}
            seen |= new_ids
            frontier = new_ids
        closures[root] = seen
    return closures
