"""The relational-model baseline the paper compares against.

The MAD model is introduced as "an advancement to the relational model"; the
paper's motivation section argues that mapping the n:m relationships of the
geographic application onto the relational model "becomes quite cumbersome,
since all n:m relationship types have to be modeled by some auxiliary
relations.  With this, the queries and their processing obviously become more
complicated and perhaps less efficient."

This package makes that comparison executable:

* :mod:`repro.relational.relation` — relations, tuples, schemas,
* :mod:`repro.relational.algebra` — the classical relational algebra
  (selection, projection, cartesian product, join, union, difference, rename),
* :mod:`repro.relational.mapping` — the MAD→relational mapping that introduces
  one auxiliary (junction) relation per link type,
* :mod:`repro.relational.query` — a join-based evaluator that assembles the
  same complex objects a molecule query returns, counting the intermediate
  tuples it had to materialize (the E-PERF1 metric).
"""

from repro.relational.algebra import (
    RelationalAlgebra,
    cartesian_product,
    difference,
    equijoin,
    natural_join,
    project,
    rename,
    select,
    union,
)
from repro.relational.mapping import RelationalMapping, map_database
from repro.relational.query import JoinPlan, JoinQueryResult, assemble_complex_objects
from repro.relational.relation import Relation, RelationSchema

__all__ = [
    "JoinPlan",
    "JoinQueryResult",
    "Relation",
    "RelationSchema",
    "RelationalAlgebra",
    "RelationalMapping",
    "assemble_complex_objects",
    "cartesian_product",
    "difference",
    "equijoin",
    "map_database",
    "natural_join",
    "project",
    "rename",
    "select",
    "union",
]
