"""Mapping a MAD database onto the relational model (the paper's strawman).

"It is easy to imagine that a transformation to the relational model becomes
quite cumbersome, since all n:m relationship types have to be modeled by some
auxiliary relations."  :func:`map_database` performs exactly that
transformation:

* each atom type becomes a relation with a surrogate-key attribute ``_id``
  plus one attribute per attribute description;
* each link type becomes an **auxiliary (junction) relation** with two
  foreign-key attributes referencing the surrogate keys of the two endpoint
  relations — this is required for n:m link types and, for uniformity (and
  because the MAD link is symmetric), we map every link type this way.

The resulting :class:`RelationalMapping` is the baseline database for the
E-PERF1 benchmark and for the Fig. 3 concept-comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.database import Database
from repro.relational.relation import Relation, RelationSchema


@dataclass
class RelationalMapping:
    """The relational image of a MAD database.

    Attributes
    ----------
    entity_relations:
        One relation per atom type (keyed by atom-type name).
    auxiliary_relations:
        One junction relation per link type (keyed by link-type name).
    """

    name: str
    entity_relations: Dict[str, Relation] = field(default_factory=dict)
    auxiliary_relations: Dict[str, Relation] = field(default_factory=dict)

    def relation(self, name: str) -> Relation:
        """Return the entity or auxiliary relation called *name*."""
        if name in self.entity_relations:
            return self.entity_relations[name]
        return self.auxiliary_relations[name]

    def relations(self) -> Tuple[Relation, ...]:
        """All relations (entity relations first)."""
        return tuple(self.entity_relations.values()) + tuple(self.auxiliary_relations.values())

    def total_tuples(self) -> int:
        """Total number of stored tuples, including the auxiliary relations.

        The difference between this number and the MAD database's atom count
        is the storage overhead of representing links as data.
        """
        return sum(len(relation) for relation in self.relations())

    def statistics(self) -> Dict[str, int]:
        """Per-relation tuple counts."""
        return {relation.name: len(relation) for relation in self.relations()}


def _endpoint_columns(link_type_name: str, first: str, second: str) -> Tuple[str, str]:
    """Column names of a junction relation; disambiguate reflexive link types."""
    if first == second:
        return (f"{first}_super_id", f"{second}_sub_id")
    return (f"{first}_id", f"{second}_id")


def map_database(database: Database, name: Optional[str] = None) -> RelationalMapping:
    """Transform *database* into its relational image (entity + auxiliary relations)."""
    mapping = RelationalMapping(name or f"{database.name}_rel")

    for atom_type in database.atom_types:
        attributes = ("_id",) + tuple(atom_type.description.names)
        schema = RelationSchema(attributes, primary_key=("_id",))
        relation = Relation(atom_type.name, schema)
        for atom in atom_type:
            row = {"_id": atom.identifier}
            row.update(atom.values)
            relation.insert(row)
        relation.build_index("_id")
        mapping.entity_relations[atom_type.name] = relation

    for link_type in database.link_types:
        first, second = link_type.atom_type_names
        first_col, second_col = _endpoint_columns(link_type.name, first, second)
        schema = RelationSchema(
            (first_col, second_col),
            primary_key=(first_col, second_col),
            foreign_keys=((first_col, first, "_id"), (second_col, second, "_id")),
        )
        relation = Relation(link_type.name, schema)
        first_ids = set(database.atyp(first).identifiers())
        for link in link_type:
            ids = tuple(link.identifiers)
            if len(ids) == 1:
                first_id = second_id = ids[0]
            else:
                # Order the pair as (first-type endpoint, second-type endpoint).
                if ids[0] in first_ids:
                    first_id, second_id = ids[0], ids[1]
                else:
                    first_id, second_id = ids[1], ids[0]
                if link_type.is_reflexive:
                    ordered = link_type._ordered_ids(link)  # noqa: SLF001 - canonical order
                    first_id, second_id = ordered
            relation.insert({first_col: first_id, second_col: second_id})
        relation.build_index(first_col)
        relation.build_index(second_col)
        mapping.auxiliary_relations[link_type.name] = relation

    return mapping


def concept_comparison_rows() -> Tuple[Tuple[str, str], ...]:
    """The rows of Fig. 3: relational concepts vs. MAD concepts.

    Returned as ``(relational concept, MAD concept)`` pairs; a dash means the
    concept has no counterpart on the relational side.  The Fig. 3 benchmark
    verifies each row against the live implementations of both models.
    """
    return (
        ("attribute", "attribute"),
        ("attribute domain", "attribute domain"),
        ("relation schema", "atom-type description"),
        ("tuple set", "atom-type occurrence"),
        ("tuple", "atom"),
        ("relation", "atom type"),
        ("database", "database"),
        ("-", "link"),
        ("-", "link-type description"),
        ("-", "link-type occurrence"),
        ("-", "link type"),
        ("referential integrity (?)", "referential integrity (!)"),
        ("'relation domain'", "database domain"),
    )
