"""The classical relational algebra over :class:`~repro.relational.relation.Relation`.

Implements the operations of [Ul80] that the paper cites as the basis the MAD
model extends: selection, projection, cartesian product, union, difference,
rename, plus the derived equi-join and natural join (the "hierarchical join"
of [LK84] used by molecule derivation corresponds to a sequence of equi-joins
over the auxiliary relations here).

Every operation counts the tuples it materializes in the module-level
:class:`WorkCounter` when one is passed, so that the E-PERF1 benchmark can
compare intermediate-result sizes against molecule derivation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AlgebraError, UnionCompatibilityError
from repro.relational.relation import Relation, RelationSchema

_result_counter = itertools.count(1)


def _fresh(prefix: str) -> str:
    return f"{prefix}${next(_result_counter)}"


@dataclass
class WorkCounter:
    """Counts tuples produced by relational operations (benchmark instrumentation)."""

    tuples_produced: int = 0
    operations: int = 0
    per_operation: List[Tuple[str, int]] = field(default_factory=list)

    def record(self, operation: str, produced: int) -> None:
        """Record that *operation* produced *produced* tuples."""
        self.tuples_produced += produced
        self.operations += 1
        self.per_operation.append((operation, produced))


def select(
    relation: Relation,
    predicate: Callable[[Mapping[str, object]], bool],
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Selection σ: keep the tuples satisfying *predicate*."""
    result = Relation(name or _fresh(f"select({relation.name})"), relation.schema)
    for row in relation:
        if predicate(row):
            result.insert(row)
    if counter is not None:
        counter.record("select", len(result))
    return result


def project(
    relation: Relation,
    attributes: Sequence[str],
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Projection π: keep only *attributes* (duplicates eliminated — set semantics)."""
    schema = relation.schema.project(attributes)
    result = Relation(name or _fresh(f"project({relation.name})"), schema)
    for row in relation:
        result.insert({attribute: row.get(attribute) for attribute in attributes})
    if counter is not None:
        counter.record("project", len(result))
    return result


def rename(
    relation: Relation,
    mapping: Mapping[str, str],
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Rename ρ: rename attributes through *mapping*."""
    schema = relation.schema.renamed(mapping)
    result = Relation(name or _fresh(f"rename({relation.name})"), schema)
    for row in relation:
        result.insert({mapping.get(key, key): value for key, value in row.items()})
    if counter is not None:
        counter.record("rename", len(result))
    return result


def cartesian_product(
    left: Relation,
    right: Relation,
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Cartesian product ×; clashing attribute names are prefixed with the relation name."""
    clash = set(left.schema.attributes) & set(right.schema.attributes)
    if clash:
        right = rename(right, {attr: f"{right.name}.{attr}" for attr in clash})
    schema = left.schema.merge(right.schema)
    result = Relation(name or _fresh(f"x({left.name},{right.name})"), schema)
    for left_row in left:
        for right_row in right:
            combined = dict(left_row)
            combined.update(right_row)
            result.insert(combined)
    if counter is not None:
        counter.record("product", len(result))
    return result


def _check_compatible(left: Relation, right: Relation, operation: str) -> None:
    if set(left.schema.attributes) != set(right.schema.attributes):
        raise UnionCompatibilityError(
            f"{operation} requires union-compatible relations; "
            f"{left.name!r} has {list(left.schema.attributes)!r}, "
            f"{right.name!r} has {list(right.schema.attributes)!r}"
        )


def union(
    left: Relation,
    right: Relation,
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Union ∪ of two union-compatible relations."""
    _check_compatible(left, right, "union")
    result = Relation(name or _fresh(f"union({left.name},{right.name})"), left.schema)
    for row in left:
        result.insert(row)
    for row in right:
        result.insert({attribute: row.get(attribute) for attribute in left.schema.attributes})
    if counter is not None:
        counter.record("union", len(result))
    return result


def difference(
    left: Relation,
    right: Relation,
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Difference − of two union-compatible relations."""
    _check_compatible(left, right, "difference")
    result = Relation(name or _fresh(f"diff({left.name},{right.name})"), left.schema)
    right_keys = {
        tuple(row.get(attribute) for attribute in left.schema.attributes) for row in right
    }
    for row in left:
        key = tuple(row.get(attribute) for attribute in left.schema.attributes)
        if key not in right_keys:
            result.insert(row)
    if counter is not None:
        counter.record("difference", len(result))
    return result


def intersection(
    left: Relation,
    right: Relation,
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Derived intersection ∩ = left − (left − right)."""
    return difference(left, difference(left, right, counter=counter), name=name, counter=counter)


def equijoin(
    left: Relation,
    right: Relation,
    left_attribute: str,
    right_attribute: str,
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Equi-join on ``left.left_attribute = right.right_attribute`` (hash join).

    Clashing attribute names from the right operand are prefixed with its
    relation name, except for the join attribute itself which is kept once.
    """
    if left_attribute not in left.schema:
        raise AlgebraError(f"join attribute {left_attribute!r} not in {left.name!r}")
    if right_attribute not in right.schema:
        raise AlgebraError(f"join attribute {right_attribute!r} not in {right.name!r}")
    clash = (set(left.schema.attributes) & set(right.schema.attributes)) - {right_attribute}
    renamed_right = right
    if clash:
        renamed_right = rename(right, {attr: f"{right.name}.{attr}" for attr in clash})
    right_attrs = [a for a in renamed_right.schema.attributes if a != right_attribute or right_attribute in left.schema.attributes]
    result_attributes = list(left.schema.attributes) + [
        a for a in renamed_right.schema.attributes if a not in left.schema.attributes and a != right_attribute
    ]
    if right_attribute not in left.schema.attributes and right_attribute not in result_attributes:
        result_attributes.append(right_attribute)
    result = Relation(
        name or _fresh(f"join({left.name},{right.name})"), RelationSchema(tuple(result_attributes))
    )
    buckets: Dict[object, List[Mapping[str, object]]] = {}
    for row in renamed_right:
        buckets.setdefault(row.get(right_attribute), []).append(row)
    for left_row in left:
        for right_row in buckets.get(left_row.get(left_attribute), ()):
            combined = dict(left_row)
            for key, value in right_row.items():
                if key not in combined:
                    combined[key] = value
            result.insert(combined)
    if counter is not None:
        counter.record("equijoin", len(result))
    return result


def natural_join(
    left: Relation,
    right: Relation,
    name: Optional[str] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Natural join ⋈ over all shared attribute names."""
    shared = [a for a in left.schema.attributes if a in right.schema.attributes]
    if not shared:
        return cartesian_product(left, right, name=name, counter=counter)
    result_attributes = list(left.schema.attributes) + [
        a for a in right.schema.attributes if a not in left.schema.attributes
    ]
    result = Relation(
        name or _fresh(f"njoin({left.name},{right.name})"), RelationSchema(tuple(result_attributes))
    )
    buckets: Dict[Tuple, List[Mapping[str, object]]] = {}
    for row in right:
        buckets.setdefault(tuple(row.get(a) for a in shared), []).append(row)
    for left_row in left:
        key = tuple(left_row.get(a) for a in shared)
        for right_row in buckets.get(key, ()):
            combined = dict(left_row)
            combined.update({k: v for k, v in right_row.items() if k not in combined})
            result.insert(combined)
    if counter is not None:
        counter.record("natural_join", len(result))
    return result


class RelationalAlgebra:
    """Facade over the relational operations with a shared work counter."""

    def __init__(self, counter: Optional[WorkCounter] = None) -> None:
        self.counter = counter or WorkCounter()

    def select(self, relation, predicate, name=None) -> Relation:
        """σ — see :func:`select`."""
        return select(relation, predicate, name, self.counter)

    def project(self, relation, attributes, name=None) -> Relation:
        """π — see :func:`project`."""
        return project(relation, attributes, name, self.counter)

    def rename(self, relation, mapping, name=None) -> Relation:
        """ρ — see :func:`rename`."""
        return rename(relation, mapping, name, self.counter)

    def product(self, left, right, name=None) -> Relation:
        """× — see :func:`cartesian_product`."""
        return cartesian_product(left, right, name, self.counter)

    def union(self, left, right, name=None) -> Relation:
        """∪ — see :func:`union`."""
        return union(left, right, name, self.counter)

    def difference(self, left, right, name=None) -> Relation:
        """− — see :func:`difference`."""
        return difference(left, right, name, self.counter)

    def intersection(self, left, right, name=None) -> Relation:
        """∩ — see :func:`intersection`."""
        return intersection(left, right, name, self.counter)

    def equijoin(self, left, right, left_attribute, right_attribute, name=None) -> Relation:
        """⋈ on explicit attributes — see :func:`equijoin`."""
        return equijoin(left, right, left_attribute, right_attribute, name, self.counter)

    def natural_join(self, left, right, name=None) -> Relation:
        """⋈ — see :func:`natural_join`."""
        return natural_join(left, right, name, self.counter)
