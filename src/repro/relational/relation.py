"""Flat relations: schemas, tuples and relations (the 1NF baseline).

A :class:`Relation` is a named set of tuples over a :class:`RelationSchema`
(an ordered list of attribute names with optional primary/foreign key
metadata).  Tuples are stored as plain ``dict`` rows with set semantics
(duplicate rows are eliminated), matching the classical relational model of
[Ul80] the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AlgebraError, DuplicateNameError, SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """A relation schema: attribute names plus key metadata.

    ``primary_key`` names the key attributes; ``foreign_keys`` maps attribute
    names to ``(relation, attribute)`` targets.  In the relational mapping of
    a MAD database the foreign keys of the auxiliary relations point at the
    surrogate keys of the mapped atom relations.
    """

    attributes: Tuple[str, ...]
    primary_key: Tuple[str, ...] = ()
    foreign_keys: Tuple[Tuple[str, str, str], ...] = ()  # (attribute, target rel, target attr)

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attribute in relation schema: {self.attributes!r}")
        for key in self.primary_key:
            if key not in self.attributes:
                raise SchemaError(f"primary-key attribute {key!r} not in schema")
        for attribute, _, _ in self.foreign_keys:
            if attribute not in self.attributes:
                raise SchemaError(f"foreign-key attribute {attribute!r} not in schema")

    def __contains__(self, attribute: object) -> bool:
        return attribute in self.attributes

    def project(self, names: Sequence[str]) -> "RelationSchema":
        """Return the schema restricted to *names* (keys are dropped)."""
        missing = [name for name in names if name not in self.attributes]
        if missing:
            raise AlgebraError(f"cannot project onto unknown attributes {missing!r}")
        return RelationSchema(tuple(names))

    def merge(self, other: "RelationSchema") -> "RelationSchema":
        """Concatenate two schemas; clashing names raise (callers rename first)."""
        clash = set(self.attributes) & set(other.attributes)
        if clash:
            raise DuplicateNameError(f"attributes {sorted(clash)!r} occur in both schemas")
        return RelationSchema(self.attributes + other.attributes)

    def renamed(self, mapping: Mapping[str, str]) -> "RelationSchema":
        """Return the schema with attributes renamed through *mapping*."""
        return RelationSchema(tuple(mapping.get(name, name) for name in self.attributes))


def _freeze(row: Mapping[str, object], attributes: Sequence[str]) -> Tuple:
    return tuple(row.get(name) for name in attributes)


class Relation:
    """A named set of tuples over a :class:`RelationSchema` (set semantics)."""

    __slots__ = ("name", "schema", "_rows", "_index")

    def __init__(
        self,
        name: str,
        schema: "RelationSchema | Sequence[str]",
        rows: Iterable[Mapping[str, object]] = (),
    ) -> None:
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(tuple(schema))
        self.name = name
        self.schema = schema
        self._rows: Dict[Tuple, Dict[str, object]] = {}
        self._index: Dict[str, Dict[object, List[Dict[str, object]]]] = {}
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ rows

    @property
    def rows(self) -> Tuple[Dict[str, object], ...]:
        """All tuples (as dicts), in insertion order."""
        return tuple(self._rows.values())

    def insert(self, row: Mapping[str, object]) -> bool:
        """Insert a tuple; unknown attributes raise, duplicates are ignored.

        Returns ``True`` when the tuple was new.
        """
        unknown = set(row) - set(self.schema.attributes)
        if unknown:
            raise AlgebraError(
                f"tuple has attributes {sorted(unknown)!r} outside schema of {self.name!r}"
            )
        normalized = {name: row.get(name) for name in self.schema.attributes}
        key = _freeze(normalized, self.schema.attributes)
        if key in self._rows:
            return False
        self._rows[key] = normalized
        for attribute, buckets in self._index.items():
            buckets.setdefault(normalized.get(attribute), []).append(normalized)
        return True

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> int:
        """Insert several tuples; returns the number actually added."""
        return sum(1 for row in rows if self.insert(row))

    def delete(self, predicate) -> int:
        """Delete the tuples satisfying *predicate*; returns the count removed."""
        doomed = [key for key, row in self._rows.items() if predicate(row)]
        for key in doomed:
            del self._rows[key]
        if doomed:
            self._index.clear()
        return len(doomed)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self._rows.values())

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, Mapping):
            return False
        return _freeze(row, self.schema.attributes) in self._rows

    # --------------------------------------------------------------- indexes

    def build_index(self, attribute: str) -> None:
        """Build (or rebuild) a hash index on *attribute* for join acceleration."""
        if attribute not in self.schema:
            raise AlgebraError(f"cannot index unknown attribute {attribute!r}")
        buckets: Dict[object, List[Dict[str, object]]] = {}
        for row in self._rows.values():
            buckets.setdefault(row.get(attribute), []).append(row)
        self._index[attribute] = buckets

    def lookup(self, attribute: str, value: object) -> Tuple[Dict[str, object], ...]:
        """Return the tuples whose *attribute* equals *value*, via index when present."""
        if attribute in self._index:
            return tuple(self._index[attribute].get(value, ()))
        return tuple(row for row in self._rows.values() if row.get(attribute) == value)

    # ------------------------------------------------------------------ misc

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Return a copy (fresh row storage)."""
        return Relation(name or self.name, self.schema, self._rows.values())

    def values_of(self, attribute: str) -> Tuple[object, ...]:
        """All values of *attribute* across the relation (with duplicates)."""
        return tuple(row.get(attribute) for row in self._rows.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            set(self.schema.attributes) == set(other.schema.attributes)
            and set(self._rows) == set(_freeze(row, self.schema.attributes) for row in other)
        )

    def __hash__(self) -> int:  # relations are mutable; identity hash keeps dict use safe
        return id(self)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, attributes={list(self.schema.attributes)!r}, rows={len(self)})"
