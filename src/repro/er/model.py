"""The binary ER model (without relationship attributes) used in Fig. 1.

The paper compares the MAD model against "the well-known (binary) ER model
(without relationship attributes)" and notes the MAD model "could also serve
as a descriptive high-level 'ER language' with the molecule algebra serving as
a sound 'ER algebra'".  The classes here are deliberately minimal: entity
types with typed attributes, binary relationship types with a cardinality
(1:1, 1:n or n:m), and a schema collecting both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.attributes import AttributeDescription, DataType
from repro.exceptions import DuplicateNameError, SchemaError, UnknownNameError


@dataclass(frozen=True)
class EntityType:
    """An ER entity type: a name plus typed attributes."""

    name: str
    attributes: Tuple[AttributeDescription, ...] = ()

    @classmethod
    def define(cls, entity_name: str, /, **attributes: "str | DataType") -> "EntityType":
        """Convenience constructor: ``EntityType.define("state", name="string")``.

        The entity-type name is positional-only so that an attribute may
        itself be called ``name`` (as in the geographic example).
        """
        return cls(
            entity_name,
            tuple(AttributeDescription(attr_name, data_type) for attr_name, data_type in attributes.items()),
        )

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """The names of the entity type's attributes."""
        return tuple(attribute.name for attribute in self.attributes)


@dataclass(frozen=True)
class RelationshipType:
    """A binary ER relationship type between two entity types.

    ``cardinality`` is one of ``"1:1"``, ``"1:n"`` or ``"n:m"``; reflexive
    relationship types (both ends the same entity type) are allowed, mirroring
    the reflexive link types of the MAD model.
    """

    name: str
    first: str
    second: str
    cardinality: str = "n:m"

    def __post_init__(self) -> None:
        if self.cardinality not in ("1:1", "1:n", "n:m"):
            raise SchemaError(f"unknown ER cardinality: {self.cardinality!r}")

    @property
    def is_reflexive(self) -> bool:
        """``True`` when both ends are the same entity type."""
        return self.first == self.second

    @property
    def is_many_to_many(self) -> bool:
        """``True`` for n:m relationship types (the ones needing junction relations)."""
        return self.cardinality == "n:m"


class ERSchema:
    """A collection of entity types and binary relationship types."""

    def __init__(self, name: str = "er") -> None:
        self.name = name
        self._entities: Dict[str, EntityType] = {}
        self._relationships: Dict[str, RelationshipType] = {}

    def add_entity(self, entity: "EntityType | str", /, **attributes) -> EntityType:
        """Add an entity type (object or name + keyword attribute specs)."""
        if isinstance(entity, str):
            entity = EntityType.define(entity, **attributes)
        if entity.name in self._entities:
            raise DuplicateNameError(f"entity type {entity.name!r} already defined")
        self._entities[entity.name] = entity
        return entity

    def add_relationship(
        self,
        name: str,
        first: str,
        second: str,
        cardinality: str = "n:m",
    ) -> RelationshipType:
        """Add a binary relationship type between two existing entity types."""
        for entity_name in (first, second):
            if entity_name not in self._entities:
                raise UnknownNameError(
                    f"relationship {name!r} references unknown entity type {entity_name!r}"
                )
        if name in self._relationships:
            raise DuplicateNameError(f"relationship type {name!r} already defined")
        relationship = RelationshipType(name, first, second, cardinality)
        self._relationships[name] = relationship
        return relationship

    @property
    def entity_types(self) -> Tuple[EntityType, ...]:
        """All entity types."""
        return tuple(self._entities.values())

    @property
    def relationship_types(self) -> Tuple[RelationshipType, ...]:
        """All relationship types."""
        return tuple(self._relationships.values())

    def entity(self, name: str) -> EntityType:
        """Return the entity type named *name*."""
        try:
            return self._entities[name]
        except KeyError as exc:
            raise UnknownNameError(f"unknown entity type: {name!r}") from exc

    def relationship(self, name: str) -> RelationshipType:
        """Return the relationship type named *name*."""
        try:
            return self._relationships[name]
        except KeyError as exc:
            raise UnknownNameError(f"unknown relationship type: {name!r}") from exc

    def many_to_many_relationships(self) -> Tuple[RelationshipType, ...]:
        """The n:m relationship types (each needs an auxiliary relation relationally)."""
        return tuple(r for r in self._relationships.values() if r.is_many_to_many)

    def __repr__(self) -> str:
        return (
            f"ERSchema({self.name!r}, entities={len(self._entities)}, "
            f"relationships={len(self._relationships)})"
        )


def geographic_er_schema() -> ERSchema:
    """The ER diagram of Fig. 1 for the geographic application."""
    schema = ERSchema("geo_er")
    schema.add_entity("state", name="string", code="string", hectare="integer")
    schema.add_entity("river", name="string", length="integer")
    schema.add_entity("city", name="string", population="integer")
    schema.add_entity("area", area_id="string", kind="string")
    schema.add_entity("net", net_id="string", kind="string")
    schema.add_entity("edge", edge_id="string", length="real")
    schema.add_entity("point", name="string", x="real", y="real")
    schema.add_relationship("state-area", "state", "area", "1:n")
    schema.add_relationship("river-net", "river", "net", "1:n")
    schema.add_relationship("city-point", "city", "point", "1:n")
    schema.add_relationship("area-edge", "area", "edge", "n:m")
    schema.add_relationship("net-edge", "net", "edge", "n:m")
    schema.add_relationship("edge-point", "edge", "point", "n:m")
    return schema
