"""The one-to-one ER→MAD mapping (§2).

"A closer look at the ER diagram and the corresponding MAD diagram in fig.1
reveals that there is a one-to-one mapping from the ER model to the MAD model
associating each entity type with an atom type and each relationship type
with a link type.  Compared to the relational model, here we don't have to use
any auxiliary structures."
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.database import Database
from repro.core.link import Cardinality
from repro.er.model import ERSchema

_CARDINALITY_MAP = {
    "1:1": Cardinality.ONE_TO_ONE,
    "1:n": Cardinality.ONE_TO_MANY,
    "n:m": Cardinality.MANY_TO_MANY,
}


def er_to_mad(schema: ERSchema, name: str = "", enforce_cardinalities: bool = False) -> Database:
    """Map an ER schema onto a MAD database schema (no occurrence).

    Each entity type becomes an atom type with the same attributes; each
    relationship type becomes a link type between the corresponding atom
    types.  The mapping is structure-preserving and bijective on type names —
    the Fig. 1 benchmark checks exactly that.

    When *enforce_cardinalities* is false (the default) every link type is
    created n:m so that bulk loaders are free to insert links in any order;
    the declared ER cardinalities are still observable through the returned
    mapping report of :func:`er_to_mad_report`.
    """
    db = Database(name or f"{schema.name}_mad")
    for entity in schema.entity_types:
        db.define_atom_type(entity.name, list(entity.attributes))
    for relationship in schema.relationship_types:
        cardinality = (
            _CARDINALITY_MAP[relationship.cardinality]
            if enforce_cardinalities
            else Cardinality.MANY_TO_MANY
        )
        db.define_link_type(
            relationship.name, relationship.first, relationship.second, cardinality=cardinality
        )
    return db


def er_to_mad_report(schema: ERSchema, database: Database) -> Dict[str, Tuple[str, str]]:
    """Return the correspondence table entity/relationship type → atom/link type.

    Every entry maps an ER type name to ``(kind, MAD type name)``; the mapping
    is the identity on names, which is what "one-to-one" means operationally.
    """
    report: Dict[str, Tuple[str, str]] = {}
    for entity in schema.entity_types:
        kind = "atom type" if database.has_atom_type(entity.name) else "MISSING"
        report[entity.name] = ("entity type -> " + kind, entity.name)
    for relationship in schema.relationship_types:
        kind = "link type" if database.has_link_type(relationship.name) else "MISSING"
        report[relationship.name] = ("relationship type -> " + kind, relationship.name)
    return report
