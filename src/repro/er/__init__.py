"""The (binary) ER model front-end and its mappings (Fig. 1, §2, §5).

Fig. 1 models the geographic application first as an ER diagram and then as a
MAD diagram; the paper observes "a one-to-one mapping from the ER model to the
MAD model associating each entity type with an atom type and each relationship
type with a link type" and, by contrast, that the relational mapping needs
auxiliary relations for every n:m relationship type.  This package provides:

* :mod:`repro.er.model` — entity types, (binary) relationship types with
  cardinalities, and ER schemas,
* :mod:`repro.er.to_mad` — the one-to-one ER→MAD mapping,
* :mod:`repro.er.to_relational` — the classical ER→relational mapping with
  junction relations for n:m relationship types.
"""

from repro.er.model import EntityType, ERSchema, RelationshipType
from repro.er.to_mad import er_to_mad
from repro.er.to_relational import er_to_relational_schemas

__all__ = [
    "ERSchema",
    "EntityType",
    "RelationshipType",
    "er_to_mad",
    "er_to_relational_schemas",
]
