"""The classical ER→relational mapping, with junction relations for n:m types.

The contrast the paper draws in §2: on the relational side "all n:m
relationship types have to be modeled by some auxiliary relations", whereas
1:1 and 1:n relationship types can be folded into foreign-key attributes of
the entity relations.  :func:`er_to_relational_schemas` follows the textbook
mapping so that the Fig. 1/Fig. 3 benchmarks can report how many auxiliary
structures each model needs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.er.model import ERSchema
from repro.relational.relation import Relation, RelationSchema


def er_to_relational_schemas(schema: ERSchema) -> Dict[str, RelationSchema]:
    """Map an ER schema onto relational schemas (no data).

    * every entity type → a relation with a surrogate key ``_id`` plus its
      attributes;
    * every 1:1 or 1:n relationship type → a foreign-key attribute added to
      the "many" side (or to the second entity for 1:1);
    * every n:m relationship type → an auxiliary (junction) relation with two
      foreign keys.
    """
    entity_attributes: Dict[str, List[str]] = {
        entity.name: ["_id", *entity.attribute_names] for entity in schema.entity_types
    }
    entity_foreign_keys: Dict[str, List[Tuple[str, str, str]]] = {
        entity.name: [] for entity in schema.entity_types
    }
    junction_schemas: Dict[str, RelationSchema] = {}

    for relationship in schema.relationship_types:
        if relationship.is_many_to_many:
            first_col = f"{relationship.first}_id"
            second_col = f"{relationship.second}_id"
            if relationship.is_reflexive:
                first_col = f"{relationship.first}_super_id"
                second_col = f"{relationship.second}_sub_id"
            junction_schemas[relationship.name] = RelationSchema(
                (first_col, second_col),
                primary_key=(first_col, second_col),
                foreign_keys=(
                    (first_col, relationship.first, "_id"),
                    (second_col, relationship.second, "_id"),
                ),
            )
        else:
            # Fold a foreign key into the dependent (second / "many") side.
            owner = relationship.second
            referenced = relationship.first
            column = f"{relationship.name}_{referenced}_id"
            entity_attributes[owner].append(column)
            entity_foreign_keys[owner].append((column, referenced, "_id"))

    result: Dict[str, RelationSchema] = {}
    for entity in schema.entity_types:
        result[entity.name] = RelationSchema(
            tuple(entity_attributes[entity.name]),
            primary_key=("_id",),
            foreign_keys=tuple(entity_foreign_keys[entity.name]),
        )
    result.update(junction_schemas)
    return result


def auxiliary_relation_count(schema: ERSchema) -> int:
    """Number of auxiliary relations the relational mapping needs (= n:m types)."""
    return len(schema.many_to_many_relationships())


def mad_auxiliary_structure_count(schema: ERSchema) -> int:
    """Number of auxiliary structures the MAD mapping needs — always zero.

    Kept as an explicit function so the Fig. 1 benchmark states the comparison
    in code rather than in prose.
    """
    return 0
