"""A lightweight system catalog over a MAD database.

PRIMA-style systems keep a catalog describing the declared atom types, link
types, their attributes and statistics; the optimizer and the MQL semantic
analysis read from it.  The catalog is a read-only projection of the live
:class:`~repro.core.database.Database`, refreshed on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.database import Database
from repro.exceptions import UnknownNameError


@dataclass(frozen=True)
class CatalogEntry:
    """One catalog row describing an atom type or a link type."""

    name: str
    kind: str  # "atom_type" or "link_type"
    attributes: Tuple[str, ...] = ()
    connects: Tuple[str, ...] = ()
    cardinality: Optional[str] = None
    occurrence_size: int = 0


class Catalog:
    """Catalog of a database's atom types and link types with basic statistics."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._entries: Dict[str, CatalogEntry] = {}
        self.refresh()

    def refresh(self) -> None:
        """Re-read the catalog from the underlying database."""
        self._entries = {}
        for atom_type in self._database.atom_types:
            self._entries[atom_type.name] = CatalogEntry(
                name=atom_type.name,
                kind="atom_type",
                attributes=tuple(atom_type.description.names),
                occurrence_size=len(atom_type),
            )
        for link_type in self._database.link_types:
            self._entries[link_type.name] = CatalogEntry(
                name=link_type.name,
                kind="link_type",
                connects=link_type.atom_type_names,
                cardinality=link_type.cardinality.value,
                occurrence_size=len(link_type),
            )

    def entry(self, name: str) -> CatalogEntry:
        """Return the catalog entry for *name*; raises when unknown."""
        try:
            return self._entries[name]
        except KeyError as exc:
            raise UnknownNameError(f"no catalog entry for {name!r}") from exc

    def atom_types(self) -> Tuple[CatalogEntry, ...]:
        """All atom-type entries."""
        return tuple(e for e in self._entries.values() if e.kind == "atom_type")

    def link_types(self) -> Tuple[CatalogEntry, ...]:
        """All link-type entries."""
        return tuple(e for e in self._entries.values() if e.kind == "link_type")

    def attribute_owner(self, attribute: str) -> Tuple[str, ...]:
        """Return the atom types that declare *attribute* (for MQL name resolution)."""
        return tuple(
            entry.name
            for entry in self.atom_types()
            if attribute in entry.attributes
        )

    def link_types_between(self, first: str, second: str) -> Tuple[CatalogEntry, ...]:
        """Return the link-type entries connecting *first* and *second*."""
        wanted = frozenset((first, second))
        return tuple(
            entry
            for entry in self.link_types()
            if frozenset(entry.connects) == wanted
        )

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def to_rows(self) -> List[Tuple[str, str, str, int]]:
        """Render the catalog as printable rows (name, kind, details, size)."""
        rows = []
        for entry in self._entries.values():
            details = (
                ", ".join(entry.attributes)
                if entry.kind == "atom_type"
                else " -- ".join(entry.connects) + f" [{entry.cardinality}]"
            )
            rows.append((entry.name, entry.kind, details, entry.occurrence_size))
        return rows
