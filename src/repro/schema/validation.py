"""Database validation: referential integrity, cardinality, and domain checks.

The paper emphasizes that the MAD model "avoids the problem of enforcing
referential integrity, since the relevant relationships … are explicitly
represented and maintained by means of the link concept.  (There are no
dangling references (i.e. links) and it is even possible to control
cardinality restrictions specified in an extended link-type definition)".
:func:`validate_database` turns those guarantees into an executable report:
it never mutates the database, it only inspects it and lists every violation
found (an empty report means membership in the database domain ``DB*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.database import Database
from repro.core.link import Cardinality
from repro.exceptions import DomainError


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_database`; empty ``violations`` means valid."""

    violations: List[str] = field(default_factory=list)
    checked_atoms: int = 0
    checked_links: int = 0

    @property
    def is_valid(self) -> bool:
        """``True`` when no violation was recorded."""
        return not self.violations

    def add(self, message: str) -> None:
        """Record a violation."""
        self.violations.append(message)

    def __bool__(self) -> bool:
        return self.is_valid


def validate_database(database: Database) -> ValidationReport:
    """Validate *database* and return a :class:`ValidationReport`.

    Checks performed:

    * **domain check** — every atom's values satisfy its type's attribute
      descriptions (types, enumerations, required flags);
    * **referential integrity** — every link endpoint exists in one of the
      link type's endpoint atom types;
    * **cardinality** — 1:1 and 1:n link types do not exceed their bounds.

    Note that atom identity is unique *within* an atom type ("each atom …
    is uniquely identifiable and belongs to its corresponding atom type");
    the same identifier may legitimately appear in several atom types of an
    enlarged database, because algebra results keep the identity of their
    operand atoms (that is what makes link inheritance possible).
    """
    report = ValidationReport()

    for atom_type in database.atom_types:
        for atom in atom_type:
            report.checked_atoms += 1
            try:
                atom_type.description.validate_values(atom.values)
            except DomainError as exc:
                report.add(f"domain violation in {atom_type.name!r}/{atom.identifier!r}: {exc}")
            except Exception as exc:  # noqa: BLE001 - report, don't crash validation
                report.add(f"invalid atom {atom.identifier!r} in {atom_type.name!r}: {exc}")

    for link_type in database.link_types:
        first_name, second_name = link_type.atom_type_names
        first = database.atyp(first_name)
        second = database.atyp(second_name)
        known = set(first.identifiers()) | set(second.identifiers())
        degree_first: Dict[str, int] = {}
        degree_second: Dict[str, int] = {}
        for link in link_type:
            report.checked_links += 1
            for identifier in link.identifiers:
                if identifier not in known:
                    report.add(
                        f"dangling link in {link_type.name!r}: atom {identifier!r} does not exist"
                    )
            ids = tuple(link.identifiers)
            first_id = ids[0] if ids[0] in first else ids[-1]
            second_id = ids[-1] if first_id == ids[0] else ids[0]
            degree_first[first_id] = degree_first.get(first_id, 0) + 1
            degree_second[second_id] = degree_second.get(second_id, 0) + 1
        if link_type.cardinality is Cardinality.ONE_TO_ONE:
            for identifier, degree in {**degree_first, **degree_second}.items():
                if degree > 1:
                    report.add(
                        f"cardinality violation in 1:1 link type {link_type.name!r}: "
                        f"atom {identifier!r} participates {degree} times"
                    )
        elif link_type.cardinality is Cardinality.ONE_TO_MANY:
            for identifier, degree in degree_second.items():
                if degree > 1:
                    report.add(
                        f"cardinality violation in 1:n link type {link_type.name!r}: "
                        f"{second_name!r} atom {identifier!r} has {degree} parents"
                    )

    return report
