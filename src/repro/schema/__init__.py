"""Schema layer: DDL-style schema building, the catalog, and integrity validation."""

from repro.schema.builder import SchemaBuilder
from repro.schema.catalog import Catalog, CatalogEntry
from repro.schema.validation import ValidationReport, validate_database

__all__ = [
    "Catalog",
    "CatalogEntry",
    "SchemaBuilder",
    "ValidationReport",
    "validate_database",
]
