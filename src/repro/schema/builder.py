"""A fluent DDL-style schema builder for MAD databases.

The MAD database schema is deliberately "primitive in the sense that it is not
superposed by some static structures used for complex object definition" —
only atom types and link types are declared; molecule types are defined
dynamically in queries.  The builder therefore only covers those two notions,
plus attribute declarations and cardinality restrictions:

    db = (SchemaBuilder("GEO_DB")
          .atom_type("state", name="string", hectare="integer")
          .atom_type("area", area_id="string")
          .link_type("state-area", "state", "area", cardinality="1:n")
          .build())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.attributes import AttributeDescription, DataType
from repro.core.database import Database
from repro.core.link import Cardinality
from repro.exceptions import SchemaError


class SchemaBuilder:
    """Collects atom-type and link-type declarations and builds a :class:`Database`."""

    def __init__(self, name: str = "db") -> None:
        self._name = name
        self._atom_types: List[Tuple[str, List[AttributeDescription]]] = []
        self._link_types: List[Tuple[str, str, str, Cardinality]] = []
        self._docs: Dict[str, str] = {}

    def atom_type(self, type_name: str, /, _doc: str = "", **attributes: "str | DataType | AttributeDescription") -> "SchemaBuilder":
        """Declare an atom type; keyword arguments map attribute names to data types.

        The atom-type name is positional-only so that an attribute may itself
        be called ``name`` (as in the geographic example).  A value may also be
        a prepared :class:`AttributeDescription` to attach enumerated domains
        or ``required`` flags.
        """
        described: List[AttributeDescription] = []
        for attribute_name, spec in attributes.items():
            if isinstance(spec, AttributeDescription):
                described.append(spec if spec.name == attribute_name else spec.renamed(attribute_name))
            else:
                described.append(AttributeDescription(attribute_name, spec))
        self._atom_types.append((type_name, described))
        if _doc:
            self._docs[type_name] = _doc
        return self

    def link_type(
        self,
        name: str,
        first: str,
        second: str,
        cardinality: "Cardinality | str" = Cardinality.MANY_TO_MANY,
        _doc: str = "",
    ) -> "SchemaBuilder":
        """Declare a link type between two previously declared atom types."""
        if isinstance(cardinality, str):
            try:
                cardinality = Cardinality(cardinality)
            except ValueError as exc:
                raise SchemaError(f"unknown cardinality: {cardinality!r}") from exc
        self._link_types.append((name, first, second, cardinality))
        if _doc:
            self._docs[name] = _doc
        return self

    def reflexive_link_type(
        self,
        name: str,
        atom_type: str,
        cardinality: "Cardinality | str" = Cardinality.MANY_TO_MANY,
        _doc: str = "",
    ) -> "SchemaBuilder":
        """Declare a reflexive link type (both endpoints the same atom type)."""
        return self.link_type(name, atom_type, atom_type, cardinality, _doc)

    @property
    def documentation(self) -> Dict[str, str]:
        """Free-form documentation per declared type name."""
        return dict(self._docs)

    def build(self) -> Database:
        """Materialize the declarations into a fresh :class:`Database`."""
        db = Database(self._name)
        for name, attributes in self._atom_types:
            db.define_atom_type(name, attributes)
        for name, first, second, cardinality in self._link_types:
            db.define_link_type(name, first, second, cardinality=cardinality)
        return db
