"""repro — a reproduction of the MAD model and molecule algebra (Mitschang, VLDB 1989).

The package implements the molecule-atom data model (MAD model), its molecule
algebra, and the molecule query language MQL from *Extending the Relational
Algebra to Capture Complex Objects*, together with the substrates the paper
builds on or compares against: the relational model with auxiliary relations,
the NF² nested-relational model, the ER model, an in-memory storage engine,
manipulation facilities, and an algebraic query optimizer.

Quickstart::

    from repro import load_geography, MoleculeAlgebra, attr

    db = load_geography()
    algebra = MoleculeAlgebra(db)
    mt_state = algebra.define(
        "mt_state",
        ["state", "area", "edge", "point"],
        [("state-area", "state", "area"),
         ("area-edge", "area", "edge"),
         ("edge-point", "edge", "point")],
    )
    big_states = algebra.restrict(mt_state, attr("hectare", "state") > 800)
    for molecule in big_states.molecule_type:
        print(molecule.root_atom["name"], len(molecule), "component atoms")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduction of every figure and table of the paper.
"""

from repro.core import (
    Atom,
    AtomAlgebra,
    AtomType,
    AtomTypeDescription,
    AttributeDescription,
    Cardinality,
    Database,
    DataType,
    DirectedLink,
    Link,
    LinkType,
    Molecule,
    MoleculeAlgebra,
    MoleculeType,
    MoleculeTypeDescription,
    RecursiveDescription,
    attr,
    derive_occurrence,
    formal_specification,
    molecule_type_definition,
    recursive_molecule_type,
)
from repro.datasets import (
    build_bill_of_materials,
    build_geography,
    build_synthetic_network,
    load_geography,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "AtomAlgebra",
    "AtomType",
    "AtomTypeDescription",
    "AttributeDescription",
    "Cardinality",
    "Database",
    "DataType",
    "DirectedLink",
    "Link",
    "LinkType",
    "Molecule",
    "MoleculeAlgebra",
    "MoleculeType",
    "MoleculeTypeDescription",
    "RecursiveDescription",
    "attr",
    "build_bill_of_materials",
    "build_geography",
    "build_synthetic_network",
    "derive_occurrence",
    "formal_specification",
    "load_geography",
    "molecule_type_definition",
    "recursive_molecule_type",
    "__version__",
]
