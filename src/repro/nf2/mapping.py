"""Mapping hierarchical molecule types onto nested relations.

The NF² model "supports only hierarchical complex objects without shared
subobjects": a molecule type whose structure graph is a *tree* can be mapped
onto a nested relation, but any atom shared between molecules (or reachable
through two branches) has to be **copied** into every parent.
:func:`molecule_type_to_nested` performs the mapping;
:func:`nested_duplication_factor` measures the resulting blow-up, which is one
of the quantities reported by the E-PERF1 benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.exceptions import AlgebraError
from repro.nf2.nested_relation import NestedRelation, NestedSchema


def _schema_for(description: MoleculeTypeDescription, type_name: str, attribute_names: Dict[str, Tuple[str, ...]]) -> NestedSchema:
    children = description.children_of(type_name)
    nested = tuple(
        (directed.target, _schema_for(description, directed.target, attribute_names))
        for directed in children
    )
    return NestedSchema(("_id",) + attribute_names[type_name], nested)


def molecule_type_to_nested(
    molecule_type: MoleculeType,
    name: Optional[str] = None,
    strict: bool = True,
) -> NestedRelation:
    """Map *molecule_type* onto a nested relation (one nested tuple per molecule).

    When *strict* is true the molecule structure must be a tree (every atom
    type except the root has exactly one parent); a DAG structure raises
    :class:`AlgebraError`, because NF² cannot represent the sharing without
    choosing one parent arbitrarily.  Shared atoms *between* molecules are
    silently duplicated — that is precisely the NF² limitation the paper
    points out.
    """
    description = molecule_type.description
    for type_name in description.atom_type_names:
        if type_name == description.root:
            continue
        if strict and len(description.parents_of(type_name)) > 1:
            raise AlgebraError(
                f"molecule structure is not hierarchical: {type_name!r} has several parents; "
                "NF² supports only hierarchical complex objects"
            )

    attribute_names: Dict[str, Tuple[str, ...]] = {}
    for type_name in description.atom_type_names:
        names: Tuple[str, ...] = ()
        for molecule in molecule_type:
            atoms = molecule.atoms_of_type(type_name)
            if atoms:
                names = tuple(atoms[0].values.keys())
                break
        attribute_names[type_name] = names

    schema = _schema_for(description, description.root, attribute_names)
    relation = NestedRelation(name or molecule_type.name, schema)

    adjacency_cache: Dict[int, Dict[str, set]] = {}

    def adjacency(molecule: Molecule) -> Dict[str, set]:
        key = id(molecule)
        if key not in adjacency_cache:
            adj: Dict[str, set] = {}
            for link in molecule.links:
                ids = tuple(link.identifiers)
                first, last = ids[0], ids[-1]
                adj.setdefault(first, set()).add(last)
                adj.setdefault(last, set()).add(first)
            adjacency_cache[key] = adj
        return adjacency_cache[key]

    def build(molecule: Molecule, atom, type_name: str) -> Dict[str, object]:
        row: Dict[str, object] = {"_id": atom.identifier}
        row.update(atom.values)
        neighbours = adjacency(molecule).get(atom.identifier, set())
        for directed in description.children_of(type_name):
            children = [
                child
                for child in molecule.atoms_of_type(directed.target)
                if child.identifier in neighbours
            ]
            row[directed.target] = [build(molecule, child, directed.target) for child in children]
        return row

    for molecule in molecule_type:
        relation.insert(build(molecule, molecule.root_atom, description.root))
    return relation


def nested_duplication_factor(molecule_type: MoleculeType, nested: NestedRelation) -> float:
    """Ratio of NF² stored tuples to distinct MAD atoms.

    A factor of 1.0 means no sharing was lost; factors above 1.0 quantify the
    copies the nested representation had to make for shared subobjects.
    """
    distinct = molecule_type.distinct_atom_count()
    if distinct == 0:
        return 1.0
    return nested.flat_tuple_count() / distinct
