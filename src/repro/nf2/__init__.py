"""The NF² (non-first-normal-form) baseline: nested relations and their algebra.

The paper positions the molecule algebra as an extension of "the
non-first-normal-form algebra [SS86] that supports only hierarchical complex
objects without shared subobjects".  This package implements that baseline —
relation-valued attributes, the NEST/UNNEST operators, and the NF² variants of
selection/projection/union/difference — plus the mapping from hierarchical
molecule types onto nested relations, which makes the "no shared subobjects"
limitation measurable (shared atoms are *duplicated* when nesting).
"""

from repro.nf2.algebra import (
    NF2Algebra,
    nest,
    nf2_difference,
    nf2_project,
    nf2_select,
    nf2_union,
    unnest,
)
from repro.nf2.mapping import molecule_type_to_nested, nested_duplication_factor
from repro.nf2.nested_relation import NestedRelation, NestedSchema

__all__ = [
    "NF2Algebra",
    "NestedRelation",
    "NestedSchema",
    "molecule_type_to_nested",
    "nest",
    "nested_duplication_factor",
    "nf2_difference",
    "nf2_project",
    "nf2_select",
    "nf2_union",
    "unnest",
]
