"""The NF² algebra: NEST, UNNEST and the lifted set operations ([SS86]).

The two characteristic operators of the nested relational model:

* :func:`nest` groups tuples that agree on the non-nested attributes and
  collects the grouped attributes into a new relation-valued attribute;
* :func:`unnest` flattens a relation-valued attribute back into 1NF.

``unnest(nest(R))`` is the identity whenever the nested attribute is not empty
for any group (the classical partial-inverse property, exercised by the
property-based tests).  Selection, projection, union and difference are lifted
from the flat algebra; selection predicates may look inside relation-valued
attributes.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AlgebraError
from repro.nf2.nested_relation import NestedRelation, NestedSchema, _freeze_value

_result_counter = itertools.count(1)


def _fresh(prefix: str) -> str:
    return f"{prefix}${next(_result_counter)}"


def nest(
    relation: NestedRelation,
    attributes: Sequence[str],
    into: str,
    name: Optional[str] = None,
) -> NestedRelation:
    """NEST: group on the remaining attributes, collecting *attributes* into *into*.

    *attributes* must all be top-level attributes of *relation*; the new
    relation-valued attribute *into* holds, per group, the sub-tuples over
    exactly those attributes.
    """
    for attribute in attributes:
        if attribute not in relation.schema.attribute_names:
            raise AlgebraError(f"cannot nest unknown attribute {attribute!r}")
    if into in relation.schema.attribute_names:
        raise AlgebraError(f"nested attribute name {into!r} already exists")

    kept_atomic = tuple(a for a in relation.schema.atomic if a not in attributes)
    kept_nested = tuple((n, s) for n, s in relation.schema.nested if n not in attributes)
    sub_atomic = tuple(a for a in relation.schema.atomic if a in attributes)
    sub_nested = tuple((n, s) for n, s in relation.schema.nested if n in attributes)
    sub_schema = NestedSchema(sub_atomic, sub_nested)
    result_schema = NestedSchema(kept_atomic, kept_nested + ((into, sub_schema),))

    groups: Dict[object, Dict[str, object]] = {}
    for row in relation:
        group_values = {a: row.get(a) for a in kept_atomic}
        for nested_name, _ in kept_nested:
            group_values[nested_name] = row.get(nested_name, [])
        key = _freeze_value(group_values)
        bucket = groups.setdefault(key, {**group_values, into: []})
        sub_row = {a: row.get(a) for a in sub_atomic}
        for nested_name, _ in sub_nested:
            sub_row[nested_name] = row.get(nested_name, [])
        if sub_row not in bucket[into]:
            bucket[into].append(sub_row)

    return NestedRelation(name or _fresh(f"nest({relation.name})"), result_schema, groups.values())


def unnest(
    relation: NestedRelation,
    attribute: str,
    name: Optional[str] = None,
) -> NestedRelation:
    """UNNEST: flatten the relation-valued attribute *attribute*.

    Groups whose sub-relation is empty disappear (which is why UNNEST is only
    a partial inverse of NEST).
    """
    if not relation.schema.is_nested(attribute):
        raise AlgebraError(f"{attribute!r} is not a relation-valued attribute")
    sub_schema = relation.schema.nested_schema(attribute)
    kept_nested = tuple((n, s) for n, s in relation.schema.nested if n != attribute)
    result_schema = NestedSchema(
        relation.schema.atomic + sub_schema.atomic,
        kept_nested + sub_schema.nested,
    )
    rows: List[Dict[str, object]] = []
    for row in relation:
        for sub_row in row.get(attribute, []):
            flattened = {a: row.get(a) for a in relation.schema.atomic}
            for nested_name, _ in kept_nested:
                flattened[nested_name] = row.get(nested_name, [])
            for key, value in sub_row.items():
                flattened[key] = value
            rows.append(flattened)
    return NestedRelation(name or _fresh(f"unnest({relation.name})"), result_schema, rows)


def nf2_select(
    relation: NestedRelation,
    predicate: Callable[[Mapping[str, object]], bool],
    name: Optional[str] = None,
) -> NestedRelation:
    """NF² selection: keep nested tuples satisfying *predicate* (which may inspect sub-relations)."""
    result = NestedRelation(name or _fresh(f"select({relation.name})"), relation.schema)
    for row in relation:
        if predicate(row):
            result.insert(row)
    return result


def nf2_project(
    relation: NestedRelation,
    attributes: Sequence[str],
    name: Optional[str] = None,
) -> NestedRelation:
    """NF² projection onto top-level attributes (atomic or relation-valued)."""
    atomic = tuple(a for a in relation.schema.atomic if a in attributes)
    nested = tuple((n, s) for n, s in relation.schema.nested if n in attributes)
    known = set(relation.schema.attribute_names)
    unknown = [a for a in attributes if a not in known]
    if unknown:
        raise AlgebraError(f"cannot project onto unknown attributes {unknown!r}")
    schema = NestedSchema(atomic, nested)
    result = NestedRelation(name or _fresh(f"project({relation.name})"), schema)
    for row in relation:
        result.insert({a: row.get(a) for a in schema.attribute_names})
    return result


def _check_compatible(left: NestedRelation, right: NestedRelation, operation: str) -> None:
    if left.schema != right.schema:
        raise AlgebraError(f"NF² {operation} requires identical nested schemas")


def nf2_union(left: NestedRelation, right: NestedRelation, name: Optional[str] = None) -> NestedRelation:
    """NF² union of two relations with identical nested schemas."""
    _check_compatible(left, right, "union")
    result = NestedRelation(name or _fresh(f"union({left.name},{right.name})"), left.schema)
    for row in left:
        result.insert(row)
    for row in right:
        result.insert(row)
    return result


def nf2_difference(left: NestedRelation, right: NestedRelation, name: Optional[str] = None) -> NestedRelation:
    """NF² difference of two relations with identical nested schemas."""
    _check_compatible(left, right, "difference")
    result = NestedRelation(name or _fresh(f"diff({left.name},{right.name})"), left.schema)
    right_keys = {
        _freeze_value({n: row.get(n) for n in right.schema.attribute_names}) for row in right
    }
    for row in left:
        key = _freeze_value({n: row.get(n) for n in left.schema.attribute_names})
        if key not in right_keys:
            result.insert(row)
    return result


class NF2Algebra:
    """Facade bundling the NF² operations (mirrors :class:`RelationalAlgebra`)."""

    def nest(self, relation, attributes, into, name=None) -> NestedRelation:
        """ν — see :func:`nest`."""
        return nest(relation, attributes, into, name)

    def unnest(self, relation, attribute, name=None) -> NestedRelation:
        """μ — see :func:`unnest`."""
        return unnest(relation, attribute, name)

    def select(self, relation, predicate, name=None) -> NestedRelation:
        """σ — see :func:`nf2_select`."""
        return nf2_select(relation, predicate, name)

    def project(self, relation, attributes, name=None) -> NestedRelation:
        """π — see :func:`nf2_project`."""
        return nf2_project(relation, attributes, name)

    def union(self, left, right, name=None) -> NestedRelation:
        """∪ — see :func:`nf2_union`."""
        return nf2_union(left, right, name)

    def difference(self, left, right, name=None) -> NestedRelation:
        """− — see :func:`nf2_difference`."""
        return nf2_difference(left, right, name)
