"""Nested relations: relations with relation-valued attributes ([SS86]).

A :class:`NestedSchema` is a tree: every attribute is either *atomic* or a
*sub-relation* with its own nested schema.  A :class:`NestedRelation` stores
tuples whose sub-relation attributes hold (frozen) lists of nested tuples.
Rows are value-based: two rows with equal atomic values and equal (order-
insensitive) sub-relation contents are the same row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AlgebraError, SchemaError


@dataclass(frozen=True)
class NestedSchema:
    """Schema tree of a nested relation.

    ``atomic`` lists the flat attribute names; ``nested`` maps sub-relation
    attribute names to their own :class:`NestedSchema`.
    """

    atomic: Tuple[str, ...]
    nested: Tuple[Tuple[str, "NestedSchema"], ...] = ()

    def __post_init__(self) -> None:
        names = list(self.atomic) + [name for name, _ in self.nested]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in nested schema: {names!r}")

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """All top-level attribute names (atomic first, then nested)."""
        return self.atomic + tuple(name for name, _ in self.nested)

    def nested_schema(self, name: str) -> "NestedSchema":
        """Return the sub-schema of nested attribute *name*."""
        for nested_name, schema in self.nested:
            if nested_name == name:
                return schema
        raise AlgebraError(f"no nested attribute {name!r} in schema")

    def is_nested(self, name: str) -> bool:
        """``True`` when *name* is a relation-valued attribute."""
        return any(nested_name == name for nested_name, _ in self.nested)

    def is_flat(self) -> bool:
        """``True`` when the schema has no relation-valued attribute (1NF)."""
        return not self.nested

    def depth(self) -> int:
        """Nesting depth: 1 for a flat schema."""
        if not self.nested:
            return 1
        return 1 + max(schema.depth() for _, schema in self.nested)

    def with_atomic(self, names: Sequence[str]) -> "NestedSchema":
        """Return a copy whose atomic attributes are *names* (nested kept)."""
        return NestedSchema(tuple(names), self.nested)


def _freeze_value(value: object) -> object:
    """Recursively freeze a row value so rows can be hashed (lists become tuples)."""
    if isinstance(value, Mapping):
        return tuple(sorted((key, _freeze_value(val)) for key, val in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        frozen = tuple(_freeze_value(item) for item in value)
        if isinstance(value, (set, frozenset)):
            return frozenset(frozen)
        return frozenset(frozen) if _all_mappings(value) else frozen
    return value


def _all_mappings(value) -> bool:
    return bool(value) and all(isinstance(item, Mapping) for item in value)


class NestedRelation:
    """A named set of nested tuples over a :class:`NestedSchema`."""

    __slots__ = ("name", "schema", "_rows")

    def __init__(
        self,
        name: str,
        schema: NestedSchema,
        rows: Iterable[Mapping[str, object]] = (),
    ) -> None:
        self.name = name
        self.schema = schema
        self._rows: Dict[object, Dict[str, object]] = {}
        for row in rows:
            self.insert(row)

    def insert(self, row: Mapping[str, object]) -> bool:
        """Insert a nested tuple (set semantics); returns ``True`` when new."""
        unknown = set(row) - set(self.schema.attribute_names)
        if unknown:
            raise AlgebraError(
                f"nested tuple has attributes {sorted(unknown)!r} outside the schema"
            )
        normalized: Dict[str, object] = {}
        for attribute in self.schema.atomic:
            normalized[attribute] = row.get(attribute)
        for attribute, sub_schema in self.schema.nested:
            sub_rows = row.get(attribute, [])
            if not isinstance(sub_rows, (list, tuple)):
                raise AlgebraError(
                    f"nested attribute {attribute!r} expects a list of tuples"
                )
            normalized[attribute] = [dict(sub_row) for sub_row in sub_rows]
        key = _freeze_value(normalized)
        if key in self._rows:
            return False
        self._rows[key] = normalized
        return True

    @property
    def rows(self) -> Tuple[Dict[str, object], ...]:
        """All nested tuples (insertion order)."""
        return tuple(self._rows.values())

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self._rows.values())

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, Mapping):
            return False
        try:
            return _freeze_value({name: row.get(name) for name in self.schema.attribute_names}) in self._rows
        except TypeError:
            return False

    def flat_tuple_count(self) -> int:
        """Count the atomic tuples stored, recursing into sub-relations.

        Used to quantify the duplication NF² incurs when representing shared
        subobjects (each sharing parent stores its own copy).
        """

        def count_row(row: Mapping[str, object], schema: NestedSchema) -> int:
            total = 1
            for attribute, sub_schema in schema.nested:
                for sub_row in row.get(attribute, []):
                    total += count_row(sub_row, sub_schema)
            return total

        return sum(count_row(row, self.schema) for row in self._rows.values())

    def copy(self, name: Optional[str] = None) -> "NestedRelation":
        """Return a copy of the relation (rows deep-copied at the top level)."""
        return NestedRelation(name or self.name, self.schema, self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedRelation):
            return NotImplemented
        return self.schema == other.schema and set(self._rows) == set(other._rows)

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return (
            f"NestedRelation({self.name!r}, atomic={list(self.schema.atomic)!r}, "
            f"nested={[name for name, _ in self.schema.nested]!r}, rows={len(self)})"
        )
