"""The PRIMA-like two-layer engine: atom-oriented interface + molecule processing.

The engine mirrors the architecture the paper reports for the PRIMA prototype:

* the **basic component** (:meth:`PrimaEngine.atom_interface` methods:
  ``store_atom``, ``get_atom``, ``connect``, ``neighbours``, ``lookup``)
  provides an atom-oriented interface whose functionality corresponds to the
  atom-type algebra;
* the **molecule component** (:meth:`PrimaEngine.define_molecule_type`,
  :meth:`PrimaEngine.query`) performs molecule processing and exposes an MQL
  interface: statements are translated to logical plans, optimized by the
  rule-driven planner, and run on the streaming executor — which reuses the
  engine's secondary indexes and its cached atom network as access paths.

Internally the engine keeps one :class:`AtomStore` per atom type and one
:class:`LinkStore` per link type; :meth:`to_database` exports a consistent
:class:`~repro.core.database.Database` snapshot for the algebra layers.  The
snapshot, the atom network and the query interpreter are all cached together
and invalidated on every write.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.database import Database
from repro.core.link import Cardinality, Link, LinkType
from repro.core.molecule import MoleculeType, MoleculeTypeDescription
from repro.core.molecule_algebra import molecule_type_definition
from repro.exceptions import StorageError, UnknownNameError
from repro.storage.atom_store import AtomStore
from repro.storage.link_store import LinkStore
from repro.storage.network import AtomNetwork

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.mql.interpreter import MQLInterpreter, QueryResult
    from repro.optimizer.planner import PlanChoice


class PrimaEngine:
    """An in-memory, two-layer storage engine for MAD databases."""

    def __init__(self, name: str = "prima") -> None:
        self.name = name
        self._atom_stores: Dict[str, AtomStore] = {}
        self._link_stores: Dict[str, LinkStore] = {}
        self._cardinalities: Dict[str, Cardinality] = {}
        self._snapshot: Optional[Database] = None
        self._network: Optional[AtomNetwork] = None
        self._interpreter: Optional["MQLInterpreter"] = None

    # ------------------------------------------------------------------ DDL

    def create_atom_type(self, name: str, description) -> AtomStore:
        """Create an atom type (backed by an :class:`AtomStore`)."""
        if name in self._atom_stores or name in self._link_stores:
            raise StorageError(f"type name {name!r} already in use")
        store = AtomStore(name, description)
        self._atom_stores[name] = store
        self._invalidate()
        return store

    def create_link_type(
        self,
        name: str,
        first_type: str,
        second_type: str,
        cardinality: Cardinality = Cardinality.MANY_TO_MANY,
    ) -> LinkStore:
        """Create a link type (backed by a :class:`LinkStore`)."""
        if name in self._atom_stores or name in self._link_stores:
            raise StorageError(f"type name {name!r} already in use")
        for type_name in (first_type, second_type):
            if type_name not in self._atom_stores:
                raise UnknownNameError(f"unknown atom type {type_name!r}")
        store = LinkStore(name, first_type, second_type)
        self._link_stores[name] = store
        self._cardinalities[name] = cardinality
        self._invalidate()
        return store

    def create_index(self, atom_type_name: str, attribute: str) -> None:
        """Create a secondary index on ``atom_type_name.attribute``."""
        self._atom_store(atom_type_name).create_index(attribute)

    # --------------------------------------------- atom-oriented interface

    def store_atom(self, atom_type_name: str, identifier: Optional[str] = None, **values) -> Atom:
        """Insert (or replace) an atom — basic-component write operation."""
        atom = self._atom_store(atom_type_name).store(values, identifier=identifier)
        self._invalidate()
        return atom

    def get_atom(self, atom_type_name: str, identifier: str) -> Optional[Atom]:
        """Point lookup — basic-component read operation."""
        return self._atom_store(atom_type_name).get(identifier)

    def lookup(self, atom_type_name: str, attribute: str, value: object) -> Tuple[Atom, ...]:
        """Value lookup (indexed when possible) — basic-component read operation."""
        return self._atom_store(atom_type_name).lookup(attribute, value)

    def scan(self, atom_type_name: str) -> Tuple[Atom, ...]:
        """Full scan of one atom type."""
        return self._atom_store(atom_type_name).scan()

    def connect(self, link_type_name: str, first: "Atom | str", second: "Atom | str") -> Link:
        """Insert a link — basic-component write operation."""
        store = self._link_store(link_type_name)
        first_id = first.identifier if isinstance(first, Atom) else first
        second_id = second.identifier if isinstance(second, Atom) else second
        link = store.store(first_id, second_id)
        self._invalidate()
        return link

    def neighbours(self, link_type_name: str, identifier: str) -> Tuple[str, ...]:
        """Adjacent atom identifiers through one link type."""
        return tuple(self._link_store(link_type_name).neighbours(identifier))

    def delete_atom(self, atom_type_name: str, identifier: str) -> int:
        """Delete an atom and all its incident links; returns the links removed."""
        self._atom_store(atom_type_name).delete(identifier)
        removed = 0
        for store in self._link_stores.values():
            if atom_type_name in (store.first_type, store.second_type):
                removed += store.delete_atom(identifier)
        self._invalidate()
        return removed

    # --------------------------------------------- molecule-processing layer

    def to_database(self) -> Database:
        """Export a :class:`Database` snapshot of the current engine contents.

        The snapshot is cached and invalidated on every write, so repeated
        molecule queries over an unchanged engine reuse it.
        """
        if self._snapshot is not None:
            return self._snapshot
        db = Database(self.name)
        for store in self._atom_stores.values():
            atom_type = AtomType(store.atom_type_name, store.description)
            for atom in store:
                atom_type.add(atom)
            db.add_atom_type(atom_type)
        for store in self._link_stores.values():
            link_type = LinkType(
                store.link_type_name,
                store.first_type,
                store.second_type,
                cardinality=self._cardinalities.get(store.link_type_name, Cardinality.MANY_TO_MANY),
            )
            for link in store:
                first, second = link.given_order
                link_type.add(Link(store.link_type_name, first, second, store.first_type, store.second_type))
            db.add_link_type(link_type)
        self._snapshot = db
        return db

    def define_molecule_type(
        self,
        name: str,
        atom_type_names: "Sequence[str] | MoleculeTypeDescription",
        directed_links: Sequence = (),
    ) -> MoleculeType:
        """Molecule-type definition (α) over the engine's current contents."""
        return molecule_type_definition(self.to_database(), name, atom_type_names, directed_links)

    def query(self, statement: str, optimize: bool = True) -> "QueryResult":
        """Execute an MQL statement over the engine's current contents.

        Statements run through the planner → streaming-executor pipeline by
        default; ``optimize=False`` executes the literal α→Σ→Π translation
        through the materializing molecule algebra instead.
        """
        return self.interpreter().execute(statement, optimize=optimize)

    def plan(self, statement: str) -> "PlanChoice":
        """Return the planner's costed plan choice for *statement*.

        Mirrors :meth:`MQLInterpreter.plan`; for a rendered report execute an
        ``EXPLAIN`` statement through :meth:`query` instead.
        """
        return self.interpreter().plan(statement)

    def interpreter(self) -> "MQLInterpreter":
        """The cached MQL interpreter bound to the engine's access structures.

        The interpreter's executor answers pushed-down equality filters
        through hash indexes built (on demand, then cached) from the same
        snapshot it queries, and traverses the cached atom network during the
        hierarchical join.  All caches are invalidated on writes; the live
        store indexes are deliberately *not* shared, so an interpreter held
        across writes keeps consistent snapshot semantics.
        """
        if self._interpreter is None:
            from repro.engine.executor import Executor, IndexPool
            from repro.mql.interpreter import MQLInterpreter

            database = self.to_database()
            executor = Executor(
                database, indexes=IndexPool(database), network=self.network()
            )
            self._interpreter = MQLInterpreter(database, executor=executor)
        return self._interpreter

    def network(self) -> AtomNetwork:
        """Return the (cached) atom-network view of the current contents."""
        if self._network is None:
            self._network = AtomNetwork(self.to_database())
        return self._network

    # ------------------------------------------------------------- loading

    @classmethod
    def from_database(cls, database: Database, name: Optional[str] = None) -> "PrimaEngine":
        """Bulk-load an engine from an existing database."""
        engine = cls(name or database.name)
        for atom_type in database.atom_types:
            store = engine.create_atom_type(atom_type.name, atom_type.description)
            for atom in atom_type:
                store.store(atom)
        for link_type in database.link_types:
            store = engine.create_link_type(
                link_type.name, *link_type.atom_type_names, cardinality=link_type.cardinality
            )
            for link in link_type:
                first, second = link.given_order
                store.store(first, second)
        engine._invalidate()
        return engine

    # ------------------------------------------------------------ statistics

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Read/write counters per store (used by the storage tests and benches)."""
        return {
            "atoms": {name: len(store) for name, store in self._atom_stores.items()},
            "links": {name: len(store) for name, store in self._link_stores.items()},
            "reads": {
                name: store.reads
                for name, store in {**self._atom_stores, **self._link_stores}.items()
            },
            "writes": {
                name: store.writes
                for name, store in {**self._atom_stores, **self._link_stores}.items()
            },
        }

    # ---------------------------------------------------------------- helpers

    def _atom_store(self, name: str) -> AtomStore:
        try:
            return self._atom_stores[name]
        except KeyError as exc:
            raise UnknownNameError(f"unknown atom type {name!r}") from exc

    def _link_store(self, name: str) -> LinkStore:
        try:
            return self._link_stores[name]
        except KeyError as exc:
            raise UnknownNameError(f"unknown link type {name!r}") from exc

    def _invalidate(self) -> None:
        self._snapshot = None
        self._network = None
        self._interpreter = None

    def __repr__(self) -> str:
        return (
            f"PrimaEngine({self.name!r}, atom_types={len(self._atom_stores)}, "
            f"link_types={len(self._link_stores)})"
        )
