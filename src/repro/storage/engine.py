"""The PRIMA-like two-layer engine: atom-oriented interface + molecule processing.

The engine mirrors the architecture the paper reports for the PRIMA prototype:

* the **basic component** (:meth:`PrimaEngine.atom_interface` methods:
  ``store_atom``, ``get_atom``, ``connect``, ``neighbours``, ``lookup``)
  provides an atom-oriented interface whose functionality corresponds to the
  atom-type algebra;
* the **molecule component** (:meth:`PrimaEngine.define_molecule_type`,
  :meth:`PrimaEngine.query`) performs molecule processing and exposes an MQL
  interface: statements are translated to logical plans, optimized by the
  rule-driven planner, and run on the streaming executor — which reuses the
  engine's secondary indexes and its cached atom network as access paths.
  MQL DML statements (INSERT / DELETE / MODIFY) run through the same
  pipeline: the write plan mutates the snapshot database atomically, and the
  engine mirrors every change back into its stores.

Internally the engine keeps one :class:`AtomStore` per atom type and one
:class:`LinkStore` per link type; :meth:`to_database` exports a consistent
:class:`~repro.core.database.Database` snapshot for the algebra layers.

**Cache maintenance.**  The snapshot, the atom network, the hash-index pool
and the planner statistics are cached together and — in the default
``incremental`` mode — maintained *in place* on every write: the engine
subscribes to the snapshot's change events and folds each atom/link delta
into the cached structures, bumping a :attr:`generation` counter that the
executor's index pool is stamped with (a pool whose generation matches the
engine's is coherent by construction).  The ``rebuild`` mode restores the
historical invalidate-everything behaviour — every write discards all caches
and the next read rebuilds them from the stores; the mixed-workload benchmark
compares the two.

**Durability.**  With ``durability=DurabilityConfig(directory)`` the engine
opens (and crash-recovers) a write-ahead log on construction: change events
are buffered per transaction and appended as one checksummed commit record
when the transaction commits — atomically with the MVCC commit-log entry —
so recovery (:mod:`repro.storage.recovery`) is pure redo of the committed
prefix.  :meth:`PrimaEngine.checkpoint` (or MQL ``CHECKPOINT``) writes a
compact catalog + occurrence image and truncates the log.
"""

from __future__ import annotations

import os
import threading

from repro.analysis.runtime import make_lock, make_rlock
from repro.analysis.runtime import checker_report as runtime_lock_report
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.database import Database
from repro.core.events import (
    ATOM_DELETED,
    ATOM_INSERTED,
    ATOM_MODIFIED,
    LINK_CONNECTED,
    LINK_DISCONNECTED,
    ChangeEvent,
    Listener,
)
from repro.core.link import Cardinality, Link, LinkType
from repro.core.molecule import MoleculeType, MoleculeTypeDescription
from repro.core.molecule_algebra import molecule_type_definition
from repro.core.versions import Snapshot
from repro.exceptions import StorageError, UnknownNameError
from repro.storage.atom_store import AtomStore
from repro.storage.link_store import LinkStore
from repro.storage.network import AtomNetwork
from repro.storage.recovery import RecoveryResult, describe_attributes, recover
from repro.storage.columnar import ColumnarStore
from repro.storage.structure_index import StructureIndexStore
from repro.storage.wal import DurabilityConfig, WriteAheadLog, encode_event

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.engine.physical import IndexPool
    from repro.mql.interpreter import MQLInterpreter, QueryResult
    from repro.optimizer.planner import PlanChoice

#: The two cache-maintenance strategies.
INCREMENTAL = "incremental"
REBUILD = "rebuild"

#: MVCC statistics reported while no snapshot (and hence no version clock) exists.
NO_VERSION_STATISTICS: Dict[str, object] = {
    "versions_live": 0,
    "versions_collected": 0,
    "oldest_pinned_generation": None,
    "pins_active": 0,
}


class PrimaEngine:
    """An in-memory, two-layer storage engine for MAD databases.

    *maintenance* selects the cache strategy: ``"incremental"`` (default)
    folds every write into the cached snapshot, atom network, hash indexes
    and planner statistics; ``"rebuild"`` invalidates everything on each
    write and rebuilds lazily — the pre-write-pipeline behaviour, kept as
    the benchmark baseline.

    *durability* (a :class:`~repro.storage.wal.DurabilityConfig`) makes the
    engine persistent: construction recovers the directory's checkpoint and
    write-ahead log (redo of committed transactions only), then opens the
    log for appending.  Every DDL statement and every committed transaction
    is logged; :meth:`checkpoint` writes a snapshot image and truncates the
    log.  Without *durability* the engine is purely in-memory, as before.
    """

    def __init__(
        self,
        name: str = "prima",
        maintenance: str = INCREMENTAL,
        durability: Optional[DurabilityConfig] = None,
    ) -> None:
        if maintenance not in (INCREMENTAL, REBUILD):
            raise StorageError(
                f"unknown maintenance mode {maintenance!r}; use 'incremental' or 'rebuild'"
            )
        self.name = name
        self.maintenance = maintenance
        self._atom_stores: Dict[str, AtomStore] = {}
        self._link_stores: Dict[str, LinkStore] = {}
        self._cardinalities: Dict[str, Cardinality] = {}
        self._snapshot: Optional[Database] = None
        self._network: Optional[AtomNetwork] = None
        self._interpreter: Optional["MQLInterpreter"] = None
        self._index_pool: Optional["IndexPool"] = None
        self._dirty = False
        #: Serializes basic-interface writes (store_atom/connect/delete_atom)
        #: and checkpoints against each other.
        self._write_lock = make_rlock("PrimaEngine._write_lock")
        #: Guards lazy construction/teardown of the cached access structures
        #: (snapshot, network, interpreter, index pool).
        self._cache_lock = make_rlock("PrimaEngine._cache_lock")
        #: The event path's lock: generation counter, stats, WAL routing,
        #: store mirror and incremental cache maintenance fold one event at
        #: a time.  Acquired *inside* the per-type head locks; only ever
        #: acquires the true leaves below it — the interpreter's plan lock
        #: and the WAL's lock (see DESIGN.md "Threading model").
        self._event_lock = make_rlock("PrimaEngine._event_lock")
        #: Per-thread mirror state: the ``_mirror`` guard flag and the
        #: direct-write WAL buffer belong to the thread driving the write.
        self._tls = threading.local()
        #: Monotonic write generation; cached access structures are stamped
        #: with the generation they are coherent with.
        self.generation = 0
        self._stats: Dict[str, int] = {
            "snapshot_builds": 0,
            "network_builds": 0,
            "interpreter_builds": 0,
            "invalidations": 0,
            "events_applied": 0,
        }
        #: Interval-encoded structure indexes over recursive link closures
        #: (``CREATE STRUCTURE INDEX``).  The store outlives cache
        #: invalidation — registrations and counters persist; only the
        #: encodings are marked stale.  Created before recovery runs, which
        #: may replay ``structure_index`` DDL records into it.
        self._structure_indexes = StructureIndexStore()
        #: Columnar attribute projections backing MQL aggregate scans.  Like
        #: the structure-index store it outlives cache invalidation: the
        #: arrays are merely marked stale and rebuilt lazily on next head use.
        self._columnar = ColumnarStore()
        # -- durability state (all inert when durability is None) -----------
        self._durability = durability
        self._wal: Optional[WriteAheadLog] = None
        #: Change events buffered per active transaction (keyed by ``id``);
        #: flushed as one commit record when the transaction commits,
        #: discarded when it rolls back — redo-only logging.  (Each entry is
        #: appended and flushed by the one thread driving that transaction.)
        self._wal_tx_pending: Dict[int, List[Dict[str, object]]] = {}
        self._recovery: Optional[RecoveryResult] = None
        self._checkpoints = 0
        #: Lazily created pool of checkpoint-seeded worker processes
        #: (:meth:`process_pool`); ``None`` until first use and for
        #: in-memory engines.
        self._procpool = None  # guarded-by: PrimaEngine._cache_lock
        #: Lazily created replication hub (:meth:`replication_hub`);
        #: ``None`` until first use and for in-memory engines.
        self._replication = None  # guarded-by: PrimaEngine._cache_lock
        #: ``True`` once :meth:`fence` ran (a follower was promoted over
        #: this engine): every write — basic interface, DDL, transactions —
        #: is refused from then on.
        self._fenced = False  # guarded-by: PrimaEngine._write_lock
        if durability is not None:
            # Recovery runs before the WAL opens for appending, so nothing
            # replayed here is ever re-logged.
            self._recovery = recover(self, durability)
            factory = durability.wal_factory or WriteAheadLog
            self._wal = factory(
                durability.wal_path,
                fsync=durability.fsync,
                group_commit=durability.group_commit,
            )

    # ------------------------------------------------------------------ DDL

    def create_atom_type(self, name: str, description) -> AtomStore:
        """Create an atom type (backed by an :class:`AtomStore`)."""
        self._require_unfenced()
        if name in self._atom_stores or name in self._link_stores:
            raise StorageError(f"type name {name!r} already in use")
        store = AtomStore(name, description)
        self._atom_stores[name] = store
        self._invalidate()
        if self._wal is not None:
            self._wal.append_ddl(
                {
                    "op": "atom_type",
                    "name": name,
                    "attributes": describe_attributes(store.description),
                }
            )
        return store

    def create_link_type(
        self,
        name: str,
        first_type: str,
        second_type: str,
        cardinality: Cardinality = Cardinality.MANY_TO_MANY,
    ) -> LinkStore:
        """Create a link type (backed by a :class:`LinkStore`)."""
        self._require_unfenced()
        if name in self._atom_stores or name in self._link_stores:
            raise StorageError(f"type name {name!r} already in use")
        for type_name in (first_type, second_type):
            if type_name not in self._atom_stores:
                raise UnknownNameError(f"unknown atom type {type_name!r}")
        store = LinkStore(name, first_type, second_type)
        self._link_stores[name] = store
        self._cardinalities[name] = cardinality
        self._invalidate()
        if self._wal is not None:
            self._wal.append_ddl(
                {
                    "op": "link_type",
                    "name": name,
                    "first": first_type,
                    "second": second_type,
                    "cardinality": cardinality.value,
                }
            )
        return store

    def create_index(self, atom_type_name: str, attribute: str) -> None:
        """Create a secondary index on ``atom_type_name.attribute``."""
        self._require_unfenced()
        self._atom_store(atom_type_name).create_index(attribute)
        if self._wal is not None:
            self._wal.append_ddl(
                {"op": "index", "type": atom_type_name, "attribute": attribute}
            )

    def create_structure_index(
        self, atom_type_name: str, link_type_name: str, direction: str = "down"
    ) -> None:
        """Register an interval-encoded structure index over a recursive closure.

        Recursive queries over ``atom_type_name`` via ``link_type_name`` in
        *direction* (``"down"`` follows the link's first→second orientation,
        ``"up"`` the reverse) are then answered by interval range scans (or a
        compact-adjacency sweep on non-tree networks) instead of the
        hop-by-hop fixpoint loop.  The encoding is built lazily on first use
        and maintained incrementally off the change-event stream.
        """
        self._require_unfenced()
        self._atom_store(atom_type_name)  # existence check
        link_store = self._link_stores.get(link_type_name)
        if link_store is None:
            raise UnknownNameError(f"unknown link type {link_type_name!r}")
        if atom_type_name not in (link_store.first_type, link_store.second_type):
            raise StorageError(
                f"link type {link_type_name!r} does not connect atom type "
                f"{atom_type_name!r}"
            )
        self._structure_indexes.register(atom_type_name, link_type_name, direction)
        if self._wal is not None:
            self._wal.append_ddl(
                {
                    "op": "structure_index",
                    "type": atom_type_name,
                    "link": link_type_name,
                    "direction": direction,
                }
            )

    def set_columnar(self, enabled: bool) -> None:
        """Switch the columnar aggregation path on or off.

        Disabled, every aggregate runs on the row operators (hash/sorted-group
        over the molecule scan) — the benchmark baseline and an escape hatch;
        the projections and their counters are kept, not dropped.
        """
        self._columnar.enabled = bool(enabled)

    # --------------------------------------------- atom-oriented interface

    def store_atom(self, atom_type_name: str, identifier: Optional[str] = None, **values) -> Atom:
        """Insert (or replace) an atom — basic-component write operation.

        Basic-interface writes serialize on the engine's write lock so the
        store mutation, the snapshot mirror and the WAL record form one
        atomic operation even when several threads auto-commit concurrently.
        """
        with self._write_lock:
            self._require_unfenced()
            store = self._atom_store(atom_type_name)
            with self._event_lock:
                # Store mutations share the event lock with the transactional
                # mirror path (_mirror_to_stores), so multi-step store
                # updates (dict + hash indexes) never interleave.
                atom = store.store(values, identifier=identifier)
            snapshot = self._maintainable()
            if snapshot is not None:
                with self._mirror():
                    atom_type = snapshot.atyp(atom_type_name)
                    if atom_type.get(atom.identifier) is None:
                        atom_type.add(atom)
                    else:
                        atom_type.replace(atom)
            else:
                self._after_write()
                self._wal_direct(
                    [
                        encode_event(
                            ChangeEvent(
                                ATOM_INSERTED,
                                atom_type_name,
                                atom=atom,
                                generation=self.generation,
                            )
                        )
                    ]
                )
            return atom

    def get_atom(self, atom_type_name: str, identifier: str) -> Optional[Atom]:
        """Point lookup — basic-component read operation."""
        return self._atom_store(atom_type_name).get(identifier)

    def lookup(self, atom_type_name: str, attribute: str, value: object) -> Tuple[Atom, ...]:
        """Value lookup (indexed when possible) — basic-component read operation."""
        return self._atom_store(atom_type_name).lookup(attribute, value)

    def scan(self, atom_type_name: str) -> Tuple[Atom, ...]:
        """Full scan of one atom type."""
        return self._atom_store(atom_type_name).scan()

    def connect(self, link_type_name: str, first: "Atom | str", second: "Atom | str") -> Link:
        """Insert a link — basic-component write operation.

        Cardinality restrictions live on the snapshot's link types, not the
        stores; when the mirror rejects the link the store write is undone
        before re-raising, so store and snapshot can never diverge.
        """
        with self._write_lock:
            self._require_unfenced()
            store = self._link_store(link_type_name)
            first_id = first.identifier if isinstance(first, Atom) else first
            second_id = second.identifier if isinstance(second, Atom) else second
            probe = Link(link_type_name, first_id, second_id, store.first_type, store.second_type)
            existed = probe in store
            with self._event_lock:
                link = store.store(first_id, second_id)
            snapshot = self._maintainable()
            if snapshot is not None:
                try:
                    with self._mirror():
                        snapshot.ltyp(link_type_name).connect(first_id, second_id)
                except Exception:
                    if not existed:
                        with self._event_lock:
                            store.delete(link)
                    raise
            else:
                self._after_write()
                self._wal_direct(
                    [
                        encode_event(
                            ChangeEvent(
                                LINK_CONNECTED,
                                link_type_name,
                                link=link,
                                generation=self.generation,
                            )
                        )
                    ]
                )
            return link

    def neighbours(self, link_type_name: str, identifier: str) -> Tuple[str, ...]:
        """Adjacent atom identifiers through one link type."""
        return tuple(self._link_store(link_type_name).neighbours(identifier))

    def delete_atom(self, atom_type_name: str, identifier: str) -> int:
        """Delete an atom and all its incident links; returns the links removed."""
        with self._write_lock:
            self._require_unfenced()
            return self._delete_atom_locked(atom_type_name, identifier)

    def _delete_atom_locked(self, atom_type_name: str, identifier: str) -> int:
        snapshot = self._maintainable()
        removed_links: List[Tuple[str, Link]] = []
        if self._wal is not None and snapshot is None:
            # The incident links must be captured before the stores drop them;
            # in the maintainable path the snapshot mirror emits one event per
            # removal instead.
            for link_store in self._link_stores.values():
                if atom_type_name in (link_store.first_type, link_store.second_type):
                    removed_links.extend(
                        (link_store.link_type_name, link)
                        for link in link_store.links_of(identifier)
                    )
        with self._event_lock:
            removed_atom = self._atom_store(atom_type_name).delete(identifier)
            removed = 0
            for store in self._link_stores.values():
                if atom_type_name in (store.first_type, store.second_type):
                    removed += store.delete_atom(identifier)
        if snapshot is not None:
            with self._mirror():
                for link_type in snapshot.link_types_of(atom_type_name):
                    link_type.remove_atom(identifier)
                atom_type = snapshot.atyp(atom_type_name)
                if atom_type.get(identifier) is not None:
                    atom_type.remove(identifier)
        else:
            self._after_write()
            records = [
                encode_event(
                    ChangeEvent(
                        LINK_DISCONNECTED,
                        link_type_name,
                        link=link,
                        generation=self.generation,
                    )
                )
                for link_type_name, link in removed_links
            ]
            records.append(
                encode_event(
                    ChangeEvent(
                        ATOM_DELETED,
                        atom_type_name,
                        atom=removed_atom,
                        generation=self.generation,
                    )
                )
            )
            self._wal_direct(records)
        return removed

    # --------------------------------------------- molecule-processing layer

    def to_database(self) -> Database:
        """Export a :class:`Database` snapshot of the current engine contents.

        The snapshot is cached; in incremental mode it is maintained in place
        across writes (the engine subscribes to its change events), so
        repeated molecule queries over a mutating engine never re-export.
        Mutations applied directly to the snapshot — e.g. by MQL DML write
        plans or the manipulation API — are mirrored back into the stores.
        """
        with self._cache_lock:
            return self._to_database_locked()

    def _to_database_locked(self) -> Database:
        self._check_dirty()
        if self._snapshot is not None:
            return self._snapshot
        db = Database(self.name)
        for store in self._atom_stores.values():
            atom_type = AtomType(store.atom_type_name, store.description)
            for atom in store:
                atom_type.add(atom)
            db.add_atom_type(atom_type)
        for store in self._link_stores.values():
            link_type = LinkType(
                store.link_type_name,
                store.first_type,
                store.second_type,
                cardinality=self._cardinalities.get(store.link_type_name, Cardinality.MANY_TO_MANY),
            )
            for link in store:
                first, second = link.given_order
                link_type.add(Link(store.link_type_name, first, second, store.first_type, store.second_type))
            db.add_link_type(link_type)
        db.subscribe(self._listener_for(db))
        # The snapshot carries the MVCC state: its version clock continues
        # the engine's write generation, so event stamps and the engine's
        # counter stay in lock-step.
        state = db.enable_versioning(start_generation=self.generation)
        # A fence outlives cache invalidation: rebuilt snapshots carry it so
        # transactions on them keep refusing after the caches turn over.
        state.fenced = self._fenced
        if self._durability is not None:
            # The WAL flushes a transaction's buffered events when it commits
            # (and discards them when it rolls back); the hook fires inside
            # Transaction.commit, right after the MVCC commit-log append.
            state.transaction_hooks.append(self._wal_transaction_finished)
        self._snapshot = db
        self._stats["snapshot_builds"] += 1
        return db

    def define_molecule_type(
        self,
        name: str,
        atom_type_names: "Sequence[str] | MoleculeTypeDescription",
        directed_links: Sequence = (),
    ) -> MoleculeType:
        """Molecule-type definition (α) over the engine's current contents."""
        return molecule_type_definition(self.to_database(), name, atom_type_names, directed_links)

    def query(self, statement: str, optimize: bool = True) -> "QueryResult":
        """Execute an MQL statement over the engine's current contents.

        Statements run through the planner → streaming-executor pipeline by
        default; ``optimize=False`` executes the literal α→Σ→Π translation
        through the materializing molecule algebra instead.  DML statements
        (INSERT / DELETE / MODIFY) execute atomically against the snapshot;
        every change is mirrored into the stores and folded into the cached
        access structures.  ``BEGIN WORK`` / ``COMMIT WORK`` / ``ROLLBACK
        WORK`` scope the engine's interpreter session as one transaction with
        repeatable reads and first-committer-wins conflict detection; for
        pinned read-only views see :meth:`snapshot_at`.
        """
        return self.interpreter().execute(statement, optimize=optimize)

    def plan(self, statement: str) -> "PlanChoice":
        """Return the planner's costed plan choice for *statement*.

        Mirrors :meth:`MQLInterpreter.plan`; for a rendered report execute an
        ``EXPLAIN`` statement through :meth:`query` instead.
        """
        return self.interpreter().plan(statement)

    def interpreter(self) -> "MQLInterpreter":
        """The cached MQL interpreter bound to the engine's access structures.

        The interpreter's executor answers pushed-down equality filters
        through hash indexes built (on demand, then cached) from the same
        snapshot it queries, and traverses the cached atom network during the
        hierarchical join.  In incremental mode writes are folded into those
        structures in place; in rebuild mode any write discards them and this
        method rebuilds everything on its next call.
        """
        with self._cache_lock:
            self._check_dirty()
            if self._interpreter is None:
                from repro.engine.executor import Executor, IndexPool
                from repro.mql.interpreter import MQLInterpreter

                database = self.to_database()
                self._index_pool = IndexPool(database)
                self._index_pool.generation = self.generation
                self._structure_indexes.stamp(self.generation)
                self._columnar.stamp(self.generation)
                executor = Executor(
                    database,
                    indexes=self._index_pool,
                    network=self.network(),
                    structure=self._structure_indexes,
                    columnar=self._columnar,
                )
                from repro.optimizer.planner import Planner

                planner = Planner(database, executor=executor)
                # EXPLAIN reports whether the costed plan is worth shipping
                # to the process pool; the advisor reads the live pool state
                # (None while no pool exists — dispatch stays unreported).
                planner.dispatch_advisor = self._dispatch_state
                self._interpreter = MQLInterpreter(
                    database,
                    executor=executor,
                    planner=planner,
                    checkpoint=self.checkpoint if self._durability is not None else None,
                )
                self._stats["interpreter_builds"] += 1
            return self._interpreter

    def network(self) -> AtomNetwork:
        """Return the (cached, incrementally maintained) atom-network view."""
        with self._cache_lock:
            self._check_dirty()
            if self._network is None:
                self._network = AtomNetwork(self.to_database())
                self._network.generation = self.generation
                self._stats["network_builds"] += 1
            return self._network

    # --------------------------------------------------- snapshots and MVCC

    def snapshot_at(self, generation: Optional[int] = None) -> "SnapshotHandle":
        """Pin a generation and return a handle for repeatable reads.

        The handle's :meth:`SnapshotHandle.query` runs MQL against the
        pinned generation: concurrent committed DML (through this engine or
        any transaction on its snapshot) is invisible until the handle is
        released, while a fresh ``engine.query`` continues to see the head.
        Pinning is refcounted; releasing the last pin on a generation lets
        the garbage collector truncate the version chains behind it.

        *generation* defaults to the current write generation, resolved
        atomically inside the pin registry's lock (a concurrent writer
        cannot slip a tick between the read and the pin).  Pinning an older
        generation is allowed only down to the retention floor — the
        truncation horizon while other pins/transactions hold history —
        below it the registry refuses the pin rather than serve stale reads.

        Safe to call from any thread; the returned handle's reads are safe
        from any thread too (see :class:`SnapshotHandle`).
        """
        database = self.to_database()
        interpreter = self.interpreter()
        state = database.versioning
        with state.lock:
            # Pin and snapshot-build form one critical section: a writer
            # finishing (e.g. rolling back) in between would otherwise leave
            # the exclusion set without its uncommitted generations and leak
            # dirty values into the handle.
            pinned = database.pin(generation)
            snapshot = state.make_snapshot(pinned)
        return SnapshotHandle(database, interpreter, snapshot)

    def parallel_query(
        self,
        statements: "Iterable[str]",
        threads: Optional[int] = None,
        generation: Optional[int] = None,
        mode: str = "thread",
        workers: Optional[int] = None,
        max_lag: int = 0,
    ) -> "List[QueryResult]":
        """Run read-only MQL statements concurrently at one pinned generation.

        Pins a single snapshot (like :meth:`snapshot_at`), executes every
        statement through a worker-thread pool against that pinned
        generation, and returns the results **in statement order** —
        byte-identical to running the same statements serially on the same
        snapshot, no matter how much committed DML races at the head.
        Readers run lock-free over the immutable version chains; only the
        plan step serializes briefly on the interpreter's planner lock.

        *threads* defaults to ``min(len(statements), 4)``; ``threads=1``
        degrades to a serial loop over the same pinned handle (the E-PERF7
        benchmark's baseline).  DML and transaction statements are rejected
        by the underlying read-only snapshot handle.

        Note: under CPython's GIL the pure-Python execute phase of the
        statements is time-sliced, not parallel — the thread pool buys
        wall-clock when requests spend time off the GIL (client wire I/O,
        durable reads, checksum/compression of results), which is what the
        E-PERF7 benchmark measures.

        ``mode="process"`` instead ships each statement's compiled plan to
        the checkpoint-seeded worker-process pool (:meth:`process_pool`),
        executing CPU-bound plans off-GIL on *workers* processes.  Results
        keep statement order and render byte-identical ``to_dicts()``
        content; statements the shipping codec refuses (opaque predicates,
        EXPLAIN, DML — which still raises) fall back to primary-side
        execution at the same pinned generation.  ``mode="serial"`` is the
        explicit one-thread baseline.

        ``mode="replica"`` routes read statements over the replication
        hub's followers (:meth:`create_follower`) instead.  *max_lag*
        bounds staleness in generations: a follower within the bound
        serves at its own applied generation; one lagging further is
        caught up (the hub ships the missing feed slice) before it serves;
        one *ahead* of the pin is skipped — a follower cannot rewind.
        With the default ``max_lag=0`` every routed follower answers
        exactly at the pinned generation, byte-identical to primary
        execution.  Unshippable statements (EXPLAIN, DML — which still
        raises — and anything unparseable) and statements no follower can
        serve fall back to the primary at the same pinned generation.
        """
        statements = list(statements)
        if not statements:
            return []
        if mode == "process":
            return self._parallel_query_process(statements, generation, workers)
        if mode == "replica":
            return self._parallel_query_replica(statements, generation, max_lag)
        if mode == "serial":
            threads = 1
        elif mode != "thread":
            raise StorageError(
                f"unknown parallel_query mode {mode!r}; use 'thread', "
                "'process', 'replica' or 'serial'"
            )
        if threads is None:
            threads = min(len(statements), 4)
        with self.snapshot_at(generation) as handle:
            if threads <= 1:
                return [handle.query(statement) for statement in statements]
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=threads) as pool:
                return list(pool.map(handle.query, statements))

    def process_pool(self, workers: Optional[int] = None):
        """The engine's pool of checkpoint-seeded worker processes (lazy).

        Requires durability: workers seed by loading the checkpoint image
        and replaying the WAL tail, then track the primary through
        incremental record shipping (see :mod:`repro.engine.procpool`).
        *workers* sizes the pool on first creation (default
        ``min(4, cpu count)``); later calls return the existing pool.
        """
        if self._durability is None:
            raise StorageError(
                "process_pool requires a durable engine; construct it with "
                "durability=DurabilityConfig(directory)"
            )
        with self._cache_lock:
            if self._procpool is None:
                from repro.engine.procpool import ProcessPool

                size = workers or max(1, min(4, os.cpu_count() or 1))
                self._procpool = ProcessPool(self, size)
            return self._procpool

    def _dispatch_state(self) -> "Optional[Dict[str, int]]":
        """Live pool + replica telemetry for the planner's dispatch costing.

        Merges the process pool's ``{"workers", "backlog"}`` with the
        replication hub's ``{"replicas", "replica_lag"}``; ``None`` while
        neither exists (dispatch stays unreported in EXPLAIN).
        """
        pool = self._procpool
        hub = self._replication
        if pool is None and hub is None:
            return None
        state: Dict[str, int] = {}
        if pool is not None:
            state.update(pool.dispatch_state())
        if hub is not None:
            state.update(hub.dispatch_state())
        return state

    # --------------------------------------------------------- replication

    def replication_hub(self):
        """The engine's replication hub (lazy; durable engines only).

        The hub taps the WAL into an in-memory record feed and owns the
        followers it ships to (see :mod:`repro.storage.replication`).
        """
        if self._durability is None:
            raise StorageError(
                "replication requires a durable engine; construct it with "
                "durability=DurabilityConfig(directory)"
            )
        with self._cache_lock:
            if self._replication is None:
                from repro.storage.replication import ReplicationHub

                self._replication = ReplicationHub(self)
            return self._replication

    def create_follower(self, name: Optional[str] = None):
        """Seed a new in-process follower tracking this engine's WAL feed.

        Shorthand for ``engine.replication_hub().create_follower(name)``.
        The follower serves snapshot reads at its applied generation; the
        replica router (``parallel_query(mode="replica")``) fans read
        statements over all followers created this way.
        """
        return self.replication_hub().create_follower(name)

    def fence(self) -> None:
        """Refuse every future write — the promotion protocol's first step.

        Takes the write lock (draining in-flight basic-interface writers)
        and the versioning engine lock (draining racing committers) before
        flipping the flag, so after :meth:`fence` returns no record can
        ever reach the WAL again: basic-interface writes and DDL raise
        :class:`StorageError`, new transactions refuse to begin, and
        in-flight transactions abort at their commit point.  Reads (and
        :meth:`checkpoint`) keep working.  Idempotent.
        """
        with self._write_lock:
            snapshot = self._snapshot
            state = snapshot.versioning if snapshot is not None else None
            if state is not None:
                with state.lock:
                    self._fenced = True
                    state.fenced = True
            else:
                # No snapshot exists; _to_database_locked propagates the
                # flag into the next one it builds.
                self._fenced = True

    @property
    def fenced(self) -> bool:
        """``True`` once a follower promotion fenced this engine."""
        return self._fenced

    def _require_unfenced(self) -> None:
        if self._fenced:
            raise StorageError(
                "engine is fenced (a follower was promoted); writes must go "
                "to the promoted engine"
            )

    def _parallel_query_process(
        self,
        statements: "List[str]",
        generation: Optional[int],
        workers: Optional[int],
    ) -> "List[QueryResult]":
        """Fan statements out over the worker-process pool at one pin.

        The pin and the feed cut are taken inside the versioning engine
        lock, the same critical section transactional commits append their
        WAL record in — a commit is therefore either visible at the pin
        *and* included in the cut, or neither.  (Non-transactional direct
        store writes flush their record outside that lock; interleaving one
        with the pin can put the cut one record past the pin, which only
        matters if the caller races direct writes against the dispatch.)
        """
        from concurrent.futures import ThreadPoolExecutor

        from repro.engine.logical import (
            AggregatePlan,
            ColumnarAggregatePlan,
            IntervalScanPlan,
            RecursivePlan,
        )
        from repro.engine.physical import (
            aggregate_columns,
            finalize_groups,
            merge_group_accumulators,
        )
        from repro.storage.shipping import (
            ShippedQueryResult,
            ShippingError,
            decode_group_states,
            plan_to_json,
        )
        from repro.mql.ast_nodes import Query, SetOperation
        from repro.mql.parser import parse

        pool = self.process_pool(workers)
        pool.counters["dispatches"] += 1
        interpreter = self.interpreter()
        database = self.to_database()
        state = database.versioning
        with state.lock:
            pinned = database.pin(generation)
            snapshot = state.make_snapshot(pinned)
            cut_seq = pool.feed_position()
        handle = SnapshotHandle(database, interpreter, snapshot)
        try:
            pin_gen = handle.generation
            # ---- classify: build one shippable job per statement, or None.
            jobs: "List[Optional[Dict[str, object]]]" = []
            plans: "List[Optional[object]]" = []
            for statement in statements:
                job = None
                plan = None
                try:
                    ast = parse(statement)
                    if isinstance(ast, (Query, SetOperation)):
                        choice = interpreter.plan(ast)
                        plan = choice.best
                        aggregate = isinstance(
                            plan, (AggregatePlan, ColumnarAggregatePlan)
                        )
                        job = {
                            "plan": plan_to_json(plan),
                            "pin": pin_gen,
                            "mode": "rows" if aggregate else "molecules",
                            "partition": None,
                        }
                except ShippingError:
                    job = None
                except Exception:
                    # Unparseable / untranslatable statements fall through to
                    # handle.query, which raises the proper MQL error.
                    job = None
                jobs.append(job)
                plans.append(plan)

            results: "List[Optional[QueryResult]]" = [None] * len(statements)

            # ---- intra-query partitioning: one statement, many workers.
            partitionable = (
                len(statements) == 1
                and jobs[0] is not None
                and pool.size >= 2
                and isinstance(
                    plans[0], (RecursivePlan, IntervalScanPlan, ColumnarAggregatePlan)
                )
            )
            if partitionable:
                plan = plans[0]
                count = pool.size
                grouped = isinstance(plan, ColumnarAggregatePlan)
                part_jobs = []
                for index in range(count):
                    job = dict(jobs[0])
                    job["partition"] = [index, count]
                    if grouped:
                        job["mode"] = "groups"
                    part_jobs.append(job)
                with ThreadPoolExecutor(max_workers=count) as fanout:
                    futures = [
                        fanout.submit(pool.run_batch, index, pin_gen, cut_seq, [(0, job)])
                        for index, job in enumerate(part_jobs)
                    ]
                    outcomes = [future.result()[0] for future in futures]
                if all(outcome[0] == "result" for outcome in outcomes):
                    pool.counters["partitioned"] += 1
                    if grouped:
                        specs = plan.aggregates
                        merged: Dict = {}
                        total_counters: Dict[str, int] = {}
                        for outcome in outcomes:
                            payload = outcome[1]
                            partial = decode_group_states(specs, payload["groups"])
                            merge_group_accumulators(specs, merged, partial)
                            for key, value in payload.get("counters", {}).items():
                                total_counters[key] = total_counters.get(key, 0) + value
                        rows = tuple(
                            tuple(row)
                            for row in finalize_groups(plan.group_by, specs, merged)
                        )
                        results[0] = ShippedQueryResult(
                            statements[0],
                            columns=aggregate_columns(plan.group_by, specs),
                            rows=rows,
                            counters=total_counters,
                            dispatch="process-partitioned",
                        )
                    else:
                        import json as _json

                        dicts = []
                        total_counters = {}
                        for outcome in outcomes:
                            payload = outcome[1]
                            from repro.storage.wal import decode_value

                            dicts.extend(
                                decode_value(entry) for entry in payload["dicts"]
                            )
                            for key, value in payload.get("counters", {}).items():
                                total_counters[key] = total_counters.get(key, 0) + value
                        # Partitions interleave arbitrarily: impose the
                        # canonical rendering order so the merged result is
                        # deterministic regardless of worker scheduling.
                        dicts.sort(
                            key=lambda entry: _json.dumps(
                                entry, sort_keys=True, default=str
                            )
                        )
                        results[0] = ShippedQueryResult(
                            statements[0],
                            dicts=dicts,
                            counters=total_counters,
                            dispatch="process-partitioned",
                        )
                    pool._trim_feed()
                    return list(results)
                # A refused/crashed partition poisons the merge — fall back.
                pool.counters["fallbacks"] += 1
                results[0] = handle.query(statements[0])
                return list(results)

            # ---- statement fan-out: round-robin statements over workers.
            batches: "Dict[int, List[Tuple[int, Dict[str, object]]]]" = {}
            for index, job in enumerate(jobs):
                if job is not None:
                    batches.setdefault(index % pool.size, []).append((index, job))
            if batches:
                with ThreadPoolExecutor(max_workers=len(batches)) as fanout:
                    futures = {
                        fanout.submit(
                            pool.run_batch, slot, pin_gen, cut_seq, batch
                        ): slot
                        for slot, batch in batches.items()
                    }
                    for future in futures:
                        for index, outcome in future.result().items():
                            if outcome[0] == "result":
                                results[index] = ShippedQueryResult.from_payload(
                                    statements[index], outcome[1]
                                )
            # Fallbacks: never-shippable statements plus refused/crashed ones
            # execute on the primary at the same pinned generation (DML and
            # transaction statements raise here, matching thread mode).
            for index, result in enumerate(results):
                if result is None:
                    pool.counters["fallbacks"] += 1
                    results[index] = handle.query(statements[index])
            pool._trim_feed()
            return list(results)
        finally:
            handle.release()

    def _parallel_query_replica(
        self,
        statements: "List[str]",
        generation: Optional[int],
        max_lag: int,
    ) -> "List[QueryResult]":
        """Fan read statements over the replication hub's followers.

        The pin and the feed cut are taken inside the versioning engine
        lock — the same critical section transactional commits append
        their WAL record in — so a commit is either visible at the pin
        *and* included in the cut, or neither (the process-mode contract).

        Follower eligibility at the pinned generation: lag < 0 (ahead of
        an older pin) skips the follower; lag > *max_lag* waits on it (the
        hub ships the missing ``(applied_seq, cut]`` slice — a refusal
        skips instead); 0 ≤ lag ≤ *max_lag* serves as-is at the follower's
        own applied generation.  Statements route round-robin over the
        eligible followers; everything else — unshippable statements,
        follower-side failures, no eligible follower at all — executes on
        the primary at the same pinned generation.
        """
        from concurrent.futures import ThreadPoolExecutor

        from repro.mql.ast_nodes import Query, SetOperation
        from repro.mql.parser import parse
        from repro.storage.replication import ReplicationError

        hub = self._replication
        followers = hub.followers() if hub is not None else []
        database = self.to_database()
        interpreter = self.interpreter()
        state = database.versioning
        with state.lock:
            pinned = database.pin(generation)
            snapshot = state.make_snapshot(pinned)
            cut = hub.feed_position() if hub is not None else 0
        handle = SnapshotHandle(database, interpreter, snapshot)
        try:
            pin_gen = handle.generation
            eligible = []
            for follower in followers:
                lag = follower.lag(pin_gen)
                if lag < 0:
                    hub.counters["skipped"] += 1
                    continue
                if lag > max_lag:
                    try:
                        hub.ship(follower, pin_gen, cut)
                        hub.counters["waits"] += 1
                    except ReplicationError:
                        hub.counters["skipped"] += 1
                        continue
                eligible.append(follower)

            results: "List[Optional[QueryResult]]" = [None] * len(statements)
            assignments: "List[Tuple[int, object]]" = []
            if eligible:
                routable = []
                for index, statement in enumerate(statements):
                    try:
                        ast = parse(statement)
                    except Exception:
                        continue  # falls back; the primary raises properly
                    if isinstance(ast, (Query, SetOperation)):
                        routable.append(index)
                assignments = [
                    (index, eligible[position % len(eligible)])
                    for position, index in enumerate(routable)
                ]
            if assignments:

                def run(assignment):
                    index, follower = assignment
                    try:
                        return index, follower.query(statements[index])
                    except StorageError:
                        # Follower-side failure (closed, promoted, racing
                        # detach): the primary fallback below serves it.
                        return index, None

                with ThreadPoolExecutor(max_workers=len(eligible)) as fanout:
                    for index, result in fanout.map(run, assignments):
                        if result is not None:
                            hub.counters["routed"] += 1
                        results[index] = result
            for index, result in enumerate(results):
                if result is None:
                    if hub is not None:
                        hub.counters["fallbacks"] += 1
                    results[index] = handle.query(statements[index])
            return list(results)
        finally:
            handle.release()

    def collect_versions(self) -> Dict[str, object]:
        """Run version-chain garbage collection; returns the GC statistics."""
        if self._snapshot is None:
            return dict(NO_VERSION_STATISTICS)
        return self._snapshot.collect_versions()

    # ---------------------------------------------------- durability and WAL

    @classmethod
    def open(
        cls,
        directory,
        name: str = "prima",
        maintenance: str = INCREMENTAL,
        fsync: str = "batch",
        group_commit: int = 8,
    ) -> "PrimaEngine":
        """Open (or create) a durable engine rooted at *directory*.

        Construction recovers the directory's checkpoint and WAL; an empty
        directory yields an empty engine whose subsequent DDL and commits are
        logged.  Shorthand for ``PrimaEngine(durability=DurabilityConfig(…))``.
        """
        return cls(
            name,
            maintenance=maintenance,
            durability=DurabilityConfig(directory, fsync=fsync, group_commit=group_commit),
        )

    @property
    def durability(self) -> Optional[DurabilityConfig]:
        """The durability configuration, or ``None`` for in-memory engines."""
        return self._durability

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The open write-ahead log (``None`` for in-memory engines)."""
        return self._wal

    @property
    def recovery(self) -> Optional[RecoveryResult]:
        """What construction-time recovery replayed (``None`` when in-memory)."""
        return self._recovery

    def checkpoint(self) -> Dict[str, object]:
        """Write a snapshot image and truncate the WAL (quiescent points only).

        The checkpoint protocol is: image to a temporary file, fsync, atomic
        rename over the previous image, fsync the directory, *then* truncate
        the log — a crash between any two steps leaves a state recovery
        handles (old image + full log, or new image + full log, both of which
        replay to the committed head because replay is idempotent).  Refused
        while any transaction is active: the stores then carry uncommitted
        mirror state that must not enter an image.  Holds the engine's write
        lock so no basic-interface write can interleave with the image.
        """
        with self._write_lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> Dict[str, object]:
        if self._wal is None:
            raise StorageError(
                "checkpoint requires a durable engine; construct it with "
                "durability=DurabilityConfig(directory)"
            )
        if self._wal.closed:
            # Fail before the image write: replacing the image and then
            # failing to truncate would otherwise leave a half-finished
            # checkpoint behind a closed engine.
            raise StorageError("cannot checkpoint a closed engine; reopen the directory")
        from contextlib import nullcontext

        from repro.storage.recovery import write_checkpoint  # deferred: cycle hygiene

        state = self._snapshot.versioning if self._snapshot is not None else None
        # The quiescence check, the image and the truncate form one critical
        # section of the versioning engine lock (when one exists): a
        # transaction beginning (or any mutation ticking) after the check
        # would otherwise mirror uncommitted state into the stores
        # mid-image.  Checkpoints are rare and explicitly quiescent;
        # stalling pins/commits for the image write is the intended trade.
        with state.lock if state is not None else nullcontext():
            if (state is not None and state.active_transactions) or self._wal_tx_pending:
                raise StorageError(
                    "cannot checkpoint while transactions are active; "
                    "COMMIT WORK or ROLLBACK WORK first"
                )
            path = write_checkpoint(self, self._durability)
            self._wal.truncate()
        self._checkpoints += 1
        return {
            "path": str(path),
            "checkpoints": self._checkpoints,
            "generation": self.generation,
            "atoms": sum(len(store) for store in self._atom_stores.values()),
            "links": sum(len(store) for store in self._link_stores.values()),
        }

    def close(self) -> None:
        """Flush and close the WAL (idempotent; in-memory engines: no-op).

        Shuts down the worker-process pool and the replication hub first,
        if they were created (the hub's followers survive, detached, at
        their applied generations).  A closed durable engine keeps serving
        reads, but further writes fail at the log append — reopen the
        directory with :meth:`open` instead.
        """
        with self._cache_lock:
            pool, self._procpool = self._procpool, None
            hub, self._replication = self._replication, None
        if pool is not None:
            pool.shutdown()
        if hub is not None:
            hub.close()
        if self._wal is not None:
            self._wal.close()

    def _wal_direct(self, records: "List[Dict[str, object]]") -> None:
        """Log one auto-committed basic-interface write (no transaction)."""
        if self._wal is not None and records:
            self._wal.commit_events(records)

    def _wal_capture(self, event: ChangeEvent, source: Database) -> None:
        """Route one change event into the WAL's buffers.

        Events produced inside a transaction's tracked block are buffered
        under that transaction (flushed at commit, dropped at rollback);
        events of a basic-interface store write collect in the mirror buffer
        (one record per operation); everything else — a direct snapshot
        mutation outside any transaction — auto-commits immediately.

        Both the writer attribution (``current_writer``) and the mirror
        buffer are thread-local, so concurrent writers on other threads can
        never interleave their events into this thread's records.
        """
        state = source.versioning
        writer = state.current_writer if state is not None else None
        record = encode_event(event)
        if writer is not None:
            self._wal_tx_pending.setdefault(id(writer), []).append(record)
        elif self._mirroring:
            self._direct_buffer().append(record)
        else:
            self._wal.commit_events([record])

    def _wal_transaction_finished(self, txn: object, committed: bool) -> None:
        """Transaction hook: flush the writer's buffered events on commit.

        Fired by :meth:`repro.manipulation.transactions.Transaction.commit`
        immediately after the MVCC commit-log append (and by ``rollback`` /
        conflict aborts with ``committed=False``, which discards the buffer —
        the log only ever carries committed transactions).
        """
        events = self._wal_tx_pending.get(id(txn))
        if committed and events and self._wal is not None:
            # May raise (closed log, full disk): the buffer is kept so a
            # retried commit logs the transaction's events after all — the
            # pop below is only reached once the record is safely appended.
            self._wal.commit_events(events)
        self._wal_tx_pending.pop(id(txn), None)

    # -------------------------------------------------- cache maintenance

    def _maintainable(self) -> Optional[Database]:
        """The live snapshot a write can be folded into, or ``None``.

        Returns the snapshot *object* (not a boolean) so callers hold a
        stable reference: a concurrent cache teardown may null
        ``self._snapshot`` mid-write, and re-reading the attribute would
        crash.  Writing into a just-discarded snapshot is safe — its
        listener path degrades to the stale-handle invalidate-on-next-read
        behaviour.
        """
        if self.maintenance == INCREMENTAL and not self._dirty:
            return self._snapshot
        return None

    @property
    def _mirroring(self) -> bool:
        """``True`` while *this thread* is inside a :meth:`_mirror` block."""
        return getattr(self._tls, "mirroring", False)

    def _direct_buffer(self) -> "List[Dict[str, object]]":
        """This thread's buffer of one in-flight basic-interface write."""
        buffer = getattr(self._tls, "direct_buffer", None)
        if buffer is None:
            buffer = []
            self._tls.direct_buffer = buffer
        return buffer

    @contextmanager
    def _mirror(self):
        """Mark snapshot mutations that originated from a store write.

        Inside the guard, :meth:`_on_change` skips the store mirror (the
        store was already written) but still maintains the derived caches.
        The events of the guarded block form one basic-interface operation;
        on success they are flushed to the WAL as a single commit record, on
        failure (the store write was undone) they are discarded.  The guard
        flag and buffer are thread-local: mirror blocks on other threads
        neither see this block's events nor flush them.
        """
        self._tls.mirroring = True
        try:
            yield
        except BaseException:
            self._direct_buffer().clear()
            raise
        finally:
            self._tls.mirroring = False
        buffer = self._direct_buffer()
        if buffer:
            records = list(buffer)
            buffer.clear()
            self._wal_direct(records)

    def _listener_for(self, snapshot: Database) -> Listener:
        """A change listener that remembers which snapshot it watches.

        Snapshots are never unsubscribed: a write through a *stale* handle
        (one the engine has since discarded) must still reach the stores —
        it just degrades to invalidate-on-next-read instead of incremental
        maintenance, because the current caches never saw it.
        """

        def listener(event: ChangeEvent, _source: Database = snapshot) -> None:
            self._on_change(event, _source)

        return listener

    def _on_change(self, event: ChangeEvent, source: Database) -> None:
        """Fold one snapshot change event into stores and cached structures.

        Serialized on the engine's event lock: concurrent writer threads
        emit events one at a time (each already holds its type's head lock),
        and the store mirror plus every incremental cache apply exactly one
        delta at a time.  The event lock acquires only the true leaves (the
        interpreter's plan lock, the WAL lock), so holding a head lock here
        can never deadlock.
        """
        with self._event_lock:
            # The snapshot's version clock stamps every event; the engine
            # counter follows it (max() also absorbs stale-handle writes
            # whose discarded snapshot still ticks its own, older clock).
            self.generation = max(self.generation + 1, event.generation or 0)
            self._stats["events_applied"] += 1
            if self._wal is not None:
                self._wal_capture(event, source)
            if not self._mirroring:
                self._mirror_to_stores(event)
            if source is not self._snapshot:
                # Stale-handle write: the stores are up to date, the caches
                # never saw it — defer the teardown to the next read.
                self._dirty = True
                return
            if self.maintenance == REBUILD and not self._session_active():
                # The invalidate-everything baseline — but never while a
                # BEGIN WORK session holds the interpreter: tearing it down
                # would destroy the active transaction and orphan its
                # writes.  For the session's duration the caches are
                # maintained incrementally (the branch below); the first
                # write after it ends restores the rebuild behaviour.
                self._dirty = True
                return
            if self._network is not None:
                self._network.apply_event(event)
                self._network.generation = self.generation
            if self._index_pool is not None:
                self._index_pool.apply_event(event, generation=self.generation)
            self._structure_indexes.apply_event(event, generation=self.generation)
            self._columnar.apply_event(event, generation=self.generation)
            if self._interpreter is not None:
                self._interpreter.apply_event(event)

    def _mirror_to_stores(self, event: ChangeEvent) -> None:
        """Replay a snapshot-originated mutation on the backing stores."""
        if event.kind in (ATOM_INSERTED, ATOM_MODIFIED):
            store = self._atom_stores.get(event.type_name)
            if store is not None:
                store.store(event.atom)
        elif event.kind == ATOM_DELETED:
            store = self._atom_stores.get(event.type_name)
            if store is not None and event.atom.identifier in store:
                store.delete(event.atom.identifier)
        elif event.kind == LINK_CONNECTED:
            store = self._link_stores.get(event.type_name)
            if store is not None:
                first, second = event.link.given_order
                store.store(first, second)
        elif event.kind == LINK_DISCONNECTED:
            store = self._link_stores.get(event.type_name)
            if store is not None:
                store.delete(event.link)

    def _session_active(self) -> bool:
        """``True`` while the cached interpreter runs a ``BEGIN WORK`` session."""
        return self._interpreter is not None and getattr(
            self._interpreter, "in_transaction", False
        )

    def _after_write(self) -> None:
        """Account a store write that has no live snapshot to maintain.

        The generation bump shares the event lock with :meth:`_on_change` —
        the counter has exactly one guard, so ticks can never be lost
        between a direct store write and a concurrent snapshot mutation.
        """
        with self._event_lock:
            self.generation += 1
            if self.maintenance == REBUILD:
                self._dirty = True

    def _check_dirty(self) -> None:
        """Tear down invalidated caches before serving a read."""
        if self._dirty:
            self._invalidate()
            self._dirty = False

    def _invalidate(self) -> None:
        """Discard every cached access structure (DDL and rebuild mode).

        The discarded snapshot deliberately stays subscribed: writes through
        a stale handle keep reaching the stores (see :meth:`_listener_for`).
        """
        self._snapshot = None
        self._network = None
        self._interpreter = None
        self._index_pool = None
        # Registrations and counters survive; only the encodings go stale
        # (the next head use rebuilds them from the fresh snapshot).
        self._structure_indexes.mark_all_stale()
        self._columnar.mark_all_stale()
        self._stats["invalidations"] += 1

    def maintenance_statistics(self) -> Dict[str, int]:
        """Build/rebuild counters plus the current write generation.

        ``snapshot_builds`` / ``network_builds`` / ``interpreter_builds``
        count full (re)constructions — in incremental steady state they stay
        at 1 while ``events_applied`` grows; ``index_generation`` equals
        ``generation`` whenever the executor's index pool is coherent.
        """
        report = dict(self._stats)
        report["generation"] = self.generation
        report["network_rebuilds"] = self._network.rebuilds if self._network is not None else 0
        report["index_builds"] = self._index_pool.builds if self._index_pool is not None else 0
        report["index_generation"] = (
            self._index_pool.generation if self._index_pool is not None else 0
        )
        report.update(self._structure_indexes.statistics())
        report.update(self._columnar.statistics())
        return report

    def maintenance_report(self) -> Dict[str, object]:
        """The full maintenance report: cache counters **plus** MVCC/GC state.

        Extends :meth:`maintenance_statistics` with the version-chain
        statistics benchmarks and tests assert on:

        * ``versions_live`` — version-chain entries currently held;
        * ``versions_collected`` — cumulative entries dropped by GC;
        * ``oldest_pinned_generation`` — the generation the oldest active
          reader pins (``None`` when nothing is pinned — chains are then
          truncated on the next collection);
        * ``pins_active`` — active snapshot/transaction pins;
        * ``network_generation`` — the write generation the cached atom
          network was last maintained at;
        * ``wal_bytes`` / ``wal_records`` / ``wal_syncs`` — bytes and records
          currently in the write-ahead log (both reset by a checkpoint's
          truncate, so they always agree) and fsyncs issued (0 for in-memory
          engines);
        * ``wal_lifetime_bytes`` / ``wal_lifetime_records`` — totals over the
          log handle's lifetime, unaffected by truncation;
        * ``checkpoints`` — checkpoint images written by this engine;
        * ``recovery_replayed`` — WAL records replayed at construction;
        * ``replication_*`` — follower count, worst follower lag (in
          generations) and the hub's ship/route/fallback counters (all 0
          while no replication hub exists);
        * ``fenced`` — whether a follower promotion fenced this engine;
        * ``locks_declared`` / ``lock_assertions`` — only while the runtime
          lock-discipline checker (``REPRO_DEBUG_LOCKS=1``) is active:
          registry size and checked acquisitions process-wide.
        """
        report: Dict[str, object] = dict(self.maintenance_statistics())
        report["network_generation"] = (
            self._network.generation if self._network is not None else 0
        )
        if self._snapshot is not None and self._snapshot.versioning is not None:
            report.update(self._snapshot.version_statistics())
        else:
            report.update(NO_VERSION_STATISTICS)
        report["wal_bytes"] = self._wal.bytes_written if self._wal is not None else 0
        report["wal_records"] = self._wal.records_written if self._wal is not None else 0
        report["wal_syncs"] = self._wal.syncs if self._wal is not None else 0
        report["wal_lifetime_bytes"] = (
            self._wal.lifetime_bytes if self._wal is not None else 0
        )
        report["wal_lifetime_records"] = (
            self._wal.lifetime_records if self._wal is not None else 0
        )
        report["checkpoints"] = self._checkpoints
        report["recovery_replayed"] = (
            self._recovery.records_replayed if self._recovery is not None else 0
        )
        pool = self._procpool
        report["procpool_workers"] = pool.size if pool is not None else 0
        for key in (
            "dispatches",
            "plans_shipped",
            "catchup_records",
            "restarts",
            "refusals",
            "fallbacks",
            "partitioned",
            "workers_started",
        ):
            report[f"procpool_{key}"] = pool.counters[key] if pool is not None else 0
        hub = self._replication
        report["replication_followers"] = (
            len(hub.followers()) if hub is not None else 0
        )
        report["replication_lag"] = hub.max_lag() if hub is not None else 0
        for key in (
            "followers_started",
            "ships",
            "records_shipped",
            "refusals",
            "promotions",
            "routed",
            "fallbacks",
            "skipped",
            "waits",
        ):
            report[f"replication_{key}"] = (
                hub.counters[key] if hub is not None else 0
            )
        report["fenced"] = self._fenced
        lock_report = runtime_lock_report()
        if lock_report is not None:
            # Only present while REPRO_DEBUG_LOCKS is (or was) active: a
            # stress artifact carrying these keys proves the lock-discipline
            # checker actually engaged during the run.
            report.update(lock_report)
        return report

    # ------------------------------------------------------------- loading

    @classmethod
    def from_database(
        cls,
        database: Database,
        name: Optional[str] = None,
        maintenance: str = INCREMENTAL,
        durability: Optional[DurabilityConfig] = None,
    ) -> "PrimaEngine":
        """Bulk-load an engine from an existing database.

        With *durability* (expects a fresh directory) the bulk load bypasses
        the log and is persisted as the first checkpoint instead — the cheap
        way to make a dataset durable.
        """
        engine = cls(name or database.name, maintenance=maintenance, durability=durability)
        for atom_type in database.atom_types:
            store = engine.create_atom_type(atom_type.name, atom_type.description)
            for atom in atom_type:
                store.store(atom)
        for link_type in database.link_types:
            store = engine.create_link_type(
                link_type.name, *link_type.atom_type_names, cardinality=link_type.cardinality
            )
            for link in link_type:
                first, second = link.given_order
                store.store(first, second)
        engine._invalidate()
        if durability is not None:
            engine.checkpoint()
        return engine

    # ------------------------------------------------------------ statistics

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Read/write counters per store (used by the storage tests and benches)."""
        return {
            "atoms": {name: len(store) for name, store in self._atom_stores.items()},
            "links": {name: len(store) for name, store in self._link_stores.items()},
            "reads": {
                name: store.reads
                for name, store in {**self._atom_stores, **self._link_stores}.items()
            },
            "writes": {
                name: store.writes
                for name, store in {**self._atom_stores, **self._link_stores}.items()
            },
        }

    # ---------------------------------------------------------------- helpers

    def _atom_store(self, name: str) -> AtomStore:
        try:
            return self._atom_stores[name]
        except KeyError as exc:
            raise UnknownNameError(f"unknown atom type {name!r}") from exc

    def _link_store(self, name: str) -> LinkStore:
        try:
            return self._link_stores[name]
        except KeyError as exc:
            raise UnknownNameError(f"unknown link type {name!r}") from exc

    def __repr__(self) -> str:
        return (
            f"PrimaEngine({self.name!r}, atom_types={len(self._atom_stores)}, "
            f"link_types={len(self._link_stores)}, maintenance={self.maintenance!r})"
        )


class SnapshotHandle:
    """A pinned, repeatable-read view over a :class:`PrimaEngine` snapshot.

    Obtained from :meth:`PrimaEngine.snapshot_at`; usable as a context
    manager.  The handle captures the engine's interpreter and snapshot
    database at pin time, so its reads stay generation-stable even across
    engine cache invalidations.  :meth:`release` drops the pin and triggers
    version-chain garbage collection.

    Thread safety: :meth:`query` and :meth:`database_view` may be called
    from any thread, concurrently — reads resolve lock-free over immutable
    version chains (:meth:`PrimaEngine.parallel_query` fans one handle out
    over a pool).  :meth:`release` is idempotent and atomic: exactly one
    caller unpins, no matter how many threads race the release (the
    registry underneath treats a true over-release as an error).
    """

    def __init__(self, database: Database, interpreter, snapshot: Snapshot) -> None:
        self._database = database
        self._interpreter = interpreter
        self._snapshot = snapshot
        self._released = False  # guarded-by: SnapshotHandle._release_guard
        self._release_guard = make_lock("SnapshotHandle._release_guard")

    @property
    def generation(self) -> int:
        """The pinned write generation."""
        return self._snapshot.generation

    @property
    def snapshot(self) -> Snapshot:
        """The underlying visibility predicate (for executor-level callers)."""
        return self._snapshot

    def query(self, statement: str) -> "QueryResult":
        """Execute an MQL read statement as of the pinned generation.

        Snapshot handles are read-only: DML and transaction statements are
        rejected — writes go through ``engine.query`` (or a ``BEGIN WORK``
        session) and remain invisible to this handle.
        """
        if self._released:
            raise StorageError("snapshot handle has been released")
        from repro.mql.ast_nodes import (
            CheckpointStatement,
            DMLStatement,
            TransactionStatement,
        )
        from repro.mql.parser import parse  # deferred: package cycle

        ast = parse(statement) if isinstance(statement, str) else statement
        inner = getattr(ast, "statement", ast)  # unwrap EXPLAIN
        if isinstance(
            inner, (TransactionStatement, CheckpointStatement, *DMLStatement.__args__)
        ):
            raise StorageError(
                "snapshot handles are read-only; run DML through the engine"
            )
        return self._interpreter.execute(ast, at=self._snapshot)

    def database_view(self):
        """The pinned :class:`~repro.core.versions.DatabaseView` (direct reads)."""
        if self._released:
            raise StorageError("snapshot handle has been released")
        return self._database.at(self._snapshot)

    def release(self) -> None:
        """Unpin the generation (idempotent); triggers version GC."""
        with self._release_guard:
            if self._released:
                return
            self._released = True
        self._database.release_pin(self._snapshot.generation)

    @property
    def released(self) -> bool:
        return self._released

    def __enter__(self) -> "SnapshotHandle":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        state = "released" if self._released else "pinned"
        return f"SnapshotHandle(generation={self.generation}, {state})"
