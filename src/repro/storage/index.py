"""Secondary indexes over atom attributes.

A :class:`HashIndex` maps attribute values to atom identifiers within one atom
type; it accelerates the atom-oriented interface's value lookups (the
selective restrictions the optimizer pushes down).  Indexes are maintained
incrementally by the stores that own them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.atom import Atom
from repro.exceptions import StorageError


class HashIndex:
    """An equality index ``value -> {atom identifiers}`` for one attribute."""

    __slots__ = ("atom_type_name", "attribute", "_buckets", "_entries")

    def __init__(self, atom_type_name: str, attribute: str) -> None:
        self.atom_type_name = atom_type_name
        self.attribute = attribute
        self._buckets: Dict[object, Set[str]] = {}
        self._entries: Dict[str, object] = {}

    def insert(self, atom: Atom) -> None:
        """Index *atom* (replacing any previous entry for its identifier)."""
        if atom.identifier in self._entries:
            self.remove(atom.identifier)
        value = self._hashable(atom.get(self.attribute))
        self._buckets.setdefault(value, set()).add(atom.identifier)
        self._entries[atom.identifier] = value

    def remove(self, identifier: str) -> None:
        """Drop the entry for *identifier* (no error when absent)."""
        value = self._entries.pop(identifier, _MISSING)
        if value is _MISSING:
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(identifier)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: object) -> FrozenSet[str]:
        """Return the identifiers whose indexed attribute equals *value*."""
        return frozenset(self._buckets.get(self._hashable(value), ()))

    def distinct_values(self) -> int:
        """Number of distinct indexed values (used by the optimizer's statistics)."""
        return len(self._buckets)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, identifier: object) -> bool:
        return identifier in self._entries

    @staticmethod
    def _hashable(value: object) -> object:
        if isinstance(value, list):
            return tuple(value)
        if isinstance(value, dict):
            return tuple(sorted(value.items()))
        return value

    def __repr__(self) -> str:
        return (
            f"HashIndex({self.atom_type_name}.{self.attribute}, entries={len(self._entries)}, "
            f"values={len(self._buckets)})"
        )


class _Missing:
    """Sentinel distinguishing 'no entry' from an indexed ``None`` value."""

    __slots__ = ()


_MISSING = _Missing()
