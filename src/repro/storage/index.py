"""Secondary indexes over atom attributes.

A :class:`HashIndex` maps attribute values to atom identifiers within one atom
type; it accelerates the atom-oriented interface's value lookups (the
selective restrictions the optimizer pushes down).  Indexes are maintained
incrementally by the stores that own them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.atom import Atom
from repro.exceptions import StorageError


class HashIndex:
    """An equality index ``value -> {atom identifiers}`` for one attribute."""

    __slots__ = ("atom_type_name", "attribute", "_buckets", "_entries")

    def __init__(self, atom_type_name: str, attribute: str) -> None:
        self.atom_type_name = atom_type_name
        self.attribute = attribute
        self._buckets: Dict[object, Set[str]] = {}
        self._entries: Dict[str, object] = {}

    def insert(self, atom: Atom) -> None:
        """Index *atom* (replacing any previous entry for its identifier)."""
        if atom.identifier in self._entries:
            self.remove(atom.identifier)
        value = self._hashable(atom.get(self.attribute))
        self._buckets.setdefault(value, set()).add(atom.identifier)
        self._entries[atom.identifier] = value

    def remove(self, identifier: str) -> None:
        """Drop the entry for *identifier* (no error when absent)."""
        value = self._entries.pop(identifier, _MISSING)
        if value is _MISSING:
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(identifier)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: object) -> FrozenSet[str]:
        """Return the identifiers whose indexed attribute equals *value*."""
        return frozenset(self._buckets.get(self._hashable(value), ()))

    def distinct_values(self) -> int:
        """Number of distinct indexed values (used by the optimizer's statistics)."""
        return len(self._buckets)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, identifier: object) -> bool:
        return identifier in self._entries

    @staticmethod
    def _hashable(value: object) -> object:
        if isinstance(value, list):
            return tuple(value)
        if isinstance(value, dict):
            return tuple(sorted(value.items()))
        return value

    def __repr__(self) -> str:
        return (
            f"HashIndex({self.atom_type_name}.{self.attribute}, entries={len(self._entries)}, "
            f"values={len(self._buckets)})"
        )


class GridIndex:
    """A grid-file style composite index over several attributes of one type.

    The value space is partitioned per dimension by hashing each attribute
    value into one of ``partitions`` cells; an entry lands in the directory
    cell addressed by its coordinate tuple.  Exact conjunctive lookups read
    one cell; partial-match lookups (a subset of the dimensions bound) scan
    the matching directory slice — both then filter on the stored value
    tuples, so hash collisions never produce false positives.
    """

    __slots__ = ("atom_type_name", "attributes", "partitions", "_cells", "_entries")

    def __init__(
        self,
        atom_type_name: str,
        attributes: Iterable[str],
        partitions: int = 16,
    ) -> None:
        self.atom_type_name = atom_type_name
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(self.attributes) < 2:
            raise StorageError("a grid index needs at least two attributes")
        if len(set(self.attributes)) != len(self.attributes):
            raise StorageError("grid index attributes must be distinct")
        self.partitions = max(2, int(partitions))
        self._cells: Dict[Tuple[int, ...], Dict[str, Tuple[object, ...]]] = {}
        self._entries: Dict[str, Tuple[int, ...]] = {}

    def insert(self, atom: Atom) -> None:
        """Index *atom* (replacing any previous entry for its identifier)."""
        if atom.identifier in self._entries:
            self.remove(atom.identifier)
        values = tuple(
            HashIndex._hashable(atom.get(attribute)) for attribute in self.attributes
        )
        coordinate = tuple(self._coordinate(value) for value in values)
        self._cells.setdefault(coordinate, {})[atom.identifier] = values
        self._entries[atom.identifier] = coordinate

    def remove(self, identifier: str) -> None:
        """Drop the entry for *identifier* (no error when absent)."""
        coordinate = self._entries.pop(identifier, None)
        if coordinate is None:
            return
        cell = self._cells.get(coordinate)
        if cell is not None:
            cell.pop(identifier, None)
            if not cell:
                del self._cells[coordinate]

    def lookup(self, values: Dict[str, object]) -> FrozenSet[str]:
        """Identifiers matching every bound attribute in *values*.

        Binding all dimensions is an exact (single-cell) lookup; binding a
        subset is a partial-match query over the compatible cells.  Unknown
        attribute names raise :class:`StorageError`.
        """
        unknown = set(values) - set(self.attributes)
        if unknown:
            raise StorageError(
                f"grid index over {self.attributes!r} cannot bind {sorted(unknown)!r}"
            )
        bound = {
            name: HashIndex._hashable(value) for name, value in values.items()
        }
        wanted = tuple(
            (position, bound[name], self._coordinate(bound[name]))
            for position, name in enumerate(self.attributes)
            if name in bound
        )
        matches = set()
        if len(wanted) == len(self.attributes):
            exact = tuple(cell_coord for _, _, cell_coord in wanted)
            cells: Iterable[Tuple[Tuple[int, ...], Dict[str, Tuple[object, ...]]]] = (
                ((exact, self._cells[exact]),) if exact in self._cells else ()
            )
        else:
            cells = self._cells.items()
        for coordinate, cell in cells:
            if any(coordinate[position] != cell_coord for position, _, cell_coord in wanted):
                continue
            for identifier, entry in cell.items():
                if all(entry[position] == value for position, value, _ in wanted):
                    matches.add(identifier)
        return frozenset(matches)

    def _coordinate(self, hashable_value: object) -> int:
        try:
            return hash(hashable_value) % self.partitions
        except TypeError:
            return hash(repr(hashable_value)) % self.partitions

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, identifier: object) -> bool:
        return identifier in self._entries

    def __repr__(self) -> str:
        return (
            f"GridIndex({self.atom_type_name}{list(self.attributes)}, "
            f"entries={len(self._entries)}, cells={len(self._cells)})"
        )


class _Missing:
    """Sentinel distinguishing 'no entry' from an indexed ``None`` value."""

    __slots__ = ()


_MISSING = _Missing()
