"""Atom networks: the graph view over a whole database.

"In the database all atoms connected by links form meshed structures, called
atom networks."  :class:`AtomNetwork` materializes that view for analysis and
reporting: per-atom degree, connected components, reachability, and the
link-degree statistics reported by the Fig. 1 benchmark.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.database import Database


class AtomNetwork:
    """An undirected adjacency view over all atoms and links of a database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._adjacency: Dict[str, Set[str]] = {}
        self._type_of: Dict[str, str] = {}
        self.refresh()

    def refresh(self) -> None:
        """Rebuild the adjacency view from the current database state."""
        self._adjacency = {}
        self._type_of = {}
        for atom_type in self.database.atom_types:
            for atom in atom_type:
                self._adjacency.setdefault(atom.identifier, set())
                self._type_of[atom.identifier] = atom_type.name
        for link_type in self.database.link_types:
            for link in link_type:
                ids = tuple(link.identifiers)
                first, last = ids[0], ids[-1]
                self._adjacency.setdefault(first, set()).add(last)
                self._adjacency.setdefault(last, set()).add(first)

    # ------------------------------------------------------------- structure

    def neighbours(self, identifier: str) -> FrozenSet[str]:
        """Atoms directly connected to *identifier* through any link type."""
        return frozenset(self._adjacency.get(identifier, ()))

    def degree(self, identifier: str) -> int:
        """Number of distinct atoms linked to *identifier*."""
        return len(self._adjacency.get(identifier, ()))

    def atom_type_of(self, identifier: str) -> Optional[str]:
        """The atom type of *identifier*, or ``None`` when unknown."""
        return self._type_of.get(identifier)

    def reachable_from(self, identifier: str, max_hops: Optional[int] = None) -> FrozenSet[str]:
        """Atoms reachable from *identifier* within *max_hops* links (all hops when None)."""
        seen = {identifier}
        frontier = [identifier]
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            hops += 1
            next_frontier: List[str] = []
            for current in frontier:
                for neighbour in self._adjacency.get(current, ()):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return frozenset(seen)

    def connected_components(self) -> Tuple[FrozenSet[str], ...]:
        """The connected components of the atom network (largest first)."""
        remaining = set(self._adjacency)
        components: List[FrozenSet[str]] = []
        while remaining:
            start = next(iter(remaining))
            component = self.reachable_from(start)
            components.append(component)
            remaining -= component
        return tuple(sorted(components, key=len, reverse=True))

    # ------------------------------------------------------------ statistics

    def degree_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per atom type: min / max / mean link degree (the Fig. 1 report)."""
        per_type: Dict[str, List[int]] = {}
        for identifier, neighbours in self._adjacency.items():
            type_name = self._type_of.get(identifier, "?")
            per_type.setdefault(type_name, []).append(len(neighbours))
        statistics: Dict[str, Dict[str, float]] = {}
        for type_name, degrees in per_type.items():
            statistics[type_name] = {
                "min": float(min(degrees)),
                "max": float(max(degrees)),
                "mean": sum(degrees) / len(degrees),
                "atoms": float(len(degrees)),
            }
        return statistics

    def shared_atom_count(self, left_type: str, right_type: str) -> int:
        """Atoms linked to atoms of both *left_type* and *right_type*.

        Quantifies subobject sharing potential: e.g. edges linked to both an
        area and a net are shared between state borders and river courses.
        """
        count = 0
        for identifier, neighbours in self._adjacency.items():
            neighbour_types = {self._type_of.get(n) for n in neighbours}
            if left_type in neighbour_types and right_type in neighbour_types:
                count += 1
        return count

    def __len__(self) -> int:
        return len(self._adjacency)
