"""Atom networks: the graph view over a whole database.

"In the database all atoms connected by links form meshed structures, called
atom networks."  :class:`AtomNetwork` materializes that view for analysis and
reporting: per-atom degree, connected components, reachability, and the
link-degree statistics reported by the Fig. 1 benchmark.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.database import Database
from repro.core.events import (
    ATOM_DELETED,
    ATOM_INSERTED,
    ATOM_MODIFIED,
    LINK_CONNECTED,
    LINK_DISCONNECTED,
    ChangeEvent,
)
from repro.core.link import Link


class AtomNetwork:
    """An undirected adjacency view over all atoms and links of a database.

    Besides the untyped adjacency, the network keeps a per-link-type incidence
    map (:meth:`links_via` / :meth:`neighbours_via`), which the streaming
    executor uses as its neighbour-traversal access path during the
    hierarchical join: the storage engine shares one cached network across all
    queries over an unchanged database.

    The view is maintainable **incrementally**: :meth:`apply_event` folds one
    occurrence-level change event into the adjacency and incidence maps, so
    the storage engine never rebuilds the network on writes (:attr:`rebuilds`
    counts the full :meth:`refresh` passes that did happen).
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._adjacency: Dict[str, Set[str]] = {}
        self._type_of: Dict[str, str] = {}
        # Incidence buckets are sets — O(1) under incremental link maintenance
        # and the same unordered semantics LinkType.links_of hands out.
        self._links_by_type: Dict[str, Dict[str, Set[Link]]] = {}
        self.rebuilds = 0
        #: Write generation this view was last maintained at (stamped by the
        #: owning engine; a network matching the engine's generation is
        #: coherent with the head — pinned readers bypass it entirely).
        self.generation = 0
        self.refresh()

    def refresh(self) -> None:
        """Rebuild the adjacency view from the current database state."""
        self.rebuilds += 1
        self._adjacency = {}
        self._type_of = {}
        self._links_by_type = {}
        for atom_type in self.database.atom_types:
            for atom in atom_type:
                self._adjacency.setdefault(atom.identifier, set())
                self._type_of[atom.identifier] = atom_type.name
        for link_type in self.database.link_types:
            incidence = self._links_by_type.setdefault(link_type.name, {})
            for link in link_type:
                ids = tuple(link.identifiers)
                first, last = ids[0], ids[-1]
                self._adjacency.setdefault(first, set()).add(last)
                self._adjacency.setdefault(last, set()).add(first)
                incidence.setdefault(first, set()).add(link)
                if last != first:
                    incidence.setdefault(last, set()).add(link)

    # ------------------------------------------------- incremental maintenance

    def apply_event(self, event: ChangeEvent) -> None:
        """Fold one change event into the adjacency/incidence view.

        Link events must arrive in mutation order (links are disconnected
        before their endpoint atoms are deleted — every write path in the
        system does this), which keeps the view exact without rescans.
        Atom modifications are no-ops: identity and links are preserved.
        """
        if event.kind == ATOM_INSERTED:
            self._adjacency.setdefault(event.atom.identifier, set())
            self._type_of[event.atom.identifier] = event.type_name
        elif event.kind == ATOM_DELETED:
            identifier = event.atom.identifier
            for neighbour in self._adjacency.pop(identifier, ()):
                bucket = self._adjacency.get(neighbour)
                if bucket is not None:
                    bucket.discard(identifier)
            self._type_of.pop(identifier, None)
        elif event.kind == LINK_CONNECTED:
            link = event.link
            ids = tuple(link.identifiers)
            first, last = ids[0], ids[-1]
            self._adjacency.setdefault(first, set()).add(last)
            self._adjacency.setdefault(last, set()).add(first)
            incidence = self._links_by_type.setdefault(event.type_name, {})
            for identifier in {first, last}:
                incidence.setdefault(identifier, set()).add(link)
        elif event.kind == LINK_DISCONNECTED:
            link = event.link
            ids = tuple(link.identifiers)
            first, last = ids[0], ids[-1]
            incidence = self._links_by_type.get(event.type_name, {})
            for identifier in {first, last}:
                bucket = incidence.get(identifier)
                if bucket is not None:
                    bucket.discard(link)
                    if not bucket:
                        del incidence[identifier]
            if first != last and not self._still_connected(first, last):
                bucket = self._adjacency.get(first)
                if bucket is not None:
                    bucket.discard(last)
                bucket = self._adjacency.get(last)
                if bucket is not None:
                    bucket.discard(first)
        elif event.kind != ATOM_MODIFIED:  # pragma: no cover - future kinds
            self.refresh()

    def _still_connected(self, first: str, last: str) -> bool:
        """``True`` when any remaining link (of any type) joins *first* and *last*."""
        for incidence in self._links_by_type.values():
            for link in incidence.get(first, ()):
                if link.other(first) == last:
                    return True
        return False

    # ------------------------------------------------------------- structure

    def neighbours(self, identifier: str) -> FrozenSet[str]:
        """Atoms directly connected to *identifier* through any link type."""
        return frozenset(self._adjacency.get(identifier, ()))

    def links_via(self, link_type_name: str, identifier: str) -> "Optional[Iterable[Link]]":
        """The links of *link_type_name* incident to *identifier* (unordered).

        Returns ``None`` when the link type is not part of this network (the
        caller should fall back to the link type's own incidence lists), and
        an empty collection when the atom simply has no such links.  The
        returned bucket is the live one — callers iterate, never mutate.
        """
        incidence = self._links_by_type.get(link_type_name)
        if incidence is None:
            return None
        return incidence.get(identifier, ())

    def neighbours_via(self, link_type_name: str, identifier: str) -> FrozenSet[str]:
        """Atoms connected to *identifier* through *link_type_name* links."""
        links = self.links_via(link_type_name, identifier) or ()
        return frozenset(link.other(identifier) for link in links)

    def degree(self, identifier: str) -> int:
        """Number of distinct atoms linked to *identifier*."""
        return len(self._adjacency.get(identifier, ()))

    def atom_type_of(self, identifier: str) -> Optional[str]:
        """The atom type of *identifier*, or ``None`` when unknown."""
        return self._type_of.get(identifier)

    def reachable_from(self, identifier: str, max_hops: Optional[int] = None) -> FrozenSet[str]:
        """Atoms reachable from *identifier* within *max_hops* links (all hops when None)."""
        seen = {identifier}
        frontier = [identifier]
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            hops += 1
            next_frontier: List[str] = []
            for current in frontier:
                for neighbour in self._adjacency.get(current, ()):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return frozenset(seen)

    def connected_components(self) -> Tuple[FrozenSet[str], ...]:
        """The connected components of the atom network (largest first)."""
        remaining = set(self._adjacency)
        components: List[FrozenSet[str]] = []
        while remaining:
            start = next(iter(remaining))
            component = self.reachable_from(start)
            components.append(component)
            remaining -= component
        return tuple(sorted(components, key=len, reverse=True))

    # ------------------------------------------------------------ statistics

    def degree_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per atom type: min / max / mean link degree (the Fig. 1 report)."""
        per_type: Dict[str, List[int]] = {}
        for identifier, neighbours in self._adjacency.items():
            type_name = self._type_of.get(identifier, "?")
            per_type.setdefault(type_name, []).append(len(neighbours))
        statistics: Dict[str, Dict[str, float]] = {}
        for type_name, degrees in per_type.items():
            statistics[type_name] = {
                "min": float(min(degrees)),
                "max": float(max(degrees)),
                "mean": sum(degrees) / len(degrees),
                "atoms": float(len(degrees)),
            }
        return statistics

    def shared_atom_count(self, left_type: str, right_type: str) -> int:
        """Atoms linked to atoms of both *left_type* and *right_type*.

        Quantifies subobject sharing potential: e.g. edges linked to both an
        area and a net are shared between state borders and river courses.
        """
        count = 0
        for identifier, neighbours in self._adjacency.items():
            neighbour_types = {self._type_of.get(n) for n in neighbours}
            if left_type in neighbour_types and right_type in neighbour_types:
                count += 1
        return count

    def __len__(self) -> int:
        return len(self._adjacency)
