"""Interval-encoded structure indexes over recursive link traversals.

Recursive molecule types (the parts-explosion queries of the paper's §5)
expand hop by hop: a fixpoint loop that touches every incident link of every
frontier atom.  The classic accelerator from the XPath-index line of work
replaces the traversal with *pre/post-order interval encodings*: number every
node of the traversal forest with a ``pre`` value on entry and a ``post``
value on exit, and "all descendants of X" becomes the nodes whose ``pre``
falls strictly inside ``(pre(X), post(X))`` — one binary search plus one
contiguous slice of a pre-sorted array.

A :class:`StructureIndex` accelerates one *(atom type, link type, direction)*
recursive description:

* It always maintains an **exact compact adjacency** (parent → children with
  the connecting :class:`~repro.core.link.Link`), folded incrementally from
  the change-event stream.  On shapes that are not forests (shared
  subobjects, convergent part usage, cycles) closures are answered by a
  breadth-first sweep over that adjacency — still far cheaper than the
  fixpoint loop's per-hop incidence scans, and exact on any shape.
* When the traversal graph **is** a forest it additionally keeps the
  pre/post/depth encoding plus the pre-sorted interval array, and closures
  become range scans.  Single-edge mutations are folded in place: new atoms
  get fresh top-level intervals, a leaf linked under a parent is re-encoded
  into the parent's tail gap by float midpoint subdivision, a detached leaf
  moves back to top level.  Mutations the in-place scheme cannot express
  (subtree grafts, gap exhaustion, shape transitions) set the ``stale`` flag
  and bump ``gap_events`` — the next head use rebuilds (``builds``).

MVCC interaction: indexes are generation-stamped by the owning engine.  A
pinned snapshot may use an index only when the stamp equals the snapshot's
generation and the snapshot carries no private writes — otherwise the store
counts a ``snapshot_gap`` and the executor falls back to the fixpoint loop
over the pinned view, preserving byte parity.  All counters surface through
``maintenance_report()``.
"""

from __future__ import annotations

from repro.analysis.runtime import make_rlock
from bisect import bisect_left, bisect_right, insort
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.events import (
    ATOM_DELETED,
    ATOM_INSERTED,
    ATOM_MODIFIED,
    LINK_CONNECTED,
    LINK_DISCONNECTED,
    ChangeEvent,
)
from repro.core.link import Link
from repro.exceptions import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import Database
    from repro.core.recursion import RecursiveDescription

#: ``(atom type, link type, direction)`` — the unit of acceleration.
StructureKey = Tuple[str, str, str]

#: One closure member: ``(identifier, level, parent link or None for the root)``.
ClosureMember = Tuple[str, int, Optional[Link]]

#: Tail gaps narrower than this cannot be midpoint-subdivided reliably.
_MIN_GAP = 1e-7


def structure_key(description: "RecursiveDescription") -> StructureKey:
    """The index key of a recursive description (``max_depth`` is per-query)."""
    return (
        description.atom_type_name,
        description.link_type_name,
        description.direction,
    )


class StructureIndex:
    """Pre/post interval encoding + compact adjacency for one structure key.

    Not internally synchronized — the owning :class:`StructureIndexStore`
    wraps every entry point in its lock.  Methods never touch atom or link
    type occurrences (no lock-order hazard against the per-type head locks);
    callers resolve identifiers to atoms outside the store lock.
    """

    def __init__(self, key: StructureKey) -> None:
        self.key = key
        self.atom_type_name, self.link_type_name, self.direction = key
        #: Write generation the encoding is coherent with (stamped by the store).
        self.generation = 0
        #: ``True`` when the encoding can no longer be trusted; the adjacency
        #: is also suspect (events may have been missed) — rebuild before use.
        self.stale = True
        #: Full rebuilds performed (the rebuild-on-gap fallback shows up here).
        self.builds = 0
        #: Incremental maintenance gave up (graft/gap/shape transition).
        self.gap_events = 0
        # Link-type shape captured at build time (used to orient event links
        # without touching the live catalog).
        self._reflexive = True
        self._first_type = self.atom_type_name
        self._second_type = self.atom_type_name
        # Exact adjacency: parent -> {child -> connecting link}.
        self._children: Dict[str, Dict[str, Link]] = {}
        self._indegree: Dict[str, int] = {}
        self._nodes: Set[str] = set()
        self._multi_parent = 0
        self._self_loops = 0
        self._cycle = False
        # Forest encoding (valid only when ``tree`` and not ``stale``).
        self._pre: Dict[str, float] = {}
        self._post: Dict[str, float] = {}
        self._depth: Dict[str, int] = {}
        self._parent_link: Dict[str, Link] = {}
        self._order: List[Tuple[float, str]] = []
        self._max_coord = 0.0

    # ------------------------------------------------------------ properties

    @property
    def tree(self) -> bool:
        """``True`` when the traversal graph is a forest (range scans apply)."""
        return not self._cycle and self._multi_parent == 0 and self._self_loops == 0

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        mode = "tree" if self.tree else "graph"
        flag = ", stale" if self.stale else ""
        return (
            f"StructureIndex({self.atom_type_name} via {self.link_type_name} "
            f"{self.direction}, {len(self._nodes)} nodes, {mode}{flag})"
        )

    # --------------------------------------------------------------- rebuild

    def refresh(self, database: "Database") -> None:
        """Rebuild adjacency and encoding from the current database state."""
        link_type = database.ltyp(self.link_type_name)
        self._reflexive = link_type.is_reflexive
        self._first_type, self._second_type = link_type.atom_type_names
        atom_type = database.atyp(self.atom_type_name)
        other_name = self._other_type_name()
        other_type = (
            database.atyp(other_name)
            if other_name != self.atom_type_name and database.has_atom_type(other_name)
            else None
        )

        self._children = {}
        self._indegree = {}
        self._nodes = {atom.identifier for atom in atom_type}
        self._multi_parent = 0
        self._self_loops = 0
        self._cycle = False
        for link in link_type:
            parent, child = self._orient(link)
            # Mirror expand_recursive: an edge exists only when its child
            # endpoint resolves to a live atom.
            if atom_type.get(child) is None and (
                other_type is None or other_type.get(child) is None
            ):
                continue
            bucket = self._children.setdefault(parent, {})
            if child in bucket:
                continue
            bucket[child] = link
            self._nodes.add(parent)
            self._nodes.add(child)
            if parent == child:
                self._self_loops += 1
                continue
            degree = self._indegree.get(child, 0) + 1
            self._indegree[child] = degree
            if degree == 2:
                self._multi_parent += 1

        self._encode_forest()
        self.stale = False
        self.builds += 1

    def _encode_forest(self) -> None:
        """Assign pre/post/depth by iterative DFS from the in-degree-0 roots."""
        self._pre = {}
        self._post = {}
        self._depth = {}
        self._parent_link = {}
        self._order = []
        counter = 0.0
        visited: Set[str] = set()
        roots = sorted(
            node for node in self._nodes if self._indegree.get(node, 0) == 0
        )
        for root in roots:
            counter = self._dfs(root, 0, counter, visited)
        leftover = self._nodes - visited
        if leftover:
            # Unreachable from any in-degree-0 node — at least one cycle.
            self._cycle = True
            for node in sorted(leftover):
                if node not in visited:
                    counter = self._dfs(node, 0, counter, visited)
        self._max_coord = counter

    def _dfs(self, root: str, depth: int, counter: float, visited: Set[str]) -> float:
        if root in visited:
            return counter
        counter += 1.0
        visited.add(root)
        self._pre[root] = counter
        self._depth[root] = depth
        self._order.append((counter, root))
        stack: List[Tuple[str, Iterable[str]]] = [
            (root, iter(sorted(self._children.get(root, ()))))
        ]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child in visited:
                    continue
                counter += 1.0
                visited.add(child)
                self._pre[child] = counter
                self._depth[child] = self._depth[node] + 1
                self._parent_link[child] = self._children[node][child]
                self._order.append((counter, child))
                stack.append((child, iter(sorted(self._children.get(child, ())))))
                advanced = True
                break
            if not advanced:
                counter += 1.0
                self._post[node] = counter
                stack.pop()
        return counter

    # ----------------------------------------------- incremental maintenance

    def apply_event(self, event: ChangeEvent) -> None:
        """Fold one change event in; adjacency stays exact, the encoding is
        patched in place when possible and marked stale otherwise."""
        kind = event.kind
        if kind == ATOM_MODIFIED:
            return
        if kind == ATOM_INSERTED:
            if event.type_name == self.atom_type_name:
                self._ensure_node(event.atom.identifier)
            return
        if kind == ATOM_DELETED:
            identifier = event.atom.identifier
            if identifier in self._nodes:
                self._drop_node(identifier)
            return
        if event.type_name != self.link_type_name or event.link is None:
            return
        if kind == LINK_CONNECTED:
            self._connect(event.link)
        elif kind == LINK_DISCONNECTED:
            self._disconnect(event.link)

    def _ensure_node(self, identifier: str) -> None:
        if identifier in self._nodes:
            return
        self._nodes.add(identifier)
        if self.stale:
            return
        # Fresh atoms are isolated: a brand-new top-level interval past every
        # allocated coordinate keeps the sorted order append-only.
        pre = self._max_coord + 1.0
        post = self._max_coord + 2.0
        self._max_coord = post
        self._pre[identifier] = pre
        self._post[identifier] = post
        self._depth[identifier] = 0
        self._order.append((pre, identifier))

    def _drop_node(self, identifier: str) -> None:
        if self._children.get(identifier) or self._indegree.get(identifier, 0) > 0:
            # Atoms are unlinked before deletion on every write path; a
            # deletion with live edges means we missed events — resync.
            self._mark_stale()
            self._children.pop(identifier, None)
        self._nodes.discard(identifier)
        self._indegree.pop(identifier, None)
        if not self.stale:
            self._remove_encoding(identifier)

    def _connect(self, link: Link) -> None:
        parent, child = self._orient(link)
        self._ensure_node(parent)
        self._ensure_node(child)
        bucket = self._children.setdefault(parent, {})
        if child in bucket:
            return
        bucket[child] = link
        if parent == child:
            self._self_loops += 1
            return
        degree = self._indegree.get(child, 0) + 1
        self._indegree[child] = degree
        if degree >= 2:
            if degree == 2:
                self._multi_parent += 1
            return
        if self.stale or not self.tree:
            return
        # The child was a top-level root of the encoded forest.  If the new
        # parent sits inside the child's own subtree the edge closes a cycle.
        child_pre = self._pre.get(child)
        parent_pre = self._pre.get(parent)
        if child_pre is None or parent_pre is None:
            self._mark_stale()
            return
        if child_pre < parent_pre < self._post[child]:
            self._cycle = True
            return
        if self._children.get(child):
            # Grafting a whole subtree needs a renumbering pass.
            self._mark_stale()
            return
        self._relocate_under(parent, child, link)

    def _relocate_under(self, parent: str, child: str, link: Link) -> None:
        """Move leaf *child* into *parent*'s tail gap by midpoint subdivision."""
        parent_post = self._post[parent]
        lo = self._pre[parent]
        for other in self._children.get(parent, ()):
            if other == child:
                continue
            other_post = self._post.get(other)
            if other_post is not None and other_post > lo:
                lo = other_post
        span = parent_post - lo
        if span < _MIN_GAP:
            self._mark_stale()
            return
        self._remove_encoding(child)
        pre = lo + span / 3.0
        post = lo + 2.0 * span / 3.0
        self._pre[child] = pre
        self._post[child] = post
        self._depth[child] = self._depth[parent] + 1
        self._parent_link[child] = link
        insort(self._order, (pre, child))

    def _disconnect(self, link: Link) -> None:
        parent, child = self._orient(link)
        bucket = self._children.get(parent)
        if bucket is None or child not in bucket:
            return
        del bucket[child]
        if not bucket:
            del self._children[parent]
        if parent == child:
            self._self_loops -= 1
            if self.tree:
                self._mark_stale()  # shape may be a forest again — renumber
            return
        degree = self._indegree.get(child, 1) - 1
        if degree <= 0:
            self._indegree.pop(child, None)
        else:
            self._indegree[child] = degree
        if degree == 1:
            self._multi_parent -= 1
            if self.tree:
                self._mark_stale()
            return
        if self._cycle:
            # Edge removals can break the cycle; only a rebuild can tell.
            self._mark_stale()
            return
        if self.stale or not self.tree or degree > 0:
            return
        # A tree edge went away: the child becomes a detached root.
        if self._children.get(child):
            self._mark_stale()  # detaching a whole subtree needs renumbering
            return
        self._remove_encoding(child)
        pre = self._max_coord + 1.0
        post = self._max_coord + 2.0
        self._max_coord = post
        self._pre[child] = pre
        self._post[child] = post
        self._depth[child] = 0
        self._order.append((pre, child))

    def _remove_encoding(self, identifier: str) -> None:
        pre = self._pre.pop(identifier, None)
        if pre is None:
            return
        index = bisect_left(self._order, (pre, identifier))
        if index < len(self._order) and self._order[index] == (pre, identifier):
            del self._order[index]
        self._post.pop(identifier, None)
        self._depth.pop(identifier, None)
        self._parent_link.pop(identifier, None)

    def _mark_stale(self) -> None:
        if not self.stale:
            self.stale = True
            self.gap_events += 1

    # -------------------------------------------------------------- closures

    def closure(
        self, root: str, max_depth: Optional[int] = None
    ) -> Optional[Tuple[List[ClosureMember], List[Link]]]:
        """The closure of *root* as ``(members, links)``, or ``None`` when the
        index cannot answer (unknown root / stale encoding) and the caller
        must fall back to the fixpoint loop.

        ``members`` lists ``(identifier, level, parent link)`` in traversal
        order starting at the root; ``links`` replicates the link set the
        fixpoint loop accumulates (every out-edge of every expanded member).
        """
        if self.stale:
            return None
        if self.tree:
            return self._closure_tree(root, max_depth)
        return self._closure_graph(root, max_depth)

    def _closure_tree(
        self, root: str, max_depth: Optional[int]
    ) -> Optional[Tuple[List[ClosureMember], List[Link]]]:
        root_pre = self._pre.get(root)
        if root_pre is None:
            return None
        root_post = self._post[root]
        root_depth = self._depth[root]
        members: List[ClosureMember] = [(root, 0, None)]
        links: List[Link] = []
        lo = bisect_right(self._order, (root_pre, root))
        hi = bisect_left(self._order, (root_post,))
        for _, identifier in self._order[lo:hi]:
            level = self._depth[identifier] - root_depth
            if max_depth is not None and level > max_depth:
                continue
            link = self._parent_link.get(identifier)
            if link is None:
                return None  # encoding hole — resync via fallback
            members.append((identifier, level, link))
            links.append(link)
        return members, links

    def _closure_graph(
        self, root: str, max_depth: Optional[int]
    ) -> Optional[Tuple[List[ClosureMember], List[Link]]]:
        if root not in self._nodes:
            return None
        members: List[ClosureMember] = [(root, 0, None)]
        seen: Set[str] = {root}
        links: List[Link] = []
        link_seen: Set[Link] = set()
        frontier = [root]
        level = 0
        # Mirrors expand_recursive exactly: every out-edge of an expanded
        # member is collected (including edges back into visited nodes), and
        # members at the depth bound are not expanded.
        while frontier and (max_depth is None or level < max_depth):
            level += 1
            next_frontier: List[str] = []
            for identifier in frontier:
                for child, link in self._children.get(identifier, {}).items():
                    if link not in link_seen:
                        link_seen.add(link)
                        links.append(link)
                    if child not in seen:
                        seen.add(child)
                        members.append((child, level, link))
                        next_frontier.append(child)
            frontier = next_frontier
        return members, links

    # -------------------------------------------------------------- pruning

    def may_qualify(
        self,
        root: str,
        candidate_sets: Sequence[Iterable[str]],
        max_depth: Optional[int] = None,
    ) -> bool:
        """Conservative containment test: can the closure of *root* intersect
        **every** candidate set?  ``False`` proves the existential restriction
        fails without materializing the molecule.  Tree mode only.
        """
        if self.stale or not self.tree:
            return True
        root_pre = self._pre.get(root)
        if root_pre is None:
            return True
        root_post = self._post[root]
        root_depth = self._depth[root]
        for candidates in candidate_sets:
            hit = False
            for identifier in candidates:
                if identifier == root:
                    hit = True
                    break
                pre = self._pre.get(identifier)
                if pre is None or not root_pre < pre < root_post:
                    continue
                if max_depth is None or self._depth[identifier] - root_depth <= max_depth:
                    hit = True
                    break
            if not hit:
                return False
        return True

    # ------------------------------------------------------------ persistence

    def encode_state(self) -> Optional[Dict[str, object]]:
        """Serialize the built encoding for a checkpoint image.

        Returns ``None`` while stale — a suspect encoding must never be made
        durable (recovery would otherwise trust it).  Links are stored as
        their ``given_order`` pairs; everything else is plain JSON-safe data.
        """
        if self.stale:
            return None
        return {
            "key": list(self.key),
            "reflexive": self._reflexive,
            "first_type": self._first_type,
            "second_type": self._second_type,
            "cycle": self._cycle,
            "nodes": sorted(self._nodes),
            "edges": sorted(
                [parent, child, list(link.given_order)]
                for parent, bucket in self._children.items()
                for child, link in bucket.items()
            ),
            "pre": dict(self._pre),
            "post": dict(self._post),
            "depth": dict(self._depth),
            "parent_link": {
                child: list(link.given_order)
                for child, link in self._parent_link.items()
            },
            "max_coord": self._max_coord,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Invert :func:`encode_state`: rebuild the index without an
        occurrence pass (``builds`` stays untouched).  Raises ``KeyError`` /
        ``TypeError`` / ``ValueError`` on malformed state — the caller then
        falls back to the lazy rebuild path.
        """
        self._reflexive = bool(state["reflexive"])
        self._first_type = str(state["first_type"])
        self._second_type = str(state["second_type"])
        self._cycle = bool(state["cycle"])
        self._nodes = set(state["nodes"])
        self._children = {}
        self._indegree = {}
        self._multi_parent = 0
        self._self_loops = 0
        links: Dict[Tuple[str, str], Link] = {}
        for parent, child, order in state["edges"]:
            first, second = order
            link = Link(
                self.link_type_name, first, second, self._first_type, self._second_type
            )
            links[(first, second)] = link
            self._children.setdefault(parent, {})[child] = link
            self._nodes.add(parent)
            self._nodes.add(child)
            if parent == child:
                self._self_loops += 1
                continue
            degree = self._indegree.get(child, 0) + 1
            self._indegree[child] = degree
            if degree == 2:
                self._multi_parent += 1
        self._pre = {key: float(value) for key, value in state["pre"].items()}
        self._post = {key: float(value) for key, value in state["post"].items()}
        self._depth = {key: int(value) for key, value in state["depth"].items()}
        self._parent_link = {}
        for child, order in state["parent_link"].items():
            first, second = order
            self._parent_link[child] = links.get((first, second)) or Link(
                self.link_type_name, first, second, self._first_type, self._second_type
            )
        self._order = sorted(
            (pre, identifier) for identifier, pre in self._pre.items()
        )
        self._max_coord = float(state["max_coord"])
        self.stale = False

    # ------------------------------------------------------------- reporting

    def describe(self, samples: int = 3) -> List[str]:
        """Human-readable state lines for EXPLAIN output."""
        mode = "tree/range-scan" if self.tree else "graph/adjacency-BFS"
        lines = [
            f"interval index {self.atom_type_name} via {self.link_type_name} "
            f"{self.direction}: {len(self._nodes)} nodes, mode={mode}, "
            f"generation={self.generation}"
            + (", stale (rebuild on next use)" if self.stale else "")
        ]
        if not self.stale and self.tree and self._order:
            shown = []
            for pre, identifier in self._order[:samples]:
                shown.append(f"{identifier}→({pre:g}, {self._post[identifier]:g})")
            lines.append("  sample intervals: " + ", ".join(shown))
        return lines

    # --------------------------------------------------------------- helpers

    def _orient(self, link: Link) -> Tuple[str, str]:
        """Order the link endpoints as (parent, child) for this direction."""
        if self._reflexive:
            first, second = link.given_order
        else:
            first = link.endpoint_of_type(self._first_type)
            second = link.endpoint_of_type(self._second_type)
            if first is None or second is None:
                pair = tuple(link.identifiers)
                first, second = (pair[0], pair[-1])
        return (first, second) if self.direction == "down" else (second, first)

    def _other_type_name(self) -> str:
        if self.atom_type_name == self._first_type:
            return self._second_type
        return self._first_type


class StructureIndexStore:
    """Registry of structure indexes, shared by the engine and all executors.

    The store's lock is a *leaf* lock: the engine's event path acquires it
    after the per-type head locks and the event lock; readers acquire it
    alone and never touch occurrence state while holding it.
    """

    def __init__(self) -> None:
        self._lock = make_rlock("StructureIndexStore._lock")
        self._indexes: Dict[StructureKey, Optional[StructureIndex]] = {}  # guarded-by: StructureIndexStore._lock
        #: Engine write generation (stamped on every fold and interpreter build).
        self.generation = 0
        #: Pinned-snapshot reads that could not use an index coherently.
        self.snapshot_gaps = 0

    # ---------------------------------------------------------- registration

    def register(self, atom_type_name: str, link_type_name: str, direction: str = "down") -> StructureKey:
        """Declare an accelerated recursive description; built on first use."""
        if direction not in ("down", "up"):
            raise StorageError(
                f"structure index direction must be 'down' or 'up', got {direction!r}"
            )
        key: StructureKey = (atom_type_name, link_type_name, direction)
        with self._lock:
            self._indexes.setdefault(key, None)
        return key

    def registered(self) -> Tuple[StructureKey, ...]:
        with self._lock:
            return tuple(self._indexes)

    def is_registered(self, description: "RecursiveDescription") -> bool:
        with self._lock:
            return structure_key(description) in self._indexes

    def __len__(self) -> int:
        with self._lock:
            return len(self._indexes)

    # ------------------------------------------------------------- execution

    def for_execution(self, description: "RecursiveDescription", ctx) -> Optional[StructureIndex]:
        """The index to answer *description* in *ctx*, or ``None`` (fallback).

        Head contexts rebuild a stale index in place; pinned-snapshot
        contexts only ever use an index whose generation matches the pin and
        whose owning transaction has no private or excluded writes.
        """
        key = structure_key(description)
        with self._lock:
            index = self._indexes.get(key)
            if key not in self._indexes:
                return None
            snapshot = getattr(ctx, "snapshot", None)
            if snapshot is not None:
                if (
                    index is None
                    or index.stale
                    or index.generation != snapshot.generation
                    or getattr(snapshot, "own", None)
                    or getattr(snapshot, "excluded", None)
                ):
                    self.snapshot_gaps += 1
                    return None
                return index
            if index is None:
                index = StructureIndex(key)
                self._indexes[key] = index
            if index.stale:
                index.refresh(ctx.database)
                index.generation = self.generation
            return index

    def closure(self, index: StructureIndex, root: str, max_depth: Optional[int] = None):
        with self._lock:
            return index.closure(root, max_depth)

    def may_qualify(
        self,
        index: StructureIndex,
        root: str,
        candidate_sets: Sequence[Iterable[str]],
        max_depth: Optional[int] = None,
    ) -> bool:
        with self._lock:
            return index.may_qualify(root, candidate_sets, max_depth)

    def supports_pruning(self, index: StructureIndex) -> bool:
        with self._lock:
            return not index.stale and index.tree

    # ----------------------------------------------------------- maintenance

    def apply_event(self, event: ChangeEvent, generation: Optional[int] = None) -> None:
        """Fold one change event into every built index."""
        with self._lock:
            if generation is not None:
                self.generation = generation
            for index in self._indexes.values():
                if index is None:
                    continue
                index.apply_event(event)
                if generation is not None:
                    index.generation = generation

    def mark_all_stale(self) -> None:
        """Engine cache invalidation: indexes resync on next head use."""
        with self._lock:
            for index in self._indexes.values():
                if index is not None:
                    index._mark_stale()

    def stamp(self, generation: int) -> None:
        """Record the engine generation the built indexes are coherent with."""
        with self._lock:
            self.generation = generation
            for index in self._indexes.values():
                if index is not None and not index.stale:
                    index.generation = generation

    # ------------------------------------------------------------ persistence

    def encoded_states(self) -> List[Dict[str, object]]:
        """Serialized encodings of every built, non-stale index (checkpointing)."""
        with self._lock:
            states = []
            for index in self._indexes.values():
                if index is None:
                    continue
                state = index.encode_state()
                if state is not None:
                    states.append(state)
            return states

    def restore_states(self, states: Iterable[Dict[str, object]]) -> int:
        """Restore checkpointed encodings onto registered keys; returns how
        many were restored.  Unregistered keys and malformed entries are
        skipped — those indexes simply rebuild lazily, exactly as before
        encodings were persisted.
        """
        restored = 0
        with self._lock:
            for state in states:
                try:
                    key: StructureKey = tuple(state["key"])  # type: ignore[assignment]
                except (KeyError, TypeError):
                    continue
                if key not in self._indexes:
                    continue
                index = StructureIndex(key)
                try:
                    index.restore_state(state)
                except (KeyError, TypeError, ValueError):
                    continue
                index.generation = self.generation
                self._indexes[key] = index
                restored += 1
        return restored

    # ------------------------------------------------------------- reporting

    def describe(self, description: "RecursiveDescription") -> List[str]:
        key = structure_key(description)
        with self._lock:
            if key not in self._indexes:
                return []
            index = self._indexes[key]
            if index is None:
                return [
                    f"interval index {key[0]} via {key[1]} {key[2]}: registered, "
                    "built on first use"
                ]
            return index.describe()

    def statistics(self) -> Dict[str, int]:
        with self._lock:
            builds = sum(i.builds for i in self._indexes.values() if i is not None)
            gaps = sum(i.gap_events for i in self._indexes.values() if i is not None)
            return {
                "structure_indexes": len(self._indexes),
                "structure_builds": builds,
                "structure_gap_events": gaps,
                "structure_snapshot_gaps": self.snapshot_gaps,
                "structure_generation": self.generation,
            }
