"""The link store: adjacency-indexed storage of links per link type.

Links are kept both as a set (for containment tests) and as an adjacency map
``atom identifier -> {links}`` so that the hierarchical join of molecule
derivation is a constant-time neighbour expansion rather than a scan — the
storage-level reason molecule processing touches fewer tuples than the
relational join plan over junction relations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.core.link import Link
from repro.exceptions import StorageError


class LinkStore:
    """Stores the links of a single link type with bidirectional adjacency."""

    def __init__(self, link_type_name: str, first_type: str, second_type: str) -> None:
        self.link_type_name = link_type_name
        self.first_type = first_type
        self.second_type = second_type
        self._links: Set[Link] = set()
        self._adjacency: Dict[str, Set[Link]] = {}
        self.reads = 0
        self.writes = 0

    @property
    def is_reflexive(self) -> bool:
        """``True`` when both endpoint types coincide."""
        return self.first_type == self.second_type

    # ----------------------------------------------------------------- write

    def store(self, first: str, second: str) -> Link:
        """Insert the link ``(first, second)`` (idempotent)."""
        link = Link(self.link_type_name, first, second, self.first_type, self.second_type)
        if link in self._links:
            return link
        self._links.add(link)
        for identifier in link.identifiers:
            self._adjacency.setdefault(identifier, set()).add(link)
        self.writes += 1
        return link

    def delete(self, link: Link) -> None:
        """Remove *link* (no error when absent)."""
        if link not in self._links:
            return
        self._links.discard(link)
        for identifier in link.identifiers:
            bucket = self._adjacency.get(identifier)
            if bucket is not None:
                bucket.discard(link)
                if not bucket:
                    del self._adjacency[identifier]
        self.writes += 1

    def delete_atom(self, identifier: str) -> int:
        """Remove every link incident to *identifier*; returns the number removed."""
        links = list(self._adjacency.get(identifier, ()))
        for link in links:
            self.delete(link)
        return len(links)

    # ------------------------------------------------------------------ read

    def neighbours(self, identifier: str) -> FrozenSet[str]:
        """Identifiers directly linked to *identifier*."""
        self.reads += 1
        return frozenset(
            link.other(identifier) for link in self._adjacency.get(identifier, ())
        )

    def links_of(self, identifier: str) -> FrozenSet[Link]:
        """Links incident to *identifier*."""
        self.reads += 1
        return frozenset(self._adjacency.get(identifier, ()))

    def scan(self) -> Tuple[Link, ...]:
        """All links of the store."""
        self.reads += len(self._links)
        return tuple(self._links)

    def degree(self, identifier: str) -> int:
        """Number of links incident to *identifier*."""
        return len(self._adjacency.get(identifier, ()))

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    def __contains__(self, link: object) -> bool:
        return link in self._links

    def __repr__(self) -> str:
        return (
            f"LinkStore({self.link_type_name!r}, {self.first_type!r} -- {self.second_type!r}, "
            f"links={len(self)})"
        )
