"""Storage substrate: the PRIMA-like two-layer engine (§5).

The paper reports that the PRIMA prototype's "internal architecture shows two
main components influenced by the construction of the molecule algebra: the
basic component provides an atom-oriented interface (similar to the
functionality of atom-type algebra) for the second component that performs
molecule processing and implements an MQL interface".

This package reproduces that architecture in memory:

* :mod:`repro.storage.atom_store` / :mod:`repro.storage.link_store` — flat
  stores with identifier lookup and secondary indexes,
* :mod:`repro.storage.network` — the atom-network adjacency view used for fast
  link traversal,
* :mod:`repro.storage.engine` — the two-layer :class:`PrimaEngine`: an
  atom-oriented interface below, a molecule-processing interface (backed by
  the molecule algebra and MQL) above.

The substitution from the paper's C/mainframe prototype to pure Python is
documented in DESIGN.md; the layering and the operation split are preserved.
"""

from repro.storage.atom_store import AtomStore
from repro.storage.engine import PrimaEngine, SnapshotHandle
from repro.storage.index import HashIndex
from repro.storage.link_store import LinkStore
from repro.storage.network import AtomNetwork
from repro.storage.recovery import RecoveryResult
from repro.storage.replication import (
    FollowerEngine,
    ReplicationError,
    ReplicationHub,
)
from repro.storage.wal import DurabilityConfig, WalError, WriteAheadLog, read_wal

__all__ = [
    "AtomNetwork",
    "AtomStore",
    "DurabilityConfig",
    "FollowerEngine",
    "HashIndex",
    "LinkStore",
    "PrimaEngine",
    "RecoveryResult",
    "ReplicationError",
    "ReplicationHub",
    "SnapshotHandle",
    "WalError",
    "WriteAheadLog",
    "read_wal",
]
