"""Deterministic wire codec for shipping compiled plans between processes.

The process-pool executor (:mod:`repro.engine.procpool`) runs compiled
logical plans in worker processes seeded from the primary's checkpoint image
and WAL tail.  Everything that crosses the pipe goes through this module:

* **plans** — the read-only logical plan IR (α/Σ/Π/Ω/Δ/Ψ, recursive and
  columnar variants) with its predicate trees, descriptions and aggregate
  specs;
* **results** — molecule result sets (as their canonical
  ``to_nested_dict()`` renderings) and aggregate row sets;
* **partial aggregation states** — per-group accumulator states a
  partitioned Γ worker returns for the primary to merge through
  :func:`repro.engine.physical.merge_group_accumulators`.

Determinism is a contract, not an accident: every payload serializes via
``json.dumps(sort_keys=True, separators=(",", ":"))`` on top of the WAL's
:func:`~repro.storage.wal.encode_value` value codec (which already renders
sets in sorted-repr order), so encode → decode → encode is byte-identical.
That is what lets tests fingerprint shipped results against serial
execution, and what keeps a re-shipped plan hitting the same worker-side
bytes every time.

Opaque predicates (:class:`~repro.core.predicates.PredicateFormula` wraps an
arbitrary Python callable) cannot be shipped; the codec raises
:class:`ShippingError` and the router falls back to primary-side execution.
Write plans are refused for the same reason workers are read-only replicas.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.molecule import MoleculeTypeDescription
from repro.core.predicates import (
    And,
    AttributeRef,
    Comparison,
    FalseFormula,
    Formula,
    Not,
    Or,
    PredicateFormula,
    TrueFormula,
)
from repro.core.recursion import RecursiveDescription
from repro.engine.logical import (
    AggregatePlan,
    AggregateSpec,
    ColumnarAggregatePlan,
    DefinePlan,
    IntervalScanPlan,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
)
from repro.exceptions import StorageError
from repro.storage.wal import decode_value, encode_value


class ShippingError(StorageError):
    """A plan or value cannot cross the process boundary deterministically."""


# ------------------------------------------------------------------ formulas


def encode_formula(formula: Optional[Formula]) -> Optional[Dict[str, object]]:
    """Encode a predicate tree as tagged JSON-safe dicts."""
    if formula is None:
        return None
    if isinstance(formula, TrueFormula):
        return {"k": "true"}
    if isinstance(formula, FalseFormula):
        return {"k": "false"}
    if isinstance(formula, Comparison):
        rhs: Dict[str, object]
        if isinstance(formula.rhs, AttributeRef):
            rhs = _encode_ref(formula.rhs)
        else:
            rhs = {"k": "const", "v": encode_value(formula.rhs)}
        return {"k": "cmp", "l": _encode_ref(formula.lhs), "op": formula.op, "r": rhs}
    if isinstance(formula, And):
        return {"k": "and", "ops": [encode_formula(op) for op in formula.operands]}
    if isinstance(formula, Or):
        return {"k": "or", "ops": [encode_formula(op) for op in formula.operands]}
    if isinstance(formula, Not):
        return {"k": "not", "op": encode_formula(formula.operand)}
    if isinstance(formula, PredicateFormula):
        raise ShippingError(
            f"cannot ship opaque predicate {formula!r}: PredicateFormula wraps "
            "an arbitrary callable — execute on the primary instead"
        )
    raise ShippingError(f"cannot ship unknown formula type {type(formula).__name__}")


def decode_formula(payload: Optional[Dict[str, object]]) -> Optional[Formula]:
    if payload is None:
        return None
    kind = payload["k"]
    if kind == "true":
        return TrueFormula()
    if kind == "false":
        return FalseFormula()
    if kind == "cmp":
        rhs_payload = payload["r"]
        if rhs_payload["k"] == "ref":
            rhs: object = _decode_ref(rhs_payload)
        else:
            rhs = decode_value(rhs_payload["v"])
        return Comparison(_decode_ref(payload["l"]), payload["op"], rhs)
    if kind == "and":
        return And(*[decode_formula(op) for op in payload["ops"]])
    if kind == "or":
        return Or(*[decode_formula(op) for op in payload["ops"]])
    if kind == "not":
        return Not(decode_formula(payload["op"]))
    raise ShippingError(f"cannot decode unknown formula tag {kind!r}")


def _encode_ref(ref: AttributeRef) -> Dict[str, object]:
    return {"k": "ref", "a": ref.attribute, "t": ref.atom_type}


def _decode_ref(payload: Dict[str, object]) -> AttributeRef:
    return AttributeRef(payload["a"], payload["t"])


# -------------------------------------------------------------- descriptions


def _encode_description(description: MoleculeTypeDescription) -> Dict[str, object]:
    return {
        "names": list(description.atom_type_names),
        "links": [
            [dl.link_type_name, dl.source, dl.target]
            for dl in description.directed_links
        ],
    }


def _decode_description(payload: Dict[str, object]) -> MoleculeTypeDescription:
    return MoleculeTypeDescription(
        payload["names"], [tuple(entry) for entry in payload["links"]]
    )


def _encode_recursive(description: RecursiveDescription) -> Dict[str, object]:
    return {
        "atom": description.atom_type_name,
        "link": description.link_type_name,
        "dir": description.direction,
        "depth": description.max_depth,
    }


def _decode_recursive(payload: Dict[str, object]) -> RecursiveDescription:
    return RecursiveDescription(
        payload["atom"], payload["link"], payload["dir"], payload["depth"]
    )


def _encode_spec(spec: AggregateSpec) -> Dict[str, object]:
    return {
        "func": spec.func,
        "attr": _encode_ref(spec.attribute) if spec.attribute is not None else None,
        "component": spec.component,
        "output": spec.output,
        "distinct": spec.distinct,
    }


def _decode_spec(payload: Dict[str, object]) -> AggregateSpec:
    attr = payload["attr"]
    return AggregateSpec(
        payload["func"],
        attribute=_decode_ref(attr) if attr is not None else None,
        component=payload["component"],
        output=payload["output"],
        distinct=payload["distinct"],
    )


# -------------------------------------------------------------------- plans


def encode_plan(plan: PlanNode) -> Dict[str, object]:
    """Encode a read-only logical plan as tagged JSON-safe dicts.

    Raises :class:`ShippingError` on write nodes and on plans carrying
    opaque predicates.
    """
    if isinstance(plan, DefinePlan):
        return {
            "k": "define",
            "name": plan.name,
            "d": _encode_description(plan.description),
            "f": encode_formula(plan.root_filter),
            "access": list(plan.root_access) if plan.root_access is not None else None,
        }
    if isinstance(plan, RestrictPlan):
        return {"k": "restrict", "c": encode_plan(plan.child), "f": encode_formula(plan.formula)}
    if isinstance(plan, ProjectPlan):
        return {
            "k": "project",
            "c": encode_plan(plan.child),
            "names": list(plan.atom_type_names),
        }
    if isinstance(plan, (RecursivePlan, IntervalScanPlan)):
        return {
            "k": "interval" if isinstance(plan, IntervalScanPlan) else "recursive",
            "name": plan.name,
            "d": _encode_recursive(plan.description),
            "f": encode_formula(plan.formula),
        }
    if isinstance(plan, SetOpPlan):
        return {
            "k": "setop",
            "op": plan.operator,
            "l": encode_plan(plan.left),
            "r": encode_plan(plan.right),
            "name": plan.name,
        }
    if isinstance(plan, AggregatePlan):
        return {
            "k": "aggregate",
            "c": encode_plan(plan.child),
            "by": [_encode_ref(ref) for ref in plan.group_by],
            "specs": [_encode_spec(spec) for spec in plan.aggregates],
            "strategy": plan.strategy,
        }
    if isinstance(plan, ColumnarAggregatePlan):
        return {
            "k": "columnar",
            "atom": plan.atom_type_name,
            "by": [_encode_ref(ref) for ref in plan.group_by],
            "specs": [_encode_spec(spec) for spec in plan.aggregates],
            "f": encode_formula(plan.root_filter),
            "name": plan.name,
        }
    raise ShippingError(
        f"cannot ship plan node {type(plan).__name__}: only read-only plans "
        "travel to worker processes"
    )


def decode_plan(payload: Dict[str, object]) -> PlanNode:
    kind = payload["k"]
    if kind == "define":
        access = payload["access"]
        return DefinePlan(
            payload["name"],
            _decode_description(payload["d"]),
            root_filter=decode_formula(payload["f"]),
            root_access=tuple(access) if access is not None else None,
        )
    if kind == "restrict":
        return RestrictPlan(decode_plan(payload["c"]), decode_formula(payload["f"]))
    if kind == "project":
        return ProjectPlan(decode_plan(payload["c"]), tuple(payload["names"]))
    if kind in ("recursive", "interval"):
        node = RecursivePlan if kind == "recursive" else IntervalScanPlan
        return node(
            payload["name"],
            _decode_recursive(payload["d"]),
            formula=decode_formula(payload["f"]),
        )
    if kind == "setop":
        return SetOpPlan(
            payload["op"],
            decode_plan(payload["l"]),
            decode_plan(payload["r"]),
            name=payload["name"],
        )
    if kind == "aggregate":
        return AggregatePlan(
            decode_plan(payload["c"]),
            tuple(_decode_ref(ref) for ref in payload["by"]),
            tuple(_decode_spec(spec) for spec in payload["specs"]),
            strategy=payload["strategy"],
        )
    if kind == "columnar":
        return ColumnarAggregatePlan(
            payload["atom"],
            tuple(_decode_ref(ref) for ref in payload["by"]),
            tuple(_decode_spec(spec) for spec in payload["specs"]),
            root_filter=decode_formula(payload["f"]),
            name=payload["name"],
        )
    raise ShippingError(f"cannot decode unknown plan tag {kind!r}")


def plan_to_json(plan: PlanNode) -> str:
    """The canonical wire form: sorted keys, no whitespace — byte-stable."""
    return json.dumps(encode_plan(plan), sort_keys=True, separators=(",", ":"))


def plan_from_json(payload: str) -> PlanNode:
    return decode_plan(json.loads(payload))


# ---------------------------------------------------- aggregation state wire


def encode_group_states(specs, groups) -> List[List[object]]:
    """Encode partitioned Γ accumulator states (``{key: _GroupAccumulator}``).

    Group keys sort canonically so the wire form is order-independent;
    set-valued targets (components, DISTINCT) ride the WAL codec's sorted
    ``__set__`` rendering, value maps become sorted ``[identifier, value]``
    pairs.
    """
    entries: List[List[object]] = []
    for key, accumulator in groups.items():
        targets: List[object] = []
        for spec, target in zip(specs, accumulator.targets):
            if spec.component is not None or spec.distinct:
                targets.append(encode_value(set(target)))
            elif spec.attribute is not None:
                targets.append(
                    [
                        [identifier, encode_value(value)]
                        for identifier, value in sorted(target.items())
                    ]
                )
            else:
                targets.append(None)
        entries.append([[encode_value(value) for value in key], accumulator.count, targets])
    entries.sort(key=lambda entry: json.dumps(entry[0], sort_keys=True, default=str))
    return entries


def decode_group_states(specs, entries: Iterable[List[object]]):
    """Decode :func:`encode_group_states` payloads back into accumulators."""
    from repro.engine.physical import _GroupAccumulator

    groups = {}
    for key_payload, count, targets in entries:
        key = tuple(decode_value(value) for value in key_payload)
        accumulator = _GroupAccumulator(specs)
        accumulator.count = count
        for index, (spec, target) in enumerate(zip(specs, targets)):
            if spec.component is not None or spec.distinct:
                accumulator.targets[index] = set(decode_value(target))
            elif spec.attribute is not None:
                accumulator.targets[index] = {
                    identifier: decode_value(value) for identifier, value in target
                }
        groups[key] = accumulator
    return groups


# ------------------------------------------------------------------- results


def encode_molecule_result(molecules) -> Dict[str, object]:
    """Encode a molecule result set as canonical nested-dict renderings.

    ``to_nested_dict`` already orders siblings by identifier, so the per-
    molecule rendering is canonical; list order is the worker's scan order.
    """
    return {
        "kind": "molecules",
        "dicts": [encode_value(molecule.to_nested_dict()) for molecule in molecules],
    }


def encode_row_result(columns: Tuple[str, ...], rows) -> Dict[str, object]:
    return {
        "kind": "rows",
        "columns": list(columns),
        "rows": [[encode_value(value) for value in row] for row in rows],
    }


class ShippedQueryResult:
    """A query result that crossed the process boundary.

    Quacks like :class:`repro.mql.interpreter.QueryResult` for read-side
    consumers: ``to_dicts()``, ``columns``/``rows``, ``len()`` and iteration
    over the nested-dict molecule renderings.  (There is no live database
    behind it — molecule objects stay in the worker; what travels is their
    canonical rendering, which is also what byte-parity is defined over.)
    """

    def __init__(
        self,
        statement: str,
        dicts: Optional[List[dict]] = None,
        columns: Optional[Tuple[str, ...]] = None,
        rows: Optional[Tuple[Tuple, ...]] = None,
        counters: Optional[Dict[str, int]] = None,
        dispatch: str = "process",
    ) -> None:
        self.statement = statement
        self._dicts = dicts
        self.columns = columns
        self.rows = rows
        self.counters = dict(counters or {})
        #: How the router executed this statement: ``"process"`` (shipped),
        #: ``"process-partitioned"`` (fanned out) — fallbacks return the
        #: primary's own ``QueryResult`` instead of this class.
        self.dispatch = dispatch

    @classmethod
    def from_payload(
        cls, statement: str, payload: Dict[str, object], dispatch: str = "process"
    ) -> "ShippedQueryResult":
        counters = payload.get("counters")
        if payload["kind"] == "rows":
            return cls(
                statement,
                columns=tuple(payload["columns"]),
                rows=tuple(
                    tuple(decode_value(value) for value in row)
                    for row in payload["rows"]
                ),
                counters=counters,
                dispatch=dispatch,
            )
        return cls(
            statement,
            dicts=[decode_value(entry) for entry in payload["dicts"]],
            counters=counters,
            dispatch=dispatch,
        )

    def to_dicts(self) -> List[dict]:
        if self.rows is not None:
            return [dict(zip(self.columns or (), row)) for row in self.rows]
        return list(self._dicts or [])

    def __len__(self) -> int:
        if self.rows is not None:
            return len(self.rows)
        return len(self._dicts or [])

    def __iter__(self):
        return iter(self.to_dicts())

    def __repr__(self) -> str:
        shape = (
            f"{len(self.rows)} rows" if self.rows is not None else f"{len(self)} molecules"
        )
        return f"ShippedQueryResult({self.statement!r}, {shape}, {self.dispatch})"
