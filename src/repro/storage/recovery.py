"""Crash recovery: checkpoint images and redo-only WAL replay.

Recovery rebuilds a :class:`~repro.storage.engine.PrimaEngine` from its
durability directory in two phases:

1. **Checkpoint load** — ``checkpoint.json`` is a compact catalog + occurrence
   image (atom types with their attribute descriptions and atoms, link types
   with cardinalities and links, secondary indexes, the write generation).
   Checkpoints are written atomically: the image goes to a temporary file,
   is fsynced, and replaces the previous image via :func:`os.replace` — a
   crash mid-checkpoint leaves the old image intact.
2. **WAL replay** — every valid record after the checkpoint is applied in
   append order: DDL records re-create types and indexes, commit records
   replay their change events against the stores.  Only committed
   transactions ever reach the log (events are buffered per transaction and
   written as one record at commit), and :func:`repro.storage.wal.read_wal`
   discards torn final records by checksum — so replay is pure redo and the
   recovered state is exactly the pre-crash committed head.

After replay the engine's write generation continues from the highest stamp
seen, and the atom surrogate counter is bumped past every replayed surrogate
identifier so new inserts cannot collide with recovered atoms.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.core.atom import Atom, ensure_surrogate_counter
from repro.core.attributes import AtomTypeDescription, AttributeDescription
from repro.core.events import (
    ATOM_DELETED,
    ATOM_INSERTED,
    ATOM_MODIFIED,
    LINK_CONNECTED,
    LINK_DISCONNECTED,
    ChangeEvent,
)
from repro.core.link import Cardinality, Link
from repro.storage.wal import (
    DurabilityConfig,
    WalError,
    WalScan,
    decode_value,
    encode_value,
    read_wal,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.engine import PrimaEngine

#: Checkpoint image format version (bumped on incompatible layout changes).
CHECKPOINT_FORMAT = 1

#: Surrogate identifiers have the form ``<type>#<n>`` (see repro.core.atom).
_SURROGATE = re.compile(r"#(\d+)$")


@dataclass
class RecoveryResult:
    """What one recovery pass did (reported via ``maintenance_report()``)."""

    checkpoint_loaded: bool = False
    records_replayed: int = 0
    events_replayed: int = 0
    ddl_replayed: int = 0
    discarded_bytes: int = 0
    generation: int = 0


# -------------------------------------------------------------- descriptions


def describe_attributes(description: AtomTypeDescription) -> List[Dict[str, object]]:
    """Serialize an atom-type description for a checkpoint or DDL record."""
    serialized = []
    for attribute in description:
        entry: Dict[str, object] = {"name": attribute.name, "type": attribute.data_type.value}
        if attribute.allowed_values is not None:
            entry["allowed"] = sorted(
                (encode_value(value) for value in attribute.allowed_values),
                key=repr,
            )
        if attribute.required:
            entry["required"] = True
        if attribute.doc:
            entry["doc"] = attribute.doc
        serialized.append(entry)
    return serialized


def restore_attributes(serialized: Iterable[Dict[str, object]]) -> AtomTypeDescription:
    """Invert :func:`describe_attributes`."""
    return AtomTypeDescription(
        [
            AttributeDescription(
                entry["name"],
                entry.get("type", "any"),
                allowed_values=(
                    [decode_value(value) for value in entry["allowed"]]
                    if "allowed" in entry
                    else None
                ),
                required=bool(entry.get("required", False)),
                doc=str(entry.get("doc", "")),
            )
            for entry in serialized
        ]
    )


# --------------------------------------------------------------- checkpoints


def checkpoint_image(engine: "PrimaEngine") -> Dict[str, object]:
    """A compact catalog + occurrence image of the engine's stores."""
    atom_types = []
    for store in engine._atom_stores.values():
        atom_types.append(
            {
                "name": store.atom_type_name,
                "attributes": describe_attributes(store.description),
                "atoms": [
                    {"id": atom.identifier, "v": encode_value(atom.values)}
                    for atom in sorted(store, key=lambda a: a.identifier)
                ],
                "indexes": sorted(
                    name for name in store.description.names if store.has_index(name)
                ),
            }
        )
    link_types = []
    for store in engine._link_stores.values():
        cardinality = engine._cardinalities.get(store.link_type_name)
        link_types.append(
            {
                "name": store.link_type_name,
                "first": store.first_type,
                "second": store.second_type,
                "cardinality": (cardinality or Cardinality.MANY_TO_MANY).value,
                "links": sorted(link.given_order for link in store),
            }
        )
    return {
        "format": CHECKPOINT_FORMAT,
        "name": engine.name,
        "generation": engine.generation,
        "atom_types": atom_types,
        "link_types": link_types,
        "structure_indexes": sorted(engine._structure_indexes.registered()),
        # Built, non-stale interval encodings travel with the image so
        # recovery restores them directly instead of re-deriving each from a
        # full occurrence pass on first use (absent in older images — those
        # simply keep the lazy-rebuild behaviour).
        "structure_encodings": engine._structure_indexes.encoded_states(),
    }


def write_checkpoint(engine: "PrimaEngine", config: DurabilityConfig) -> Path:
    """Write the checkpoint image atomically (tmp file + fsync + rename)."""
    path = config.checkpoint_path
    path.parent.mkdir(parents=True, exist_ok=True)
    image = checkpoint_image(engine)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(image, handle, separators=(",", ":"), sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)
    return path


def load_checkpoint(config: DurabilityConfig) -> Optional[Dict[str, object]]:
    """Read the checkpoint image, or ``None`` when none has been written."""
    path = config.checkpoint_path
    if not path.exists():
        return None
    image = json.loads(path.read_text(encoding="utf-8"))
    if image.get("format") != CHECKPOINT_FORMAT:
        raise WalError(
            f"unsupported checkpoint format {image.get('format')!r} in {path}"
        )
    return image


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by fsyncing its directory (best effort off-POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -------------------------------------------------------------------- replay


def apply_checkpoint(engine: "PrimaEngine", image: Dict[str, object]) -> int:
    """Recreate catalog and occurrences from a checkpoint image; returns the
    highest surrogate ordinal seen."""
    highest = 0
    for entry in image.get("atom_types", ()):
        store = engine.create_atom_type(entry["name"], restore_attributes(entry["attributes"]))
        for record in entry.get("atoms", ()):
            identifier = record["id"]
            store.store(Atom(entry["name"], decode_value(record["v"]), identifier=identifier))
            highest = max(highest, _surrogate_ordinal(identifier))
        for attribute in entry.get("indexes", ()):
            store.create_index(attribute)
    for entry in image.get("link_types", ()):
        engine.create_link_type(
            entry["name"],
            entry["first"],
            entry["second"],
            cardinality=Cardinality(entry.get("cardinality", Cardinality.MANY_TO_MANY.value)),
        )
        store = engine._link_stores[entry["name"]]
        for first, second in entry.get("links", ()):
            store.store(first, second)
    for atom_type, link_type, direction in image.get("structure_indexes", ()):
        engine.create_structure_index(atom_type, link_type, direction)
    engine._structure_indexes.restore_states(image.get("structure_encodings", ()))
    return highest


def apply_ddl_record(engine: "PrimaEngine", record: Dict[str, object]) -> None:
    """Replay one DDL record (atom type / link type / index creation).

    Replay is create-if-absent: after a crash *between* the checkpoint image
    write and the WAL truncate, the next recovery loads an image that
    already contains the types the un-truncated log re-creates — like event
    replay, DDL replay must be idempotent for that window to be safe.
    """
    op = record.get("op")
    if op == "atom_type":
        if record["name"] not in engine._atom_stores:
            engine.create_atom_type(record["name"], restore_attributes(record["attributes"]))
    elif op == "link_type":
        if record["name"] not in engine._link_stores:
            engine.create_link_type(
                record["name"],
                record["first"],
                record["second"],
                cardinality=Cardinality(
                    record.get("cardinality", Cardinality.MANY_TO_MANY.value)
                ),
            )
    elif op == "index":
        engine.create_index(record["type"], record["attribute"])
    elif op == "structure_index":
        engine.create_structure_index(
            record["type"], record["link"], record.get("direction", "down")
        )
    else:
        raise WalError(f"unknown DDL operation {op!r} in WAL record")


def apply_event_record(engine: "PrimaEngine", event: Dict[str, object]) -> int:
    """Replay one serialized change event against the stores; returns the
    highest surrogate ordinal it introduced.

    Each replayed mutation is also folded into the structure-index store as a
    :class:`~repro.core.events.ChangeEvent` — encodings restored from the
    checkpoint image stay coherent across the WAL tail exactly as they do
    across live writes (and mark themselves stale on anything the in-place
    scheme cannot express).
    """
    tag = event.get("e")
    type_name = event["t"]
    if tag in ("ai", "am"):
        store = engine._atom_stores[type_name]
        identifier = event["id"]
        atom = Atom(type_name, decode_value(event["v"]), identifier=identifier)
        store.store(atom)
        kind = ATOM_INSERTED if tag == "ai" else ATOM_MODIFIED
        engine._structure_indexes.apply_event(ChangeEvent(kind, type_name, atom=atom))
        return _surrogate_ordinal(identifier)
    if tag == "ad":
        store = engine._atom_stores[type_name]
        if event["id"] in store:
            store.delete(event["id"])
        engine._structure_indexes.apply_event(
            ChangeEvent(ATOM_DELETED, type_name, atom=Atom(type_name, {}, identifier=event["id"]))
        )
        return 0
    if tag == "lc":
        link_store = engine._link_stores[type_name]
        link_store.store(event["f"], event["s"])
        engine._structure_indexes.apply_event(
            ChangeEvent(
                LINK_CONNECTED,
                type_name,
                link=Link(
                    type_name, event["f"], event["s"], link_store.first_type, link_store.second_type
                ),
            )
        )
        return 0
    if tag == "ld":
        link_store = engine._link_stores[type_name]
        link = Link(
            type_name, event["f"], event["s"], link_store.first_type, link_store.second_type
        )
        link_store.delete(link)
        engine._structure_indexes.apply_event(
            ChangeEvent(LINK_DISCONNECTED, type_name, link=link)
        )
        return 0
    raise WalError(f"unknown event tag {tag!r} in commit record")


def _surrogate_ordinal(identifier: object) -> int:
    """The numeric suffix of a ``<type>#<n>`` surrogate identifier, or 0."""
    if not isinstance(identifier, str):
        return 0
    match = _SURROGATE.search(identifier)
    return int(match.group(1)) if match else 0


def recover(engine: "PrimaEngine", config: DurabilityConfig) -> RecoveryResult:
    """Rebuild *engine* from its durability directory (checkpoint + WAL).

    Called by :class:`~repro.storage.engine.PrimaEngine` during construction,
    before the WAL is opened for appending — nothing replayed here is ever
    re-logged.  Returns the telemetry ``maintenance_report()`` exposes.
    """
    Path(config.directory).mkdir(parents=True, exist_ok=True)
    result = RecoveryResult()
    highest_surrogate = 0
    image = load_checkpoint(config)
    if image is not None:
        highest_surrogate = apply_checkpoint(engine, image)
        result.checkpoint_loaded = True
        result.generation = int(image.get("generation", 0))
    scan: WalScan = read_wal(config.wal_path)
    result.discarded_bytes = scan.discarded_bytes
    if scan.discarded_bytes:
        # The torn/corrupt tail is dead bytes: physically truncate it now,
        # before the engine reopens the log in append mode — otherwise the
        # records committed after this recovery would sit *behind* the
        # invalid bytes and be discarded by the next recovery.
        with open(config.wal_path, "r+b") as handle:
            handle.truncate(scan.valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    for record in scan.records:
        kind = record.get("r")
        if kind == "ddl":
            apply_ddl_record(engine, record)
            result.ddl_replayed += 1
        elif kind == "commit":
            for event in record.get("events", ()):
                highest_surrogate = max(
                    highest_surrogate, apply_event_record(engine, event)
                )
                result.events_replayed += 1
            result.generation = max(result.generation, int(record.get("gen", 0)))
        else:
            raise WalError(f"unknown WAL record kind {kind!r}")
        result.records_replayed += 1
    ensure_surrogate_counter(highest_surrogate)
    engine.generation = max(engine.generation, result.generation)
    return result
