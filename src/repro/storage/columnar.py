"""Read-optimized columnar projections of per-type snapshot state.

Aggregate scans (MQL ``GROUP BY``/aggregate functions) visit every atom of a
type but touch only a handful of attributes.  The row layout makes each visit
a dict traversal; a :class:`ColumnarProjection` instead keeps one Python list
per attribute, parallel to an identifier list, so the aggregate fold becomes
tight list indexing — several times faster on wide occurrences and friendlier
to the allocator (the per-atom dicts are never touched).

Projections are built lazily on first head use (no DDL — any atom type is
eligible) and maintained incrementally from the engine's change-event stream:
inserts append, deletes swap-remove, modifications patch in place.  MVCC
follows the structure-index rules exactly: every projection is
generation-stamped by the owning engine, a pinned snapshot is served only
when the stamp equals the pin and the snapshot carries no private or
excluded writes, and anything else counts a ``snapshot_gap`` — the operator
then falls back to the row path over the pinned view, preserving byte
parity.  All counters surface through ``maintenance_report()``.
"""

from __future__ import annotations

from repro.analysis.runtime import make_rlock
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.events import (
    ATOM_DELETED,
    ATOM_INSERTED,
    ATOM_MODIFIED,
    ChangeEvent,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import Database


class ColumnarProjection:
    """Per-type attribute arrays: one identifier list plus one list per attribute.

    Not internally synchronized — the owning :class:`ColumnarStore` wraps
    every entry point in its lock.  Readers receive the live lists; the
    engine's single-writer discipline (folds happen under the engine locks,
    head reads on the owning thread) makes that safe, and pinned-snapshot
    readers only ever see a projection provably coherent with their pin.
    """

    def __init__(self, type_name: str) -> None:
        self.type_name = type_name
        #: Write generation the arrays are coherent with (stamped by the store).
        self.generation = 0
        #: ``True`` until built; set again when maintenance loses sync.
        self.stale = True
        #: Full rebuilds performed (one occurrence pass each).
        self.builds = 0
        #: Incremental maintenance gave up (missed events — rebuild next use).
        self.gap_events = 0
        self.identifiers: List[str] = []
        self._columns: Dict[str, List[object]] = {}
        self._row_of: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.identifiers)

    def __repr__(self) -> str:
        flag = ", stale" if self.stale else ""
        return (
            f"ColumnarProjection({self.type_name}, {len(self.identifiers)} rows, "
            f"{len(self._columns)} columns{flag})"
        )

    def column(self, attribute: str) -> List[object]:
        """The value array of *attribute* (parallel to :attr:`identifiers`)."""
        return self._columns[attribute]

    # --------------------------------------------------------------- rebuild

    def refresh(self, database: "Database") -> None:
        """Rebuild the arrays from the current occurrence (sorted by identifier)."""
        atom_type = database.atyp(self.type_name)
        attributes = tuple(atom_type.description.names)
        atoms = sorted(atom_type, key=lambda atom: atom.identifier)
        self.identifiers = [atom.identifier for atom in atoms]
        self._columns = {
            attribute: [atom.get(attribute) for atom in atoms]
            for attribute in attributes
        }
        self._row_of = {
            identifier: row for row, identifier in enumerate(self.identifiers)
        }
        self.stale = False
        self.builds += 1

    # ----------------------------------------------- incremental maintenance

    def apply_event(self, event: ChangeEvent) -> None:
        """Fold one atom-level change event into the arrays."""
        if self.stale or event.atom is None:
            return
        identifier = event.atom.identifier
        row = self._row_of.get(identifier)
        if event.kind == ATOM_DELETED:
            if row is None:
                return
            last = len(self.identifiers) - 1
            moved = self.identifiers[last]
            self.identifiers[row] = moved
            self.identifiers.pop()
            for values in self._columns.values():
                values[row] = values[last]
                values.pop()
            del self._row_of[identifier]
            if row != last:
                self._row_of[moved] = row
            return
        if event.kind == ATOM_INSERTED and row is None:
            self._row_of[identifier] = len(self.identifiers)
            self.identifiers.append(identifier)
            for attribute, values in self._columns.items():
                values.append(event.atom.get(attribute))
            return
        if event.kind in (ATOM_INSERTED, ATOM_MODIFIED):
            if row is None:
                # A modification for an atom we never saw inserted — the
                # event stream has a hole; resync on next head use.
                self._mark_stale()
                return
            for attribute, values in self._columns.items():
                values[row] = event.atom.get(attribute)

    def _mark_stale(self) -> None:
        if not self.stale:
            self.stale = True
            self.gap_events += 1


class ColumnarStore:
    """Registry of columnar projections, shared by the engine and executors.

    The store's lock is a *leaf* lock, exactly like the structure-index
    store's: the engine's event path acquires it after the per-type head
    locks and the event lock; readers acquire it alone and never touch
    occurrence state while holding it.
    """

    def __init__(self) -> None:
        self._lock = make_rlock("ColumnarStore._lock")
        #: Planner/executor switch — ``False`` keeps every aggregate on the
        #: row operators (the benchmark baseline and an escape hatch).
        self.enabled = True
        self._projections: Dict[str, ColumnarProjection] = {}  # guarded-by: ColumnarStore._lock
        #: Engine write generation (stamped on every fold and interpreter build).
        self.generation = 0
        #: Pinned-snapshot reads that could not use a projection coherently.
        self.snapshot_gaps = 0
        #: Aggregate executions that took the row path instead (any reason).
        self.fallbacks = 0

    def projected_types(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._projections)

    def __len__(self) -> int:
        with self._lock:
            return len(self._projections)

    # ------------------------------------------------------------- execution

    def for_execution(self, type_name: str, ctx) -> Optional[ColumnarProjection]:
        """The projection serving *type_name* in *ctx*, or ``None`` (fallback).

        Head contexts create and (re)build projections lazily; pinned-snapshot
        contexts only ever use a projection whose generation matches the pin
        and whose owning transaction has no private or excluded writes.
        """
        bare = type_name.split("@", 1)[0]
        with self._lock:
            if not self.enabled:
                return None
            projection = self._projections.get(bare)
            snapshot = getattr(ctx, "snapshot", None)
            if snapshot is not None:
                if (
                    projection is None
                    or projection.stale
                    or projection.generation != snapshot.generation
                    or getattr(snapshot, "own", None)
                    or getattr(snapshot, "excluded", None)
                ):
                    # The operator counts the fallback when it takes the
                    # row path; here we only record the coherence gap.
                    self.snapshot_gaps += 1
                    return None
                return projection
            if not ctx.database.has_atom_type(bare):
                return None
            if projection is None:
                projection = ColumnarProjection(bare)
                self._projections[bare] = projection
            if projection.stale:
                projection.refresh(ctx.database)
                projection.generation = self.generation
            return projection

    def count_fallback(self) -> None:
        """One aggregate execution took the row path (ineligible filter, …)."""
        with self._lock:
            self.fallbacks += 1

    # ----------------------------------------------------------- maintenance

    def apply_event(self, event: ChangeEvent, generation: Optional[int] = None) -> None:
        """Fold one change event into the matching built projection."""
        with self._lock:
            if generation is not None:
                self.generation = generation
            for type_name, projection in self._projections.items():
                if event.atom is not None and event.type_name == type_name:
                    projection.apply_event(event)
                if generation is not None:
                    projection.generation = generation

    def mark_all_stale(self) -> None:
        """Engine cache invalidation: projections resync on next head use."""
        with self._lock:
            for projection in self._projections.values():
                projection._mark_stale()

    def stamp(self, generation: int) -> None:
        """Record the engine generation the built projections are coherent with."""
        with self._lock:
            self.generation = generation
            for projection in self._projections.values():
                if not projection.stale:
                    projection.generation = generation

    # ------------------------------------------------------------- reporting

    def describe(self, type_name: str) -> List[str]:
        """Human-readable state lines for EXPLAIN output."""
        bare = type_name.split("@", 1)[0]
        with self._lock:
            projection = self._projections.get(bare)
            if projection is None:
                return [f"columnar projection {bare}: built on first use"]
            return [
                f"columnar projection {bare}: {len(projection)} rows, "
                f"generation={projection.generation}"
                + (", stale (rebuild on next use)" if projection.stale else "")
            ]

    def statistics(self) -> Dict[str, int]:
        with self._lock:
            builds = sum(p.builds for p in self._projections.values())
            gaps = sum(p.gap_events for p in self._projections.values())
            return {
                "columnar_types": len(self._projections),
                "columnar_builds": builds,
                "columnar_gap_events": gaps,
                "columnar_snapshot_gaps": self.snapshot_gaps,
                "columnar_fallbacks": self.fallbacks,
                "columnar_generation": self.generation,
            }
