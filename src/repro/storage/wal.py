"""Write-ahead logging: durable, checksummed records of the change-event stream.

The engine's change events (:mod:`repro.core.events`) are the single source of
truth about *what changed*; since the MVCC change they also carry generation
stamps, which makes the commit the natural unit of durability: one WAL record
per committed transaction, containing every event the transaction produced, in
mutation order.  Replaying the records of a log against the checkpointed
pre-state reaches exactly the committed head — the redo-only invariant.

**Record format.**  Each record is length-prefixed and checksummed::

    +----------------+----------------+----------------------+
    | length (4B BE) | crc32 (4B BE)  | payload (JSON, UTF-8)|
    +----------------+----------------+----------------------+

A record is valid only when the full payload is present *and* its CRC matches;
recovery therefore discards torn final records (a crash mid-append) and any
uncommitted tail after a corruption point, byte-for-byte.  Because records are
written only at commit (transaction-buffered events) there is nothing to undo
on replay — recovery is pure redo of the committed prefix.

**Fsync policy.**  ``always`` syncs after every record (no committed data is
ever lost, slowest); ``batch`` group-commits — records are flushed to the OS
immediately but fsynced only every *group_commit* records (bounded loss window
on power failure, none on process crash); ``off`` flushes without ever syncing
(fastest; durability against process crash only).  The durability benchmark
(E-PERF6) measures the three against the in-memory baseline.
"""

from __future__ import annotations

import json
import os
import struct
from repro.analysis.runtime import make_rlock
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.events import (
    ATOM_DELETED,
    ATOM_INSERTED,
    ATOM_MODIFIED,
    LINK_CONNECTED,
    LINK_DISCONNECTED,
    ChangeEvent,
)
from repro.exceptions import StorageError

#: The three fsync policies.
FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_OFF = "off"

FSYNC_POLICIES: Tuple[str, ...] = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_OFF)

#: ``(length, crc32)`` header of every WAL record.
_HEADER = struct.Struct(">II")

#: Compact event tags (kind <-> tag, both directions).
_EVENT_TAGS: Dict[str, str] = {
    ATOM_INSERTED: "ai",
    ATOM_MODIFIED: "am",
    ATOM_DELETED: "ad",
    LINK_CONNECTED: "lc",
    LINK_DISCONNECTED: "ld",
}
_TAG_KINDS: Dict[str, str] = {tag: kind for kind, tag in _EVENT_TAGS.items()}


class WalError(StorageError):
    """A write-ahead-log record could not be produced or interpreted."""


@dataclass(frozen=True)
class DurabilityConfig:
    """Configuration of a durable :class:`~repro.storage.engine.PrimaEngine`.

    *directory* holds the WAL (``wal.log``) and the checkpoint image
    (``checkpoint.json``); it is created on first use.  *fsync* selects the
    sync policy (``always`` / ``batch`` / ``off``), *group_commit* the batch
    size of the ``batch`` policy.  *wal_factory* lets tests substitute a WAL
    double (e.g. the fault-injection ``CrashingWAL``).
    """

    directory: "str | Path"
    fsync: str = FSYNC_BATCH
    group_commit: int = 8
    wal_factory: Optional[Callable[..., "WriteAheadLog"]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {self.fsync!r}; use one of {FSYNC_POLICIES}"
            )
        if self.group_commit < 1:
            raise WalError("group_commit must be at least 1")

    @property
    def wal_path(self) -> Path:
        """The log file of this durability directory."""
        return Path(self.directory) / "wal.log"

    @property
    def checkpoint_path(self) -> Path:
        """The checkpoint image of this durability directory."""
        return Path(self.directory) / "checkpoint.json"


# ------------------------------------------------------------- serialization


#: Marker keys of the tagged encodings below; a real user dict using one of
#: them is escaped as ``{"__dict__": …}`` so no value collides with a tag.
_SENTINEL_KEYS = (
    "__tuple__",
    "__dict__",
    "__set__",
    "__frozenset__",
    "__bytes__",
    "__items__",
)


def encode_value(value: object) -> object:
    """JSON-encode one attribute value so recovery restores it *exactly*.

    Byte-identical recovered query results require every Python shape the
    in-memory engine accepts (``DataType.ANY`` is unrestricted) to survive
    the log: tuples become ``{"__tuple__": [...]}``, sets/frozensets and
    bytes get their own tags, dicts with non-string keys are encoded as an
    item list, and a genuine user dict using a sentinel key is escaped as
    ``{"__dict__": {...}}``.  Values with no faithful JSON form raise
    :class:`WalError` rather than silently corrupting the log.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        tag = "__set__" if isinstance(value, set) else "__frozenset__"
        return {tag: sorted((encode_value(item) for item in value), key=repr)}
    if isinstance(value, bytes):
        import base64

        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            encoded = {key: encode_value(item) for key, item in value.items()}
            if any(key in value for key in _SENTINEL_KEYS):
                return {"__dict__": encoded}
            return encoded
        return {
            "__items__": [
                [encode_value(key), encode_value(item)] for key, item in value.items()
            ]
        }
    raise WalError(
        f"cannot log attribute value of type {type(value).__name__}: {value!r} "
        "has no faithful JSON representation"
    )


def decode_value(value: object) -> object:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(decode_value(item) for item in value["__tuple__"])
        if set(value) == {"__dict__"}:
            return {
                key: decode_value(item) for key, item in value["__dict__"].items()
            }
        if set(value) == {"__set__"}:
            return {decode_value(item) for item in value["__set__"]}
        if set(value) == {"__frozenset__"}:
            return frozenset(decode_value(item) for item in value["__frozenset__"])
        if set(value) == {"__bytes__"}:
            import base64

            return base64.b64decode(value["__bytes__"])
        if set(value) == {"__items__"}:
            return {
                decode_value(key): decode_value(item)
                for key, item in value["__items__"]
            }
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def encode_event(event: ChangeEvent) -> Dict[str, object]:
    """Serialize one change event into its WAL form."""
    tag = _EVENT_TAGS.get(event.kind)
    if tag is None:
        raise WalError(f"cannot log unknown event kind {event.kind!r}")
    record: Dict[str, object] = {"e": tag, "t": event.type_name}
    if event.generation is not None:
        record["g"] = event.generation
    if tag in ("ai", "am", "ad"):
        if event.atom is None:
            raise WalError(f"atom event without an atom: {event!r}")
        record["id"] = event.atom.identifier
        if tag != "ad":
            record["v"] = encode_value(event.atom.values)
    else:
        if event.link is None:
            raise WalError(f"link event without a link: {event!r}")
        first, second = event.link.given_order
        record["f"] = first
        record["s"] = second
    return record


def event_kind(record: Dict[str, object]) -> str:
    """The :mod:`repro.core.events` kind of a serialized event record."""
    tag = record.get("e")
    kind = _TAG_KINDS.get(tag)  # type: ignore[arg-type]
    if kind is None:
        raise WalError(f"unknown event tag {tag!r}")
    return kind


# --------------------------------------------------------------- log writing


class WriteAheadLog:
    """An append-only, length-prefixed, checksummed log of commit records.

    One :meth:`commit_events` call appends one record — the atomicity unit of
    recovery.  DDL statements are logged immediately (they are not
    transactional).  The write path is ``append → flush [→ fsync]`` per the
    configured policy; :meth:`sync` forces an fsync, :meth:`truncate` empties
    the log after a checkpoint.

    **Thread safety.**  Every public operation holds the log's internal
    mutex: concurrent committers (group commit included) append whole
    records one at a time — two racing ``commit_events`` calls can never
    interleave their bytes into a torn record, and the byte/record counters
    and the batch-policy unsynced count stay exact.  **Counters.**
    ``records_written``/``bytes_written`` describe the records and bytes
    *currently in the log* — both are reset by :meth:`truncate`, so a
    post-checkpoint report can never show an empty log that still claims
    records; ``lifetime_records``/``lifetime_bytes`` accumulate over the
    handle's lifetime and survive truncation.
    """

    def __init__(
        self,
        path: "str | Path",
        fsync: str = FSYNC_BATCH,
        group_commit: int = 8,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(f"unknown fsync policy {fsync!r}")
        self.path = Path(path)
        self.fsync = fsync
        self.group_commit = max(1, int(group_commit))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        #: Serializes appends, syncs, truncation and the counters below.
        self._lock = make_rlock("WriteAheadLog._lock")
        #: Records appended through this handle and still in the log
        #: (reset by :meth:`truncate`, like ``bytes_written``).
        self.records_written = 0
        #: Bytes currently in the log file (pre-existing + appended).
        self.bytes_written = self.path.stat().st_size
        #: Records appended through this handle, ever (survives truncation).
        self.lifetime_records = 0
        #: Bytes appended through this handle plus the pre-existing log
        #: contents, ever (survives truncation).
        self.lifetime_bytes = self.bytes_written
        #: fsync calls issued.
        self.syncs = 0
        #: Commit records appended (subset of ``lifetime_records``).
        self.commits = 0
        self._unsynced = 0
        self._closed = False
        #: Record taps (see :meth:`add_observer`), in registration order.
        self._observers: List[Callable[[Dict[str, object]], None]] = []  # guarded-by: WriteAheadLog._lock

    def add_observer(self, observer) -> None:
        """Register a callable invoked with every appended record payload.

        Observers fire inside the log's mutex *after* the record's bytes are
        flushed to the OS, so observation order equals log order and an
        observed record is always readable from the file — the invariant
        both the process-pool's and the replication hub's catch-up feeds
        rely on (a subscriber seeded from the files has at least every
        record observed so far).  Any number of observers may be live at
        once — a process pool and a replication tail never clobber each
        other's tap — each removes only its own via :meth:`remove_observer`.
        An observer must not call back into the log.
        """
        with self._lock:
            if observer not in self._observers:
                self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Remove one registered tap (idempotent); other taps keep firing."""
        with self._lock:
            try:
                self._observers.remove(observer)
            except ValueError:
                pass

    # ------------------------------------------------------------- appending

    def append(self, payload: Dict[str, object]) -> int:
        """Append one record; returns the record's size in bytes.

        A failed append is all-or-nothing for a *surviving* process: the
        partial bytes are truncated away before the error propagates, so the
        caller can retry the append cleanly.  (A crashed process leaves the
        torn record instead — recovery discards it by checksum.)
        """
        data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
        blob = _HEADER.pack(len(data), zlib.crc32(data) & 0xFFFFFFFF) + data
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            try:
                self._write_bytes(blob)
            except BaseException:
                self._rewind_failed_append(self.bytes_written)
                raise
            self.records_written += 1
            self.bytes_written += len(blob)
            self.lifetime_records += 1
            self.lifetime_bytes += len(blob)
            self._after_record()
            for observer in self._observers:
                observer(payload)
        return len(blob)

    def commit_events(self, events: Sequence[Dict[str, object]]) -> int:
        """Append one commit record covering *events* (the atomicity unit)."""
        if not events:
            return 0
        generations = [e["g"] for e in events if "g" in e]
        record: Dict[str, object] = {"r": "commit", "events": list(events)}
        if generations:
            record["gen"] = max(generations)
        with self._lock:
            size = self.append(record)
            self.commits += 1
        return size

    def append_ddl(self, payload: Dict[str, object]) -> int:
        """Append one DDL record (non-transactional; synced like a commit)."""
        record = dict(payload)
        record["r"] = "ddl"
        return self.append(record)

    def _write_bytes(self, blob: bytes) -> None:
        """Raw byte append — the override point of fault-injection doubles."""
        self._file.write(blob)

    def _rewind_failed_append(self, size: int) -> None:
        """Best-effort: drop the partial bytes of a failed append.

        Fault-injection doubles that simulate *process death* override this
        with a no-op — a dead process runs no cleanup, its torn record stays.
        """
        try:
            self._file.truncate(size)
            self._file.flush()
        except OSError:  # pragma: no cover - the disk is already failing
            pass

    def _after_record(self) -> None:
        """Apply the fsync policy after one appended record."""
        self._file.flush()
        if self.fsync == FSYNC_ALWAYS:
            self._fsync()
        elif self.fsync == FSYNC_BATCH:
            self._unsynced += 1
            if self._unsynced >= self.group_commit:
                self._fsync()

    def _fsync(self) -> None:
        os.fsync(self._file.fileno())
        self.syncs += 1
        self._unsynced = 0

    # ------------------------------------------------------------ lifecycle

    def sync(self) -> None:
        """Flush and fsync any buffered records (regardless of policy)."""
        with self._lock:
            if self._closed:
                return
            self._file.flush()
            self._fsync()

    def truncate(self) -> None:
        """Empty the log (checkpoint protocol: image first, then truncate).

        Resets the *current-log* counters together — ``bytes_written``,
        ``records_written`` and the unsynced batch count all describe the
        now-empty log — while the ``lifetime_*`` totals keep accumulating.
        """
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            self._file.truncate(0)
            self._file.seek(0)
            self._file.flush()
            os.fsync(self._file.fileno())
            self.bytes_written = 0
            self.records_written = 0
            self._unsynced = 0

    def close(self) -> None:
        """Flush, sync and close the log handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({str(self.path)!r}, fsync={self.fsync!r}, "
            f"records={self.records_written}, bytes={self.bytes_written})"
        )


# --------------------------------------------------------------- log reading


@dataclass
class WalScan:
    """The outcome of scanning a log file: valid records plus tail telemetry.

    ``valid_bytes`` is the *absolute* file offset one past the last valid
    record — an incremental poller resumes its next :func:`read_wal` call
    from exactly there, regardless of the ``from_offset`` it scanned from.
    """

    records: List[Dict[str, object]]
    valid_bytes: int
    discarded_bytes: int

    @property
    def torn_tail(self) -> bool:
        """``True`` when bytes past the last valid record were discarded."""
        return self.discarded_bytes > 0


def read_wal(path: "str | Path", from_offset: int = 0) -> WalScan:
    """Scan a WAL file from *from_offset*, returning valid records in order.

    Scanning stops at the first incomplete or checksum-failing record; the
    remaining bytes are reported as discarded.  This is what makes recovery
    redo-only: a torn final record (crash mid-append) can never contribute a
    partial transaction.

    A follower polling a **live** primary must treat a non-zero
    ``discarded_bytes`` as *not yet*, never as corruption: appends are
    sequential, so bytes past the last valid record are simply an in-flight
    record whose remainder has not reached the file — the poller re-polls
    from ``valid_bytes`` (the last good offset) and the same scan succeeds
    once the append completes.  Only crash recovery — which knows no append
    is in flight — may truncate the tail away.
    """
    path = Path(path)
    if not path.exists():
        return WalScan([], from_offset, 0)
    with open(path, "rb") as handle:
        handle.seek(from_offset)
        data = handle.read()
    records: List[Dict[str, object]] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # torn final record
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break  # corrupt record: discard it and everything after
        try:
            record = json.loads(payload.decode("utf-8"))
        except ValueError:
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return WalScan(records, from_offset + offset, total - offset)
