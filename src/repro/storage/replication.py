"""Log-shipping replication: follower engines, catch-up, and promotion.

The WAL's commit and DDL records are a self-contained replication feed
(every record carries the full change events of one committed unit), and
the recovery machinery replays them idempotently — the two properties this
module combines into read scale-out:

* **Seeding.**  A :class:`FollowerEngine` builds its state from the
  primary's durability directory exactly the way a process-pool worker
  does: load the checkpoint image, replay the WAL tail through the
  :mod:`repro.storage.recovery` primitives, never write a byte back.
  Unlike :func:`~repro.storage.recovery.recover`, a torn WAL tail is *not*
  truncated — against a live primary it is an in-flight append, not a
  crash artefact (see :func:`~repro.storage.wal.read_wal`).

* **Tailing.**  Two transports share one apply path:

  - **in-process** — a :class:`ReplicationHub` taps the primary's WAL via
    :meth:`~repro.storage.wal.WriteAheadLog.add_observer` into an
    in-memory record feed with monotone sequence numbers (the PR 8
    contract: the observer fires inside the log mutex *after* the bytes
    reach the OS, so the feed is always a suffix of the durable file and
    a follower seeded from the files holds at least every record the
    feed held at seed time — re-shipping the overlap double-applies
    idempotently);
  - **out-of-process** — :meth:`FollowerEngine.poll` reads the WAL file
    incrementally (``read_wal(path, from_offset=…)``), treats a torn
    tail as *not yet* (re-polls from the last good offset, never
    truncates), and survives primary checkpoint truncation by re-seeding
    from the new image when the checkpoint stamp changes or the log
    shrinks below the consumed offset.

* **Catch-up.**  The follower reports ``applied_seq``; the hub ships the
  ``(applied_seq, cut]`` feed slice.  Sequence numbers — not generations —
  drive the slice (commit order is not generation order); generations only
  *fast-forward* the follower to the pin or *refuse* a ship whose pin lies
  behind the follower's state (a follower cannot rewind) or whose slice
  contains a commit past the pin (too fresh for the pinned read).

* **Promotion.**  :meth:`FollowerEngine.promote` fences the old primary
  *first* (no record can enter the feed afterwards), then ships the final
  slice, then detaches — so the promoted engine's state is byte-identical
  to the primary's committed head at the fence point.  The fenced primary
  refuses every subsequent write (basic interface, DDL, and transactions —
  in-flight transactions abort at their commit point).

The replica-aware read router lives on the engine
(:meth:`PrimaEngine.parallel_query` with ``mode="replica"``); this module
provides the follower lifecycle and the feed it routes over.
"""

from __future__ import annotations

import os
from repro.analysis.runtime import make_lock, make_rlock
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import StorageError


class ReplicationError(StorageError):
    """A replication-protocol violation (rewind, fenced feed, bad record)."""


# ------------------------------------------------------------ shared replay


def apply_record(engine, record: Dict[str, object]) -> int:
    """Replay one WAL/feed record on *engine*'s stores; returns the record's
    highest generation (0 for DDL records).

    The single replay routine shared by process-pool workers, followers and
    follower re-seeding — always the recovery primitives, always idempotent.
    """
    from repro.storage.recovery import apply_ddl_record, apply_event_record

    kind = record.get("r")
    if kind == "ddl":
        apply_ddl_record(engine, record)
        return 0
    if kind == "commit":
        for event in record.get("events", ()):
            apply_event_record(engine, event)
        return int(record.get("gen", 0))
    raise ReplicationError(f"unknown record kind {kind!r} in replication feed")


def checkpoint_stamp(path) -> Optional[Tuple[int, int, int]]:
    """Identity stamp of a checkpoint image: ``(mtime_ns, size, inode)``.

    A changed stamp means the primary wrote a new image (and truncated the
    WAL right after) — the signal a file-tailing follower re-seeds on.
    ``None`` when no image exists yet.
    """
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size, stat.st_ino)


@dataclass
class SeedResult:
    """What one seeding pass produced (engine + resume positions)."""

    engine: object
    generation: int
    records_replayed: int
    #: Absolute WAL offset one past the last record replayed — the file
    #: poller resumes from exactly here.
    wal_offset: int
    #: Checkpoint-image stamp at seed time (``None`` — no image yet).
    checkpoint_stamp: Optional[Tuple[int, int, int]]


def seed_engine(directory, name: str = "prima-replica") -> SeedResult:
    """Build a read-only engine replica from *directory*'s checkpoint + WAL.

    Mirrors :func:`repro.storage.recovery.recover` except that nothing is
    ever written: no WAL is opened for appending and a torn tail is skipped
    (``read_wal`` already stops at the last valid record) instead of
    truncated — against a live primary the tail is an in-flight append.
    """
    from repro.core.atom import ensure_surrogate_counter
    from repro.storage.engine import PrimaEngine
    from repro.storage.recovery import apply_checkpoint, load_checkpoint
    from repro.storage.wal import DurabilityConfig, read_wal

    config = DurabilityConfig(directory)
    stamp = checkpoint_stamp(config.checkpoint_path)
    engine = PrimaEngine(name=name)
    generation = 0
    highest_surrogate = 0
    replayed = 0
    image = load_checkpoint(config)
    if image is not None:
        highest_surrogate = apply_checkpoint(engine, image)
        generation = int(image.get("generation", 0))
    scan = read_wal(config.wal_path)
    for record in scan.records:
        generation = max(generation, apply_record(engine, record))
        replayed += 1
    ensure_surrogate_counter(highest_surrogate)
    engine.generation = max(engine.generation, generation)
    return SeedResult(engine, generation, replayed, scan.valid_bytes, stamp)


# ------------------------------------------------------------- the follower


class FollowerEngine:
    """A read-only replica of a durable primary, fed by its WAL.

    Construct directly with the primary's durability directory for an
    out-of-process follower (drive it with :meth:`poll`), or through
    :meth:`ReplicationHub.create_follower` /
    :meth:`PrimaEngine.create_follower` for an in-process follower the hub
    ships to incrementally.  Reads (:meth:`query`) run against a pinned
    snapshot at the follower's applied generation, so they are repeatable
    even while records keep applying underneath.
    """

    def __init__(self, directory, name: str = "prima-follower", hub=None) -> None:
        self._directory = str(directory)
        self.name = name
        self._hub = hub
        #: Serializes applies, re-seeds and snapshot acquisition.  Query
        #: *execution* runs outside it, on the acquired handle: applies go
        #: through the recovery primitives, which replace store entries
        #: with fresh objects — an in-flight read over previously exported
        #: snapshot objects never sees a partial apply.
        self._lock = make_rlock("FollowerEngine._lock")
        self._promoted = False  # guarded-by: FollowerEngine._lock
        self._closed = False
        self.counters: Dict[str, int] = {
            "records_applied": 0,
            "polls": 0,
            "reseeds": 0,
            "torn_tail_retries": 0,
            "queries": 0,
        }
        #: Feed position (hub transport): absolute sequence number one past
        #: the last hub record applied.  Owned by the hub — it only
        #: advances when the hub ships.
        self.applied_seq = 0
        self._seed()

    def _seed(self) -> SeedResult:
        seed = seed_engine(self._directory, name=self.name)
        self._engine = seed.engine
        #: Generation the follower's state has reached (applied records
        #: plus pin fast-forwards).
        self.applied_generation = seed.generation  # guarded-by: FollowerEngine._lock
        self._wal_offset = seed.wal_offset
        self._stamp = seed.checkpoint_stamp
        return seed

    # ------------------------------------------------------------ applying

    def _require_live(self) -> None:
        if self._closed:
            raise ReplicationError(f"follower {self.name!r} is closed")
        if self._promoted:
            raise ReplicationError(
                f"follower {self.name!r} was promoted; use the engine "
                "promote() returned"
            )

    def apply_records(self, records, target_generation: int) -> None:
        """Apply a feed slice, then fast-forward to *target_generation*.

        The hub's transport: records arrive in feed order and double-applies
        are idempotent.  *target_generation* absorbs generation ticks that
        ship no bytes (rollbacks, no-op writes) — it may only move the
        follower forward.
        """
        with self._lock:
            self._require_live()
            for record in records:
                apply_record(self._engine, record)
                self.counters["records_applied"] += 1
            if records:
                # Records went into the stores through the recovery
                # primitives, beneath the engine's cached access structures —
                # drop them so the next read re-exports.
                self._engine._invalidate()  # noqa: SLF001 - intentional internal reuse
            self.applied_generation = max(
                self.applied_generation, int(target_generation)
            )
            self._engine.generation = max(
                self._engine.generation, self.applied_generation
            )

    def poll(self) -> int:
        """Apply newly durable records from the primary's files; returns the
        number of records applied by this call.

        The out-of-process transport.  Three cases per poll:

        * **new records** — applied from the last consumed offset
          (``read_wal(path, from_offset=…)``; never a full re-read);
        * **torn tail** — an append is in flight: the valid prefix is
          applied, the torn bytes are left alone, and the next poll resumes
          from the last good offset (*never* truncated — only crash
          recovery, which knows no append is in flight, may do that);
        * **checkpoint truncation** — the image stamp changed or the log
          shrank below the consumed offset: the primary checkpointed, so
          the follower re-seeds from the new image + fresh log instead of
          replaying a rewound file.  Re-seeding covers everything already
          applied (the image is taken at the primary's head), so the
          follower's generation never moves backwards.
        """
        with self._lock:
            self._require_live()
            from repro.storage.wal import DurabilityConfig, read_wal

            self.counters["polls"] += 1
            config = DurabilityConfig(self._directory)
            stamp = checkpoint_stamp(config.checkpoint_path)
            try:
                wal_size = os.path.getsize(config.wal_path)
            except OSError:
                wal_size = 0
            if stamp != self._stamp or wal_size < self._wal_offset:
                previous = self.applied_generation
                seed = self._seed()
                self.counters["reseeds"] += 1
                if seed.generation < previous:
                    raise ReplicationError(
                        f"re-seed from {self._directory!r} reached generation "
                        f"{seed.generation}, behind the follower's applied "
                        f"generation {previous} — a follower cannot rewind"
                    )
                return seed.records_replayed
            scan = read_wal(config.wal_path, from_offset=self._wal_offset)
            if scan.torn_tail:
                # In-flight append: apply the valid prefix, keep the offset
                # at the last good byte, and let a later poll retry.
                self.counters["torn_tail_retries"] += 1
            generation = self.applied_generation
            for record in scan.records:
                generation = max(generation, apply_record(self._engine, record))
                self.counters["records_applied"] += 1
            if scan.records:
                self._engine._invalidate()  # noqa: SLF001 - intentional internal reuse
            self._wal_offset = scan.valid_bytes
            self.applied_generation = generation
            self._engine.generation = max(self._engine.generation, generation)
            return len(scan.records)

    # ------------------------------------------------------------- reading

    def snapshot(self):
        """Pin the follower's applied generation; returns a read handle.

        Acquisition serializes with applies (the handle is taken between
        records, never mid-apply); the returned handle's reads then run
        lock-free and stay repeatable while further records apply.
        """
        with self._lock:
            self._require_live()
            self.counters["queries"] += 1
            return self._engine.snapshot_at()

    def query(self, statement: str):
        """Execute one MQL read statement at the follower's applied generation."""
        handle = self.snapshot()
        try:
            return handle.query(statement)
        finally:
            handle.release()

    def lag(self, head_generation: int) -> int:
        """Generations this follower trails *head_generation* (may be < 0
        when the follower is ahead of an older pin)."""
        return int(head_generation) - self.applied_generation

    # ----------------------------------------------------------- lifecycle

    @property
    def engine(self):
        """The backing :class:`PrimaEngine` (read-only until promotion)."""
        return self._engine

    @property
    def promoted(self) -> bool:
        return self._promoted

    def promote(self):
        """Promote this follower to a writable primary; returns its engine.

        Hub-attached followers run the full fail-over protocol, in this
        order: **fence** the old primary (its versioning state refuses new
        transactions and in-flight ones abort at commit; basic-interface
        writes and DDL raise — so nothing can enter the feed after the
        fence), take the **final cut**, **ship** the remaining slice, then
        **detach**.  The promoted engine's state is therefore exactly the
        old primary's committed head.

        File-tailing followers (no hub) drain one final :meth:`poll` and
        convert; fencing an out-of-process primary is the caller's job (the
        usual promotion trigger is that primary being gone).
        """
        if self._hub is not None:
            self._hub.promote(self)
        else:
            with self._lock:
                self._require_live()
                self.poll()
        with self._lock:
            self._require_live()
            self._promoted = True
            engine = self._engine
        return engine

    def close(self) -> None:
        """Detach from the hub (if any) and refuse further use (idempotent)."""
        if self._closed:
            return
        self._closed = True
        hub, self._hub = self._hub, None
        if hub is not None:
            hub.detach(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "promoted"
            if self._promoted
            else ("closed" if self._closed else f"gen={self.applied_generation}")
        )
        return f"FollowerEngine({self.name!r}, {state})"


# ------------------------------------------------------------------ the hub


class ReplicationHub:
    """Primary-side replication state: the WAL feed and its followers.

    Created lazily by :meth:`PrimaEngine.replication_hub` (durable engines
    only).  Construction installs a WAL observer — one of possibly many
    (a process pool may tap the same log); every record appended after this
    point is shippable incrementally, anything earlier is covered by the
    followers' file-based seeding.
    """

    def __init__(self, engine) -> None:
        if engine.durability is None or engine.wal is None:
            raise ReplicationError(
                "replication requires a durable engine: followers seed from "
                "the checkpoint image and WAL tail"
            )
        self._engine = engine
        self._directory = str(engine.durability.directory)
        self._feed: List[Dict[str, object]] = []  # guarded-by: ReplicationHub._feed_lock
        self._feed_base = 0  # absolute sequence number of self._feed[0]  # guarded-by: ReplicationHub._feed_lock
        self._feed_lock = make_lock("ReplicationHub._feed_lock")
        self._followers: List[FollowerEngine] = []  # guarded-by: ReplicationHub._lock
        self._lock = make_rlock("ReplicationHub._lock")
        self._closed = False
        self.counters: Dict[str, int] = {
            "followers_started": 0,
            "ships": 0,
            "records_shipped": 0,
            "refusals": 0,
            "promotions": 0,
            "routed": 0,
            "fallbacks": 0,
            "skipped": 0,
            "waits": 0,
        }
        engine.wal.add_observer(self._observe)

    # ------------------------------------------------------------- the feed

    def _observe(self, record: Dict[str, object]) -> None:
        with self._feed_lock:
            self._feed.append(record)

    def feed_position(self) -> int:
        """The absolute sequence number one past the last feed record."""
        with self._feed_lock:
            return self._feed_base + len(self._feed)

    def _feed_slice(self, start: int, stop: int) -> List[Dict[str, object]]:
        with self._feed_lock:
            base = self._feed_base
            return list(self._feed[max(0, start - base) : max(0, stop - base)])

    def _trim_feed(self) -> None:
        """Drop feed records every follower has applied (bounded memory)."""
        with self._lock:
            floor = min(
                (follower.applied_seq for follower in self._followers), default=0
            )
        with self._feed_lock:
            drop = floor - self._feed_base
            if drop > 0:
                del self._feed[:drop]
                self._feed_base = floor

    # ------------------------------------------------------------ followers

    def create_follower(self, name: Optional[str] = None) -> FollowerEngine:
        """Seed a new in-process follower and register it for shipping.

        The feed position is captured *before* seeding: every record below
        it is, by the observer's post-flush contract, already in the files
        the follower seeds from; records at/after it ship incrementally,
        and any overlap with the seed double-applies idempotently.
        """
        with self._lock:
            if self._closed:
                raise ReplicationError("replication hub is closed")
            seq0 = self.feed_position()
            follower = FollowerEngine(
                self._directory,
                name=name or f"{self._engine.name}-follower-{self.counters['followers_started']}",
                hub=self,
            )
            follower.applied_seq = seq0
            self._followers.append(follower)
            self.counters["followers_started"] += 1
            return follower

    def followers(self) -> List[FollowerEngine]:
        with self._lock:
            return list(self._followers)

    def detach(self, follower: FollowerEngine) -> None:
        """Stop shipping to *follower* (it keeps serving its applied state)."""
        with self._lock:
            if follower in self._followers:
                self._followers.remove(follower)
                follower._hub = None
        self._trim_feed()

    # ------------------------------------------------------------- shipping

    def ship(
        self,
        follower: FollowerEngine,
        pin_generation: Optional[int] = None,
        cut: Optional[int] = None,
    ) -> int:
        """Ship the ``(applied_seq, cut]`` feed slice to *follower*; returns
        the record count shipped.

        *pin_generation* is the fast-forward target and the refusal bound: a
        follower already past the pin cannot rewind, and a slice containing a
        commit past the pin would make the follower answer for a future the
        pin must not see — both raise :class:`ReplicationError` and ship
        nothing.  When *pin_generation* is ``None`` the caller wants the
        head: the pin covers every record in the slice, because the
        write-ahead ordering (bytes durable, then snapshot published) means
        the feed can momentarily run ahead of the primary's published
        generation — such records are decided commits, not a future.
        """
        if cut is None:
            cut = self.feed_position()
        catch_up_to_head = pin_generation is None
        if catch_up_to_head:
            pin_generation = self._engine.generation
        with follower._lock:
            if catch_up_to_head:
                for record in self._feed_slice(follower.applied_seq, cut):
                    pin_generation = max(pin_generation, int(record.get("gen", 0)))
            if (
                follower.applied_generation > pin_generation
                or follower.applied_seq > cut
            ):
                self.counters["refusals"] += 1
                raise ReplicationError(
                    f"follower at generation {follower.applied_generation} "
                    f"(seq {follower.applied_seq}) is ahead of the pinned "
                    f"generation {pin_generation} (seq {cut}) — cannot rewind"
                )
            records = self._feed_slice(follower.applied_seq, cut)
            for record in records:
                if int(record.get("gen", 0)) > pin_generation:
                    self.counters["refusals"] += 1
                    raise ReplicationError(
                        f"catch-up slice contains a commit at generation "
                        f"{record.get('gen')}, past the pinned generation "
                        f"{pin_generation} — too fresh"
                    )
            follower.apply_records(records, pin_generation)
            follower.applied_seq = cut
        self.counters["ships"] += 1
        self.counters["records_shipped"] += len(records)
        self._trim_feed()
        return len(records)

    def catch_up_all(
        self, pin_generation: Optional[int] = None, cut: Optional[int] = None
    ) -> int:
        """Ship every follower to *(pin_generation, cut)*; returns records shipped."""
        shipped = 0
        for follower in self.followers():
            shipped += self.ship(follower, pin_generation, cut)
        return shipped

    def max_lag(self) -> int:
        """The largest follower lag behind the primary head, in generations.

        Lock-free: reads an atomic snapshot of the follower list, so the
        planner can call it while holding the plan lock (the hub lock sits
        *below* the plan lock in the hierarchy and must not be acquired
        under it).
        """
        head = self._engine.generation
        followers = tuple(self._followers)
        return max(
            (head - follower.applied_generation for follower in followers),
            default=0,
        )

    def dispatch_state(self) -> Dict[str, int]:
        """Hub telemetry for the planner's dispatch costing (lock-free)."""
        replicas = len(self._followers)
        return {"replicas": replicas, "replica_lag": self.max_lag() if replicas else 0}

    # ------------------------------------------------------------ promotion

    def promote(self, follower: FollowerEngine) -> None:
        """Fail the primary over to *follower* (fence → final cut → ship → detach)."""
        with self._lock:
            if follower not in self._followers:
                raise ReplicationError(
                    "cannot promote a follower this hub is not shipping to"
                )
            # 1. Fence: after this, no write can append a WAL record, so the
            #    feed position below is the final one.
            self._engine.fence()
            # 2. Final cut at the fenced head; 3. ship the remaining slice.
            self.ship(follower, self._engine.generation, self.feed_position())
            self.counters["promotions"] += 1
        # 4. Detach — the promoted engine leaves the feed.
        self.detach(follower)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Remove the WAL tap and detach every follower (idempotent).

        Followers are not destroyed: each keeps serving reads at its applied
        generation — it just stops receiving records.
        """
        if self._closed:
            return
        self._closed = True
        wal = self._engine.wal
        if wal is not None:
            wal.remove_observer(self._observe)
        for follower in self.followers():
            self.detach(follower)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicationHub(followers={len(self._followers)}, "
            f"feed={self.feed_position()})"
        )
