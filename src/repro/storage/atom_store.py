"""The atom store: identifier-addressed storage of atoms per atom type.

The lowest layer of the PRIMA-like engine.  Atoms are stored by identifier,
optionally covered by secondary :class:`~repro.storage.index.HashIndex`
structures; the store exposes the primitive read operations the atom-oriented
interface is built from (point lookup, scan, indexed value lookup).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.atom import Atom
from repro.core.attributes import AtomTypeDescription, make_description
from repro.exceptions import StorageError
from repro.storage.index import HashIndex


class AtomStore:
    """Stores the atoms of a single atom type and maintains its indexes."""

    def __init__(self, atom_type_name: str, description: "AtomTypeDescription | Mapping | Iterable") -> None:
        self.atom_type_name = atom_type_name
        self.description = make_description(description)
        self._atoms: Dict[str, Atom] = {}
        self._indexes: Dict[str, HashIndex] = {}
        self.reads = 0
        self.writes = 0

    # ----------------------------------------------------------------- write

    def store(self, atom: "Atom | Mapping[str, object]", identifier: Optional[str] = None) -> Atom:
        """Insert or replace an atom; values are validated against the description."""
        if not isinstance(atom, Atom):
            atom = Atom(self.atom_type_name, dict(atom), identifier=identifier)
        validated = self.description.validate_values(atom.values)
        stored = Atom(self.atom_type_name, validated, identifier=atom.identifier)
        self._atoms[stored.identifier] = stored
        for index in self._indexes.values():
            index.insert(stored)
        self.writes += 1
        return stored

    def delete(self, identifier: str) -> Atom:
        """Remove and return the atom with *identifier*; raises when missing."""
        try:
            atom = self._atoms.pop(identifier)
        except KeyError as exc:
            raise StorageError(f"no atom {identifier!r} in store {self.atom_type_name!r}") from exc
        for index in self._indexes.values():
            index.remove(identifier)
        self.writes += 1
        return atom

    # ------------------------------------------------------------------ read

    def get(self, identifier: str) -> Optional[Atom]:
        """Point lookup by identifier."""
        self.reads += 1
        return self._atoms.get(identifier)

    def scan(self) -> Tuple[Atom, ...]:
        """Full scan of the store."""
        self.reads += len(self._atoms)
        return tuple(self._atoms.values())

    def lookup(self, attribute: str, value: object) -> Tuple[Atom, ...]:
        """Value lookup, via an index when one exists, otherwise by scanning."""
        index = self._indexes.get(attribute)
        if index is not None:
            identifiers = index.lookup(value)
            self.reads += len(identifiers)
            return tuple(self._atoms[i] for i in identifiers if i in self._atoms)
        return tuple(atom for atom in self.scan() if atom.get(attribute) == value)

    # --------------------------------------------------------------- indexes

    def create_index(self, attribute: str) -> HashIndex:
        """Create (or return the existing) index on *attribute* and backfill it."""
        if attribute not in self.description:
            raise StorageError(
                f"cannot index unknown attribute {attribute!r} of {self.atom_type_name!r}"
            )
        if attribute in self._indexes:
            return self._indexes[attribute]
        index = HashIndex(self.atom_type_name, attribute)
        for atom in self._atoms.values():
            index.insert(atom)
        self._indexes[attribute] = index
        return index

    def has_index(self, attribute: str) -> bool:
        """``True`` when an index exists on *attribute*."""
        return attribute in self._indexes

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms.values())

    def __contains__(self, identifier: object) -> bool:
        return identifier in self._atoms

    def __repr__(self) -> str:
        return f"AtomStore({self.atom_type_name!r}, atoms={len(self)}, indexes={list(self._indexes)})"
