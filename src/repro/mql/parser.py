"""Recursive-descent parser for MQL.

Grammar (EBNF)::

    input       := ["EXPLAIN"] (statement | insert | delete | modify)
                   | transaction | checkpoint
    transaction := ("BEGIN" | "COMMIT" | "ROLLBACK") ["WORK"] [";"]
    checkpoint  := "CHECKPOINT" [";"]
    statement   := query (("UNION" | "DIFFERENCE" | "INTERSECT") query)* [";"]
    query       := "SELECT" select_list "FROM" from_clause ["WHERE" condition]
                   ["GROUP" "BY" attr_ref ("," attr_ref)*]
    select_list := "ALL" | select_item ("," select_item)*
    select_item := aggregate | attr_ref
    aggregate   := ("COUNT" | "SUM" | "MIN" | "MAX" | "AVG")
                   "(" ("*" | attr_ref) ")"
    from_clause := recursive | [ident] "(" path ")" | path
    recursive   := "RECURSIVE" ident [bracket_name] ["DOWN" | "UP"] [number]
    path        := node ("-" [bracket_name "-"] node)*
    node        := ident | "(" path ("," path)* ")"
    insert      := "INSERT" from_clause "VALUES" object [";"]
    delete      := "DELETE" ["CASCADE"] [ident] "FROM" from_clause
                   ["WHERE" condition] [";"]
    modify      := "MODIFY" ident "FROM" from_clause
                   "SET" assignment ("," assignment)* ["WHERE" condition] [";"]
    assignment  := attr_ref "=" literal
    object      := "{" [pair ("," pair)*] "}"
    pair        := ident ":" (literal | object | "(" object ("," object)* ")")
    condition   := or_expr
    or_expr     := and_expr ("OR" and_expr)*
    and_expr    := not_expr ("AND" not_expr)*
    not_expr    := "NOT" not_expr | primary
    primary     := "(" condition ")" | comparison
    comparison  := attr_ref op (literal | attr_ref)
    attr_ref    := ident ["." ident]
    literal     := ["-"] number | string | "TRUE" | "FALSE"

The ambiguity between a parenthesized *structure branch group* and the
parenthesized *structure of a named molecule type* is resolved by look-ahead:
``ident "("`` directly after FROM is a named molecule-type definition when the
identifier is not followed by a dash.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.exceptions import MQLSyntaxError
from repro.mql.ast_nodes import (
    AggregateItem,
    Assignment,
    AttributeReference,
    CheckpointStatement,
    ComparisonCondition,
    DeleteStatement,
    DMLStatement,
    ExplainStatement,
    FromClause,
    InsertStatement,
    LogicalCondition,
    ModifyStatement,
    NotCondition,
    Query,
    RecursiveStructure,
    SetOperation,
    Statement,
    StructureBranch,
    StructureNode,
    StructurePath,
    TransactionStatement,
)
from repro.mql.lexer import Token, TokenType, tokenize


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------- utilities

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def expect(self, token_type: TokenType, value: Optional[object] = None) -> Token:
        token = self.peek()
        if token.type is not token_type or (value is not None and token.value != value):
            expected = value if value is not None else token_type.value
            raise MQLSyntaxError(
                f"expected {expected!r}, found {token.value!r}", token.line, token.column
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------- statement

    def parse_input(self) -> "Statement | DMLStatement | ExplainStatement":
        if self.accept_keyword("EXPLAIN"):
            return ExplainStatement(self.parse_any_statement())
        return self.parse_any_statement()

    def parse_any_statement(self) -> "Statement | DMLStatement | TransactionStatement":
        token = self.peek()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        if token.is_keyword("MODIFY"):
            return self.parse_modify()
        if token.type is TokenType.KEYWORD and token.value in ("BEGIN", "COMMIT", "ROLLBACK"):
            return self.parse_transaction()
        if token.is_keyword("CHECKPOINT"):
            self.advance()
            self._finish()
            return CheckpointStatement()
        return self.parse_statement()

    def parse_transaction(self) -> TransactionStatement:
        action = str(self.advance().value)
        self.accept_keyword("WORK")
        self._finish()
        return TransactionStatement(action)

    def parse_statement(self) -> Statement:
        left: Statement = self.parse_query()
        while self.peek().type is TokenType.KEYWORD and self.peek().value in (
            "UNION",
            "DIFFERENCE",
            "INTERSECT",
        ):
            operator = self.advance().value
            right = self.parse_query()
            left = SetOperation(str(operator), left, right)
        self._finish()
        return left

    def _finish(self) -> None:
        """Consume an optional trailing semicolon and require end of input."""
        if self.peek().type is TokenType.SEMICOLON:
            self.advance()
        token = self.peek()
        if token.type is not TokenType.EOF:
            raise MQLSyntaxError(
                f"unexpected trailing input {token.value!r}", token.line, token.column
            )

    _AGGREGATE_FUNCS = ("COUNT", "SUM", "MIN", "MAX", "AVG")

    def parse_query(self) -> Query:
        self.expect(TokenType.KEYWORD, "SELECT")
        select_all = False
        projection: Tuple[str, ...] = ()
        aggregates: Tuple[AggregateItem, ...] = ()
        select_refs: Tuple[AttributeReference, ...] = ()
        if self.accept_keyword("ALL"):
            select_all = True
        else:
            items: List[Union[AggregateItem, AttributeReference]] = [
                self.parse_select_item()
            ]
            while self.peek().type is TokenType.COMMA:
                self.advance()
                items.append(self.parse_select_item())
            if any(isinstance(item, AggregateItem) for item in items):
                aggregates = tuple(i for i in items if isinstance(i, AggregateItem))
                select_refs = tuple(
                    i for i in items if isinstance(i, AttributeReference)
                )
            else:
                for item in items:
                    if isinstance(item, AttributeReference) and item.atom_type:
                        raise MQLSyntaxError(
                            "dotted attribute references in the SELECT list "
                            "require aggregation (GROUP BY)",
                            self.peek().line,
                            self.peek().column,
                        )
                projection = tuple(str(item.attribute) for item in items)  # type: ignore[union-attr]
        self.expect(TokenType.KEYWORD, "FROM")
        from_clause = self.parse_from_clause()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        group_by: Tuple[AttributeReference, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect(TokenType.KEYWORD, "BY")
            keys = [self.parse_attribute_reference()]
            while self.peek().type is TokenType.COMMA:
                self.advance()
                keys.append(self.parse_attribute_reference())
            group_by = tuple(keys)
        return Query(
            select_all, projection, from_clause, where, aggregates, group_by, select_refs
        )

    def parse_select_item(self) -> "AggregateItem | AttributeReference":
        token = self.peek()
        if (
            token.type is TokenType.IDENT
            and str(token.value).upper() in self._AGGREGATE_FUNCS
            and self.peek(1).type is TokenType.LPAREN
        ):
            func = str(self.advance().value).upper()
            self.expect(TokenType.LPAREN)
            if self.peek().type is TokenType.STAR:
                star_token = self.advance()
                if func != "COUNT":
                    raise MQLSyntaxError(
                        f"'*' is only valid in COUNT(*), not {func}(*)",
                        star_token.line,
                        star_token.column,
                    )
                self.expect(TokenType.RPAREN)
                return AggregateItem(func, None, star=True)
            distinct = False
            if self.peek().type is TokenType.KEYWORD and str(self.peek().value) == "DISTINCT":
                distinct_token = self.advance()
                if func != "COUNT":
                    raise MQLSyntaxError(
                        f"DISTINCT is only valid in COUNT(DISTINCT …), not {func}",
                        distinct_token.line,
                        distinct_token.column,
                    )
                distinct = True
            argument = self.parse_attribute_reference()
            self.expect(TokenType.RPAREN)
            return AggregateItem(func, argument, distinct=distinct)
        return self.parse_attribute_reference()

    # ------------------------------------------------------------------- DML

    def parse_insert(self) -> InsertStatement:
        self.expect(TokenType.KEYWORD, "INSERT")
        from_clause = self.parse_from_clause()
        self.expect(TokenType.KEYWORD, "VALUES")
        data = self.parse_object()
        self._finish()
        return InsertStatement(from_clause, data)

    def parse_delete(self) -> DeleteStatement:
        self.expect(TokenType.KEYWORD, "DELETE")
        cascade = self.accept_keyword("CASCADE")
        molecule_name: Optional[str] = None
        if self.peek().type is TokenType.IDENT and self.peek(1).is_keyword("FROM"):
            molecule_name = str(self.advance().value)
        self.expect(TokenType.KEYWORD, "FROM")
        from_clause = self.parse_from_clause()
        if molecule_name is not None and from_clause.molecule_name is None:
            from_clause = FromClause(from_clause.structure, molecule_name)
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        self._finish()
        return DeleteStatement(from_clause, where, cascade)

    def parse_modify(self) -> ModifyStatement:
        self.expect(TokenType.KEYWORD, "MODIFY")
        target = str(self.expect(TokenType.IDENT).value)
        self.expect(TokenType.KEYWORD, "FROM")
        from_clause = self.parse_from_clause()
        self.expect(TokenType.KEYWORD, "SET")
        assignments = [self.parse_assignment()]
        while self.peek().type is TokenType.COMMA:
            self.advance()
            assignments.append(self.parse_assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        self._finish()
        return ModifyStatement(target, from_clause, tuple(assignments), where)

    def parse_assignment(self) -> Assignment:
        lhs = self.parse_attribute_reference()
        operator = self.expect(TokenType.OPERATOR)
        if operator.value != "=":
            raise MQLSyntaxError(
                f"SET expects '=', found {operator.value!r}", operator.line, operator.column
            )
        return Assignment(lhs, self.parse_literal())

    # -------------------------------------------------------- object literals

    def parse_object(self) -> dict:
        """Parse ``{key: value, ...}`` into a plain nested dictionary."""
        self.expect(TokenType.LBRACE)
        data: dict = {}
        if self.peek().type is TokenType.RBRACE:
            self.advance()
            return data
        while True:
            key_token = self.peek()
            if key_token.type is TokenType.IDENT:
                key = str(self.advance().value)
            elif key_token.type is TokenType.KEYWORD:
                # Attribute names may collide with keywords (e.g. "set").
                key = str(self.advance().value).lower()
            else:
                raise MQLSyntaxError(
                    f"expected an attribute or atom-type name, found {key_token.value!r}",
                    key_token.line,
                    key_token.column,
                )
            self.expect(TokenType.COLON)
            data[key] = self.parse_object_value()
            if self.peek().type is TokenType.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenType.RBRACE)
        return data

    def parse_object_value(self) -> object:
        token = self.peek()
        if token.type is TokenType.LBRACE:
            return self.parse_object()
        if token.type is TokenType.LPAREN:
            # A parenthesized list of child objects: (obj, obj, ...).
            self.advance()
            children = [self.parse_object()]
            while self.peek().type is TokenType.COMMA:
                self.advance()
                children.append(self.parse_object())
            self.expect(TokenType.RPAREN)
            return children
        return self.parse_literal()

    def parse_literal(self) -> object:
        token = self.peek()
        if token.type is TokenType.DASH:
            self.advance()
            number = self.expect(TokenType.NUMBER)
            return -number.value  # type: ignore[operator]
        if token.type in (TokenType.STRING, TokenType.NUMBER):
            return self.advance().value
        if token.is_keyword("TRUE"):
            self.advance()
            return True
        if token.is_keyword("FALSE"):
            self.advance()
            return False
        raise MQLSyntaxError(
            f"expected a literal, found {token.value!r}", token.line, token.column
        )

    # ----------------------------------------------------------- FROM clause

    def parse_from_clause(self) -> FromClause:
        if self.peek().is_keyword("RECURSIVE"):
            return FromClause(self.parse_recursive())
        molecule_name: Optional[str] = None
        if (
            self.peek().type is TokenType.IDENT
            and self.peek(1).type is TokenType.LPAREN
        ):
            # "name ( path )" — a named molecule-type definition.
            molecule_name = str(self.advance().value)
            self.expect(TokenType.LPAREN)
            path = self.parse_path()
            self.expect(TokenType.RPAREN)
            return FromClause(path, molecule_name)
        return FromClause(self.parse_path())

    def parse_recursive(self) -> RecursiveStructure:
        self.expect(TokenType.KEYWORD, "RECURSIVE")
        atom_type = str(self.expect(TokenType.IDENT).value)
        link_name: Optional[str] = None
        if self.peek().type is TokenType.BRACKET_NAME:
            link_name = str(self.advance().value)
        direction = "down"
        if self.accept_keyword("DOWN"):
            direction = "down"
        elif self.accept_keyword("UP"):
            direction = "up"
        max_depth: Optional[int] = None
        if self.peek().type is TokenType.NUMBER:
            max_depth = int(self.advance().value)  # type: ignore[arg-type]
        return RecursiveStructure(atom_type, link_name, direction, max_depth)

    def parse_path(self) -> StructurePath:
        elements: List[Union[StructureNode, StructureBranch]] = [self.parse_node(None)]
        while self.peek().type is TokenType.DASH:
            self.advance()
            link_name = "-"
            if self.peek().type is TokenType.BRACKET_NAME:
                link_name = str(self.advance().value)
                self.expect(TokenType.DASH)
            elements.append(self.parse_node(link_name))
        return StructurePath(tuple(elements))

    def parse_node(self, link_name: Optional[str]) -> Union[StructureNode, StructureBranch]:
        token = self.peek()
        if token.type is TokenType.LPAREN:
            self.advance()
            branches = [self.parse_path()]
            while self.peek().type is TokenType.COMMA:
                self.advance()
                branches.append(self.parse_path())
            self.expect(TokenType.RPAREN)
            return StructureBranch(tuple(branches))
        if token.type in (TokenType.IDENT, TokenType.BRACKET_NAME):
            self.advance()
            return StructureNode(str(token.value), link_name)
        raise MQLSyntaxError(
            f"expected an atom type or a branch group, found {token.value!r}",
            token.line,
            token.column,
        )

    # ------------------------------------------------------------- condition

    def parse_condition(self):
        return self.parse_or()

    def parse_or(self):
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return LogicalCondition("OR", tuple(operands))

    def parse_and(self):
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return LogicalCondition("AND", tuple(operands))

    def parse_not(self):
        if self.accept_keyword("NOT"):
            return NotCondition(self.parse_not())
        return self.parse_primary()

    def parse_primary(self):
        if self.peek().type is TokenType.LPAREN:
            self.advance()
            condition = self.parse_condition()
            self.expect(TokenType.RPAREN)
            return condition
        return self.parse_comparison()

    def parse_comparison(self) -> ComparisonCondition:
        lhs = self.parse_attribute_reference()
        operator_token = self.expect(TokenType.OPERATOR)
        rhs: object
        token = self.peek()
        if token.type is TokenType.IDENT:
            rhs = self.parse_attribute_reference()
        else:
            try:
                rhs = self.parse_literal()
            except MQLSyntaxError:
                raise MQLSyntaxError(
                    f"expected a literal or attribute reference, found {token.value!r}",
                    token.line,
                    token.column,
                ) from None
        return ComparisonCondition(lhs, str(operator_token.value), rhs)

    def parse_attribute_reference(self) -> AttributeReference:
        first = self.expect(TokenType.IDENT)
        if self.peek().type is TokenType.DOT:
            self.advance()
            second = self.expect(TokenType.IDENT)
            return AttributeReference(str(second.value), str(first.value))
        return AttributeReference(str(first.value))


def parse(text: "str | List[Token]") -> "Statement | ExplainStatement":
    """Parse an MQL statement (source text or a prepared token list) into an AST."""
    tokens = tokenize(text) if isinstance(text, str) else text
    return _Parser(tokens).parse_input()
