"""Execution of MQL statements over a MAD database.

The interpreter wires the translated pieces to the molecule algebra exactly as
chapter 4 describes: "the whole molecule-type definition is expressed in the
FROM clause", "molecule restriction in MQL is expressed within the WHERE
clause, and molecule projection is accomplished within the SELECT clause".
Set operations between query blocks map onto Ω, Δ and Ψ.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.database import Database
from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.core.molecule_algebra import (
    molecule_difference,
    molecule_intersection,
    molecule_projection,
    molecule_restriction,
    molecule_type_definition,
    molecule_union,
)
from repro.core.recursion import RecursiveDescription, recursive_molecule_type
from repro.exceptions import MQLSemanticError
from repro.mql.ast_nodes import Query, SetOperation, Statement
from repro.mql.parser import parse
from repro.mql.translator import QueryTranslator

_anonymous_counter = itertools.count(1)


@dataclass
class QueryResult:
    """The outcome of executing one MQL statement.

    Attributes
    ----------
    molecule_type:
        The result molecule type (the statement's value in the algebra).
    database:
        The database after all propagation steps (the enlarged ``DB'``).
    statement:
        The parsed AST, kept for explain-style reporting.
    """

    molecule_type: MoleculeType
    database: Database
    statement: Optional[Statement] = None

    @property
    def molecules(self) -> Tuple[Molecule, ...]:
        """The result molecules."""
        return self.molecule_type.occurrence

    def __len__(self) -> int:
        return len(self.molecule_type)

    def __iter__(self):
        return iter(self.molecule_type)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Render every result molecule as a nested dictionary."""
        return [molecule.to_nested_dict() for molecule in self.molecule_type]


class MQLInterpreter:
    """Executes MQL statements against a database using the molecule algebra."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ---------------------------------------------------------------- public

    def execute(self, statement: "str | Statement") -> QueryResult:
        """Parse (when given text) and execute an MQL statement."""
        ast = parse(statement) if isinstance(statement, str) else statement
        molecule_type, database = self._execute_statement(ast, self.database)
        return QueryResult(molecule_type, database, ast)

    def explain(self, statement: "str | Statement") -> List[str]:
        """Return the algebra-operation plan for *statement* without executing it.

        The plan lists one line per algebra operation in execution order —
        this is the "sound basis to express the semantics" of MQL made
        visible, and it is what the optimizer rewrites.
        """
        ast = parse(statement) if isinstance(statement, str) else statement
        lines: List[str] = []
        self._explain_statement(ast, lines)
        return lines

    # -------------------------------------------------------------- internal

    def _execute_statement(
        self, statement: Statement, database: Database
    ) -> Tuple[MoleculeType, Database]:
        if isinstance(statement, SetOperation):
            left_type, database = self._execute_statement(statement.left, database)
            right_type, database = self._execute_statement(statement.right, database)
            if statement.operator == "UNION":
                result = molecule_union(database, left_type, right_type)
            elif statement.operator == "DIFFERENCE":
                result = molecule_difference(database, left_type, right_type)
            else:
                result = molecule_intersection(database, left_type, right_type)
            return result.molecule_type, result.database
        if not isinstance(statement, Query):
            raise MQLSemanticError(f"cannot execute {statement!r}")
        return self._execute_query(statement, database)

    def _execute_query(self, query: Query, database: Database) -> Tuple[MoleculeType, Database]:
        translator = QueryTranslator(database)
        description = translator.translate_from(query.from_clause)
        name = query.from_clause.molecule_name or f"mql_result{next(_anonymous_counter)}"

        if isinstance(description, RecursiveDescription):
            molecule_type = recursive_molecule_type(database, name, description)
            if query.where is not None:
                formula = translator.translate_condition(query.where, description)
                kept = tuple(m for m in molecule_type if formula.evaluate_molecule(m))
                molecule_type = MoleculeType(name, molecule_type.description, kept)
            if not query.select_all:
                raise MQLSemanticError("projection over a RECURSIVE structure is not supported")
            return molecule_type, database

        molecule_type = molecule_type_definition(database, name, description)
        if query.where is not None:
            formula = translator.translate_condition(query.where, description)
            restricted = molecule_restriction(database, molecule_type, formula)
            molecule_type, database = restricted.molecule_type, restricted.database
        projection = translator.translate_projection(query, description)
        if projection is not None:
            projected = molecule_projection(database, molecule_type, projection)
            molecule_type, database = projected.molecule_type, projected.database
        return molecule_type, database

    def _explain_statement(self, statement: Statement, lines: List[str], indent: str = "") -> None:
        if isinstance(statement, SetOperation):
            symbol = {"UNION": "Ω", "DIFFERENCE": "Δ", "INTERSECT": "Ψ"}[statement.operator]
            lines.append(f"{indent}{symbol} ({statement.operator.lower()})")
            self._explain_statement(statement.left, lines, indent + "  ")
            self._explain_statement(statement.right, lines, indent + "  ")
            return
        query = statement
        translator = QueryTranslator(self.database)
        description = translator.translate_from(query.from_clause)
        if isinstance(description, RecursiveDescription):
            lines.append(
                f"{indent}α_rec [{description.atom_type_name} via {description.link_type_name} "
                f"{description.direction}] (recursive molecule-type definition)"
            )
        else:
            structure = ", ".join(
                f"<{dl.link_type_name},{dl.source},{dl.target}>" for dl in description.directed_links
            )
            lines.append(
                f"{indent}α [{query.from_clause.molecule_name or 'anonymous'}, "
                f"{{{structure}}}] ({', '.join(description.atom_type_names)})"
            )
        if query.where is not None:
            formula = translator.translate_condition(query.where, description)
            lines.append(f"{indent}Σ [restr: {formula!r}]")
        if not query.select_all:
            lines.append(f"{indent}Π [{', '.join(query.projection)}]")


def execute(database: Database, statement: "str | Statement") -> QueryResult:
    """One-call convenience: execute *statement* against *database*."""
    return MQLInterpreter(database).execute(statement)
