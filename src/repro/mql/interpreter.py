"""Execution of MQL statements over a MAD database.

Every statement is translated into the logical plan IR (the literal α → Σ → Π
translation of chapter 4: "the whole molecule-type definition is expressed in
the FROM clause", "molecule restriction in MQL is expressed within the WHERE
clause, and molecule projection is accomplished within the SELECT clause";
set operations between query blocks map onto Ω, Δ and Ψ).  By default the
plan is handed to the rule-driven planner and the chosen variant runs on the
streaming executor — every MQL statement is optimized, and intermediate
molecule sets are never materialized.

The ``optimize=False`` escape hatch executes the literal translation through
the materializing molecule-algebra operations instead (each step propagates
its result set into an enlarged database, exactly as Definitions 8–10
prescribe); the parity tests assert both paths return identical molecule
sets.  ``EXPLAIN <statement>`` reports the planner's choice without
executing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.database import Database
from repro.core.molecule import Molecule, MoleculeType
from repro.core.molecule_algebra import (
    molecule_difference,
    molecule_intersection,
    molecule_projection,
    molecule_restriction,
    molecule_type_definition,
    molecule_union,
)
from repro.core.recursion import RecursiveDescription, recursive_molecule_type
from repro.engine.executor import Executor, compile_plan
from repro.engine.logical import (
    DeleteMolecules,
    InsertMolecule,
    ModifyAtoms,
    WritePlanNode,
    describe_plan,
    plan_name,
)
from repro.engine.physical import ExecutionCounters
from repro.engine.write import WriteSummary
from repro.exceptions import MQLSemanticError
from repro.mql.ast_nodes import (
    DeleteStatement,
    DMLStatement,
    ExplainStatement,
    InsertStatement,
    ModifyStatement,
    Query,
    SetOperation,
    Statement,
)
from repro.mql.parser import parse
from repro.mql.translator import QueryTranslator, next_anonymous_name
from repro.optimizer.planner import PlanChoice, Planner


@dataclass
class QueryResult:
    """The outcome of executing one MQL statement.

    Attributes
    ----------
    molecule_type:
        The result molecule type (the statement's value in the algebra).
    database:
        The database the result is valid over.  The streaming pipeline leaves
        the database unchanged; the literal (``optimize=False``) path returns
        the enlarged ``DB'`` produced by result propagation.
    statement:
        The parsed AST, kept for explain-style reporting.
    counters:
        Work counters of the streaming execution (``None`` on the literal
        path, which accounts no work).
    plan_choice:
        The planner's costed decision (``None`` on the literal path).
    explanation:
        For ``EXPLAIN`` statements: :meth:`PlanChoice.explain` output; the
        statement itself is not executed and the molecule set is empty.
    write_summary:
        For DML statements: the affected-count report of the write plan
        (molecules affected, atoms/links inserted, removed, modified).
    """

    molecule_type: MoleculeType
    database: Database
    statement: "Optional[Statement | DMLStatement]" = None
    counters: Optional[ExecutionCounters] = None
    plan_choice: Optional[PlanChoice] = None
    explanation: Optional[str] = None
    write_summary: Optional[WriteSummary] = None

    @property
    def molecules(self) -> Tuple[Molecule, ...]:
        """The result molecules."""
        return self.molecule_type.occurrence

    @property
    def affected_count(self) -> int:
        """Molecules affected by a DML statement (result size for queries)."""
        if self.write_summary is not None:
            return self.write_summary.molecules_affected
        return len(self.molecule_type)

    def __len__(self) -> int:
        return len(self.molecule_type)

    def __iter__(self):
        return iter(self.molecule_type)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Render every result molecule as a nested dictionary."""
        return [molecule.to_nested_dict() for molecule in self.molecule_type]


class MQLInterpreter:
    """Executes MQL statements against a database through the plan pipeline.

    The interpreter owns a :class:`~repro.optimizer.planner.Planner` (with
    statistics collected once from the database) and an
    :class:`~repro.engine.executor.Executor` whose access structures are
    reused across statements.  Both can be supplied by a storage engine to
    share its secondary indexes and cached atom network.
    """

    def __init__(
        self,
        database: Database,
        optimize: bool = True,
        executor: Optional[Executor] = None,
        planner: Optional[Planner] = None,
    ) -> None:
        self.database = database
        self.optimize = optimize
        self.executor = executor or Executor(database)
        self._planner = planner

    @property
    def planner(self) -> Planner:
        """The planner, created lazily: statistics collection is a full
        database pass and is skipped entirely on the literal path."""
        if self._planner is None:
            self._planner = Planner(self.database, executor=self.executor)
        return self._planner

    def apply_event(self, event) -> None:
        """Fold one database change event into the planner's statistics.

        The public maintenance hook the storage engine drives on every
        write; a no-op until the planner (and its statistics) exist.
        """
        if self._planner is not None:
            self._planner.apply_event(event)

    # ---------------------------------------------------------------- public

    def execute(
        self,
        statement: "str | Statement | DMLStatement | ExplainStatement",
        optimize: Optional[bool] = None,
    ) -> QueryResult:
        """Parse (when given text) and execute an MQL statement.

        DML statements (INSERT / DELETE / MODIFY) run atomically: the whole
        statement is applied inside an undo-logged transaction, and any
        failure rolls back every mutation already made.
        """
        ast = parse(statement) if isinstance(statement, str) else statement
        explain = isinstance(ast, ExplainStatement)
        inner = ast.statement if explain else ast
        if isinstance(inner, (InsertStatement, DeleteStatement, ModifyStatement)):
            return self._execute_dml(
                inner,
                explain=explain,
                optimize=self.optimize if optimize is None else optimize,
            )
        if explain:
            return self._explain_result(ast)
        if self.optimize if optimize is None else optimize:
            return self._execute_planned(inner)
        molecule_type, database = self._execute_statement(inner, self.database)
        return QueryResult(molecule_type, database, inner)

    def plan(self, statement: "str | Statement | DMLStatement") -> PlanChoice:
        """Translate *statement* and return the planner's costed choice.

        For DELETE/MODIFY the choice covers the *qualifying read* (the write
        node itself has no plan alternatives); INSERT has no read sub-plan.
        """
        ast = parse(statement) if isinstance(statement, str) else statement
        if isinstance(ast, ExplainStatement):
            ast = ast.statement
        if isinstance(ast, (InsertStatement, DeleteStatement, ModifyStatement)):
            write_plan = QueryTranslator(self.database).translate_dml(ast)
            if isinstance(write_plan, InsertMolecule):
                raise MQLSemanticError("INSERT has no qualifying read plan to optimize")
            return self.planner.optimize(write_plan.source)
        logical = QueryTranslator(self.database).translate_statement(ast)
        return self.planner.optimize(logical)

    def explain(self, statement: "str | Statement | DMLStatement") -> List[str]:
        """Return the algebra-operation plan for *statement* without executing it.

        The plan lists one line per algebra operation — this is the "sound
        basis to express the semantics" of MQL made visible (the literal
        logical plan, before any rewriting); it is what the optimizer
        rewrites.
        """
        ast = parse(statement) if isinstance(statement, str) else statement
        if isinstance(ast, ExplainStatement):
            ast = ast.statement
        translator = QueryTranslator(self.database)
        if isinstance(ast, (InsertStatement, DeleteStatement, ModifyStatement)):
            return describe_plan(translator.translate_dml(ast)).splitlines()
        logical = translator.translate_statement(ast)
        return describe_plan(logical).splitlines()

    # ------------------------------------------------------ planned pipeline

    def _execute_planned(self, statement: Statement) -> QueryResult:
        choice = self.plan(statement)
        result = self.executor.run(choice.best)
        return QueryResult(
            result.molecule_type,
            result.database,
            statement,
            counters=result.counters,
            plan_choice=choice,
        )

    # --------------------------------------------------------- write pipeline

    def _execute_dml(
        self, statement: DMLStatement, explain: bool, optimize: bool
    ) -> QueryResult:
        """Plan (and unless *explain*, execute) one DML statement atomically."""
        plan = QueryTranslator(self.database).translate_dml(statement)
        choice: Optional[PlanChoice] = None
        if optimize and isinstance(plan, (DeleteMolecules, ModifyAtoms)):
            choice = self.planner.optimize(plan.source)
            plan = replace(plan, source=choice.best)
        if explain:
            return self._explain_write(statement, plan, choice)
        result = self.executor.run_write(plan)
        return QueryResult(
            result.molecule_type,
            self.database,
            statement,
            counters=result.counters,
            plan_choice=choice,
            write_summary=result.summary,
        )

    def _explain_write(
        self,
        statement: DMLStatement,
        plan: WritePlanNode,
        choice: Optional[PlanChoice],
    ) -> QueryResult:
        """Report a write plan (and its optimized qualifying read) without executing."""
        explanation = describe_plan(plan)
        if choice is not None:
            explanation += "\nqualifying read — " + choice.explain()
        if isinstance(plan, InsertMolecule):
            empty = MoleculeType(plan.name, plan.description, ())
        else:
            operator = compile_plan(plan.source)
            description = operator.describe(self.executor.context())
            empty = MoleculeType(plan_name(plan.source), description, ())
        return QueryResult(
            empty,
            self.database,
            statement,
            plan_choice=choice,
            explanation=explanation,
        )

    def _explain_result(self, ast: ExplainStatement) -> QueryResult:
        choice = self.plan(ast.statement)
        # The empty result carries the plan's *output* schema (post-projection),
        # which the compiled operator reports — not the defining α structure.
        operator = compile_plan(choice.best)
        description = operator.describe(self.executor.context())
        empty = MoleculeType(plan_name(choice.best), description, ())
        return QueryResult(
            empty,
            self.database,
            ast.statement,
            plan_choice=choice,
            explanation=choice.explain(),
        )

    # ------------------------------------------------- literal algebra path

    def _execute_statement(
        self, statement: Statement, database: Database
    ) -> Tuple[MoleculeType, Database]:
        if isinstance(statement, SetOperation):
            left_type, database = self._execute_statement(statement.left, database)
            right_type, database = self._execute_statement(statement.right, database)
            if statement.operator == "UNION":
                result = molecule_union(database, left_type, right_type)
            elif statement.operator == "DIFFERENCE":
                result = molecule_difference(database, left_type, right_type)
            else:
                result = molecule_intersection(database, left_type, right_type)
            return result.molecule_type, result.database
        if not isinstance(statement, Query):
            raise MQLSemanticError(f"cannot execute {statement!r}")
        return self._execute_query(statement, database)

    def _execute_query(self, query: Query, database: Database) -> Tuple[MoleculeType, Database]:
        translator = QueryTranslator(database)
        description = translator.translate_from(query.from_clause)
        name = query.from_clause.molecule_name or next_anonymous_name()

        if isinstance(description, RecursiveDescription):
            molecule_type = recursive_molecule_type(database, name, description)
            if query.where is not None:
                formula = translator.translate_condition(query.where, description)
                kept = tuple(m for m in molecule_type if formula.evaluate_molecule(m))
                molecule_type = MoleculeType(name, molecule_type.description, kept)
            if not query.select_all:
                raise MQLSemanticError("projection over a RECURSIVE structure is not supported")
            return molecule_type, database

        molecule_type = molecule_type_definition(database, name, description)
        if query.where is not None:
            formula = translator.translate_condition(query.where, description)
            restricted = molecule_restriction(database, molecule_type, formula)
            molecule_type, database = restricted.molecule_type, restricted.database
        projection = translator.translate_projection(query, description)
        if projection is not None:
            projected = molecule_projection(database, molecule_type, projection)
            molecule_type, database = projected.molecule_type, projected.database
        return molecule_type, database

def execute(
    database: Database,
    statement: "str | Statement | ExplainStatement",
    optimize: bool = True,
) -> QueryResult:
    """One-call convenience: execute *statement* against *database*."""
    return MQLInterpreter(database, optimize=optimize).execute(statement)
