"""Execution of MQL statements over a MAD database.

Every statement is translated into the logical plan IR (the literal α → Σ → Π
translation of chapter 4: "the whole molecule-type definition is expressed in
the FROM clause", "molecule restriction in MQL is expressed within the WHERE
clause, and molecule projection is accomplished within the SELECT clause";
set operations between query blocks map onto Ω, Δ and Ψ).  By default the
plan is handed to the rule-driven planner and the chosen variant runs on the
streaming executor — every MQL statement is optimized, and intermediate
molecule sets are never materialized.

The ``optimize=False`` escape hatch executes the literal translation through
the materializing molecule-algebra operations instead (each step propagates
its result set into an enlarged database, exactly as Definitions 8–10
prescribe); the parity tests assert both paths return identical molecule
sets.  ``EXPLAIN <statement>`` reports the planner's choice without
executing.
"""

from __future__ import annotations

import threading

from repro.analysis.runtime import make_lock, make_rlock
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.database import Database
from repro.core.molecule import Molecule, MoleculeType
from repro.core.molecule_algebra import (
    molecule_difference,
    molecule_intersection,
    molecule_projection,
    molecule_restriction,
    molecule_type_definition,
    molecule_union,
)
from repro.core.recursion import (
    RecursiveDescription,
    RecursiveMolecule,
    recursive_molecule_type,
)
from repro.engine.executor import Executor, compile_plan
from repro.engine.logical import (
    AggregatePlan,
    ColumnarAggregatePlan,
    DeleteMolecules,
    InsertMolecule,
    ModifyAtoms,
    WritePlanNode,
    describe_plan,
    plan_name,
    recursive_nodes,
)
from repro.engine.physical import ExecutionCounters
from repro.engine.write import WriteSummary
from repro.exceptions import MQLSemanticError, TransactionConflictError, TransactionError
from repro.manipulation.transactions import Transaction
from repro.mql.ast_nodes import (
    CheckpointStatement,
    DeleteStatement,
    DMLStatement,
    ExplainStatement,
    InsertStatement,
    ModifyStatement,
    Query,
    SetOperation,
    Statement,
    TransactionStatement,
)
from repro.mql.parser import parse
from repro.mql.translator import QueryTranslator, next_anonymous_name
from repro.optimizer.planner import PlanChoice, Planner
from repro.optimizer.statistics import recursion_profile_key


@dataclass
class QueryResult:
    """The outcome of executing one MQL statement.

    Attributes
    ----------
    molecule_type:
        The result molecule type (the statement's value in the algebra).
    database:
        The database the result is valid over.  The streaming pipeline leaves
        the database unchanged; the literal (``optimize=False``) path returns
        the enlarged ``DB'`` produced by result propagation.
    statement:
        The parsed AST, kept for explain-style reporting.
    counters:
        Work counters of the streaming execution (``None`` on the literal
        path, which accounts no work).
    plan_choice:
        The planner's costed decision (``None`` on the literal path).
    explanation:
        For ``EXPLAIN`` statements: :meth:`PlanChoice.explain` output; the
        statement itself is not executed and the molecule set is empty.
    write_summary:
        For DML statements: the affected-count report of the write plan
        (molecules affected, atoms/links inserted, removed, modified).
    columns / rows:
        For aggregate statements (``GROUP BY``/aggregate functions): the
        result is a canonically ordered row set, not a molecule set —
        *columns* names the group keys and aggregates, *rows* carries the
        value tuples; ``molecule_type`` is then ``None``.
    """

    molecule_type: Optional[MoleculeType]
    database: Database
    statement: "Optional[Statement | DMLStatement | TransactionStatement]" = None
    counters: Optional[ExecutionCounters] = None
    plan_choice: Optional[PlanChoice] = None
    explanation: Optional[str] = None
    write_summary: Optional[WriteSummary] = None
    columns: Optional[Tuple[str, ...]] = None
    rows: Optional[Tuple[Tuple, ...]] = None

    @property
    def molecules(self) -> Tuple[Molecule, ...]:
        """The result molecules."""
        if self.molecule_type is None:
            return ()
        return self.molecule_type.occurrence

    @property
    def affected_count(self) -> int:
        """Molecules affected by a DML statement (result size for queries)."""
        if self.write_summary is not None:
            return self.write_summary.molecules_affected
        return len(self)

    def __len__(self) -> int:
        if self.rows is not None:
            return len(self.rows)
        return len(self.molecule_type) if self.molecule_type is not None else 0

    def __iter__(self):
        if self.rows is not None:
            return iter(self.rows)
        return iter(self.molecule_type if self.molecule_type is not None else ())

    def to_dicts(self) -> List[Dict[str, object]]:
        """Render the result — molecules as nested dictionaries, aggregate
        rows as flat column-name dictionaries."""
        if self.rows is not None:
            return [dict(zip(self.columns or (), row)) for row in self.rows]
        return [molecule.to_nested_dict() for molecule in self]


class MQLInterpreter:
    """Executes MQL statements against a database through the plan pipeline.

    The interpreter owns a :class:`~repro.optimizer.planner.Planner` (with
    statistics collected once from the database) and an
    :class:`~repro.engine.executor.Executor` whose access structures are
    reused across statements.  Both can be supplied by a storage engine to
    share its secondary indexes and cached atom network.
    """

    def __init__(
        self,
        database: Database,
        optimize: bool = True,
        executor: Optional[Executor] = None,
        planner: Optional[Planner] = None,
        checkpoint=None,
    ) -> None:
        self.database = database
        self.optimize = optimize
        self.executor = executor or Executor(database)
        self._planner = planner
        #: Active session transaction (``BEGIN WORK`` … ``COMMIT WORK``).
        self._session: Optional[Transaction] = None  # guarded-by: MQLInterpreter._session_guard
        #: The thread that ran ``BEGIN WORK`` — sessions have thread
        #: affinity: session-scoped statements from any other thread are
        #: rejected with a clear error (pinned-snapshot reads via ``at=``
        #: remain safe from every thread).
        self._session_thread: Optional[int] = None  # guarded-by: MQLInterpreter._session_guard
        #: Guards the ``_session``/``_session_thread`` transitions: two
        #: threads racing ``BEGIN WORK`` must not both pass the
        #: already-active check and orphan one registered, pinned
        #: transaction forever.
        self._session_guard = make_lock("MQLInterpreter._session_guard")
        #: Serializes planning and statistics maintenance: snapshot readers
        #: on worker threads plan one at a time (execution itself runs
        #: concurrently), and a writer folding a change event into the
        #: planner statistics can never race a reader mid-optimize.
        self._plan_lock = make_rlock("MQLInterpreter._plan_lock")
        #: Callable serving MQL ``CHECKPOINT`` — a durable storage engine
        #: passes its ``PrimaEngine.checkpoint``; ``None`` rejects the
        #: statement (nothing durable to checkpoint).
        self._checkpoint_hook = checkpoint

    @classmethod
    def from_directory(
        cls, directory, fsync: str = "batch", maintenance: str = "incremental"
    ) -> "MQLInterpreter":
        """Reopen a durable engine's directory and return its interpreter.

        Recovery (checkpoint load + redo-only WAL replay) happens during the
        engine construction; the returned interpreter serves MQL — including
        ``CHECKPOINT`` — over the recovered state, and its engine keeps
        logging subsequent commits to the same directory.
        """
        from repro.storage.engine import PrimaEngine  # deferred: package cycle

        return PrimaEngine.open(
            directory, fsync=fsync, maintenance=maintenance
        ).interpreter()

    @property
    def planner(self) -> Planner:
        """The planner, created lazily: statistics collection is a full
        database pass and is skipped entirely on the literal path."""
        with self._plan_lock:
            if self._planner is None:
                self._planner = Planner(self.database, executor=self.executor)
            return self._planner

    def apply_event(self, event) -> None:
        """Fold one database change event into the planner's statistics.

        The public maintenance hook the storage engine drives on every
        write; a no-op until the planner (and its statistics) exist.
        Serialized on the planner lock against concurrent plan optimization
        by snapshot-reader threads.
        """
        with self._plan_lock:
            if self._planner is not None:
                self._planner.apply_event(event)

    # ---------------------------------------------------------------- public

    def execute(
        self,
        statement: "str | Statement | DMLStatement | ExplainStatement | TransactionStatement",
        optimize: Optional[bool] = None,
        at=None,
    ) -> QueryResult:
        """Parse (when given text) and execute an MQL statement.

        DML statements (INSERT / DELETE / MODIFY) run atomically: outside a
        session transaction the whole statement is applied inside its own
        undo-logged, auto-committed transaction; inside ``BEGIN WORK`` …
        ``COMMIT WORK`` it runs under a savepoint of the session transaction
        and is published only at ``COMMIT WORK`` (first committer wins).

        *at* (a :class:`~repro.core.versions.Snapshot`) pins the read to a
        generation — the storage engine's ``snapshot_at`` handles pass it.
        Inside a session transaction queries default to the snapshot pinned
        at ``BEGIN WORK`` plus the session's own writes (repeatable reads).
        Two deliberate boundaries: the literal ``optimize=False`` path
        materializes against the head and is rejected while a snapshot is in
        play (no silently inconsistent reads), and the *qualifying read* of
        a DML statement always runs at the head — deletions must observe
        every concurrent-committed link to never leave dangling references,
        and any overlap with a concurrent writer's keys aborts via
        first-committer-wins anyway.

        Thread affinity: while a ``BEGIN WORK`` session is active, every
        statement that would touch the session (anything without ``at=``)
        must come from the thread that began it; other threads get a
        :class:`TransactionError` pointing them at snapshot handles.
        Pinned reads (``at=``) are safe from any thread.
        """
        ast = parse(statement) if isinstance(statement, str) else statement
        if at is None:
            self._check_session_affinity()
        if isinstance(ast, TransactionStatement):
            return self._execute_transaction_statement(ast)
        if isinstance(ast, CheckpointStatement):
            return self._execute_checkpoint(ast)
        explain = isinstance(ast, ExplainStatement)
        inner = ast.statement if explain else ast
        if isinstance(inner, TransactionStatement):
            raise MQLSemanticError("transaction statements cannot be EXPLAINed")
        if isinstance(inner, CheckpointStatement):
            raise MQLSemanticError("CHECKPOINT cannot be EXPLAINed")
        if isinstance(inner, (InsertStatement, DeleteStatement, ModifyStatement)):
            return self._execute_dml(
                inner,
                explain=explain,
                optimize=self.optimize if optimize is None else optimize,
            )
        if explain:
            return self._explain_result(ast)
        snapshot = at if at is not None else self._session_snapshot()
        if self.optimize if optimize is None else optimize:
            return self._execute_planned(inner, snapshot=snapshot)
        if snapshot is not None:
            raise MQLSemanticError(
                "the literal (optimize=False) path materializes against the "
                "head and cannot serve a pinned snapshot; use the planned "
                "pipeline for repeatable reads"
            )
        molecule_type, database = self._execute_statement(inner, self.database)
        return QueryResult(molecule_type, database, inner)

    # --------------------------------------------------- session transactions

    @property
    def in_transaction(self) -> bool:
        """``True`` while a ``BEGIN WORK`` session transaction is active."""
        return self._session is not None and self._session.is_active

    def _session_snapshot(self):
        if self._session is not None and self._session.is_active:
            return self._session.snapshot
        return None

    def _check_session_affinity(self) -> None:
        """Reject session-scoped statements from a foreign thread.

        One MQL session = one thread: the session transaction's undo log,
        savepoints and pinned snapshot are single-writer state.  Concurrent
        readers belong on pinned snapshot handles
        (``engine.snapshot_at()`` / ``engine.parallel_query()``), which
        execute through ``at=`` and bypass the session entirely.
        """
        if not self.in_transaction:
            return
        if threading.get_ident() != self._session_thread:
            raise TransactionError(
                "this interpreter has an active BEGIN WORK session bound to "
                "the thread that began it; sessions have thread affinity — "
                "run concurrent reads through engine.snapshot_at() or "
                "engine.parallel_query() instead"
            )

    def _execute_transaction_statement(self, statement: TransactionStatement) -> QueryResult:
        # One session transition at a time: a racing second BEGIN WORK must
        # see the first one's session and fail, never orphan a registered,
        # snapshot-pinned transaction by overwriting it.
        with self._session_guard:
            return self._transaction_statement_locked(statement)

    # requires: MQLInterpreter._session_guard
    def _transaction_statement_locked(
        self, statement: TransactionStatement
    ) -> QueryResult:
        action = statement.action
        if action == "BEGIN":
            if self.in_transaction:
                raise TransactionError("a transaction is already active in this session")
            # Versioning is enabled on demand: from here on mutations are
            # stamped, and the session's pin makes them recorded.
            self.database.enable_versioning()
            txn = Transaction(self.database, pin_snapshot=True)
            txn.begin()
            self._session = txn
            self._session_thread = threading.get_ident()
        elif action in ("COMMIT", "ROLLBACK"):
            txn = self._session
            if txn is None or not txn.is_active:
                raise TransactionError(f"{action} WORK without an active transaction")
            self._session = None
            self._session_thread = None
            if action == "COMMIT":
                try:
                    txn.commit()  # raises TransactionConflictError when it loses
                except BaseException:
                    if txn.is_active:
                        # Not a conflict (the loser is fully rolled back) but
                        # a commit-time failure such as a WAL append error:
                        # the session stays open so the user can retry COMMIT
                        # WORK or ROLLBACK WORK explicitly.
                        self._session = txn
                        self._session_thread = threading.get_ident()
                    raise
            else:
                txn.rollback()
        else:  # pragma: no cover - the parser only produces the three actions
            raise MQLSemanticError(f"unknown transaction statement {action!r}")
        return QueryResult(
            None, self.database, statement, explanation=f"{action} WORK"
        )

    def _execute_checkpoint(self, statement: CheckpointStatement) -> QueryResult:
        """Run MQL ``CHECKPOINT`` through the engine's checkpoint hook."""
        if self._checkpoint_hook is None:
            raise MQLSemanticError(
                "CHECKPOINT requires a durable storage engine "
                "(PrimaEngine with durability=DurabilityConfig(...))"
            )
        info = self._checkpoint_hook()
        return QueryResult(
            None,
            self.database,
            statement,
            explanation=(
                f"CHECKPOINT #{info['checkpoints']} at generation "
                f"{info['generation']} ({info['atoms']} atoms, {info['links']} links); "
                "WAL truncated"
            ),
        )

    def plan(self, statement: "str | Statement | DMLStatement") -> PlanChoice:
        """Translate *statement* and return the planner's costed choice.

        For DELETE/MODIFY the choice covers the *qualifying read* (the write
        node itself has no plan alternatives); INSERT has no read sub-plan.

        Serialized on the planner lock: concurrent snapshot-reader threads
        plan one at a time over the shared statistics (execution of the
        chosen plan runs outside the lock, fully concurrent).
        """
        ast = parse(statement) if isinstance(statement, str) else statement
        if isinstance(ast, ExplainStatement):
            ast = ast.statement
        if isinstance(ast, (TransactionStatement, CheckpointStatement)):
            raise MQLSemanticError("transaction and checkpoint statements have no plan")
        with self._plan_lock:
            if isinstance(ast, (InsertStatement, DeleteStatement, ModifyStatement)):
                write_plan = QueryTranslator(self.database).translate_dml(ast)
                if isinstance(write_plan, InsertMolecule):
                    raise MQLSemanticError("INSERT has no qualifying read plan to optimize")
                return self.planner.optimize(write_plan.source)
            logical = QueryTranslator(self.database).translate_statement(ast)
            return self.planner.optimize(logical)

    def explain(self, statement: "str | Statement | DMLStatement") -> List[str]:
        """Return the algebra-operation plan for *statement* without executing it.

        The plan lists one line per algebra operation — this is the "sound
        basis to express the semantics" of MQL made visible (the literal
        logical plan, before any rewriting); it is what the optimizer
        rewrites.
        """
        ast = parse(statement) if isinstance(statement, str) else statement
        if isinstance(ast, ExplainStatement):
            ast = ast.statement
        translator = QueryTranslator(self.database)
        if isinstance(ast, (InsertStatement, DeleteStatement, ModifyStatement)):
            return describe_plan(translator.translate_dml(ast)).splitlines()
        logical = translator.translate_statement(ast)
        return describe_plan(logical).splitlines()

    # ------------------------------------------------------ planned pipeline

    def _execute_planned(self, statement: Statement, snapshot=None) -> QueryResult:
        choice = self.plan(statement)
        context = self.executor.context(snapshot=snapshot) if snapshot is not None else None
        if isinstance(choice.best, (AggregatePlan, ColumnarAggregatePlan)):
            aggregate = self.executor.run_aggregate(choice.best, context=context)
            return QueryResult(
                None,
                self.database,
                statement,
                counters=aggregate.counters,
                plan_choice=choice,
                columns=aggregate.columns,
                rows=aggregate.rows,
            )
        result = self.executor.run(choice.best, context=context)
        self._observe_recursion(choice.best, result)
        return QueryResult(
            result.molecule_type,
            self.database,
            statement,
            counters=result.counters,
            plan_choice=choice,
        )

    def _observe_recursion(self, plan, result) -> None:
        """Feed observed fixpoint behaviour back into the planner statistics.

        After a recursive execution the actual closure sizes and traversal
        depths (the fixpoint iteration counts) are known exactly — recording
        them per recursive description turns the cost model's flat
        ``atoms + links`` recursion heuristic into a data-driven estimate,
        and EXPLAIN reports the observed numbers on the next plan.
        """
        nodes = recursive_nodes(plan)
        if not nodes:
            return
        molecules = [
            molecule
            for molecule in result.molecule_type
            if isinstance(molecule, RecursiveMolecule)
        ]
        if not molecules:
            return
        roots = len(molecules)
        avg_closure = sum(len(molecule) for molecule in molecules) / roots
        avg_depth = sum(molecule.depth() for molecule in molecules) / roots
        with self._plan_lock:
            statistics = self.planner.statistics
            for node in nodes:
                statistics.observe_recursion(
                    recursion_profile_key(node.description), roots, avg_closure, avg_depth
                )

    # --------------------------------------------------------- write pipeline

    def _execute_dml(
        self, statement: DMLStatement, explain: bool, optimize: bool
    ) -> QueryResult:
        """Plan (and unless *explain*, execute) one DML statement atomically."""
        plan = QueryTranslator(self.database).translate_dml(statement)
        choice: Optional[PlanChoice] = None
        if optimize and isinstance(plan, (DeleteMolecules, ModifyAtoms)):
            with self._plan_lock:
                choice = self.planner.optimize(plan.source)
            plan = replace(plan, source=choice.best)
        if explain:
            return self._explain_write(statement, plan, choice)
        txn = self._session if self.in_transaction else None
        try:
            result = self.executor.run_write(plan, txn=txn)
        except TransactionConflictError:
            # The session lost a write-write race: snapshot-isolation dooms
            # the whole transaction, not just the statement.  The session
            # teardown takes the guard — a concurrent BEGIN WORK must see
            # either the doomed session or the cleared slot, never a torn
            # transition.
            if txn is not None:
                with self._session_guard:
                    if self._session is txn:
                        self._session = None
                        self._session_thread = None
                if txn.is_active:
                    txn.rollback()
            raise
        return QueryResult(
            result.molecule_type,
            self.database,
            statement,
            counters=result.counters,
            plan_choice=choice,
            write_summary=result.summary,
        )

    def _explain_write(
        self,
        statement: DMLStatement,
        plan: WritePlanNode,
        choice: Optional[PlanChoice],
    ) -> QueryResult:
        """Report a write plan (and its optimized qualifying read) without executing.

        ``EXPLAIN DELETE``/``EXPLAIN MODIFY`` report the planner's choice for
        the qualifying read; ``EXPLAIN INSERT`` and ``EXPLAIN MODIFY``
        additionally report the validation and cardinality checks the write
        operator will run.
        """
        explanation = describe_plan(plan)
        if choice is not None:
            explanation += "\nqualifying read — " + choice.explain()
        checks = self._write_validation_report(plan)
        if checks:
            explanation += "\nwill validate —\n" + "\n".join("  " + line for line in checks)
        if isinstance(plan, InsertMolecule):
            empty = MoleculeType(plan.name, plan.description, ())
        else:
            operator = compile_plan(plan.source)
            description = operator.describe(self.executor.context())
            empty = MoleculeType(plan_name(plan.source), description, ())
        return QueryResult(
            empty,
            self.database,
            statement,
            plan_choice=choice,
            explanation=explanation,
        )

    def _write_validation_report(self, plan: WritePlanNode) -> List[str]:
        """The validation/cardinality checks a write plan will run, one per line."""
        from repro.core.derivation import resolve_description  # deferred: cycle

        lines: List[str] = []
        if isinstance(plan, InsertMolecule):
            description = resolve_description(self.database, plan.description)
            for type_name in description.traversal_order():
                bare = type_name.split("@", 1)[0]
                if not self.database.has_atom_type(bare):
                    continue
                attributes = ", ".join(self.database.atyp(bare).description.names)
                lines.append(f"domain check {bare}({attributes})")
            for directed in description.directed_links:
                name = directed.link_type_name.split("~", 1)[0]
                if not self.database.has_link_type(name):
                    continue
                link_type = self.database.ltyp(name)
                lines.append(
                    f"cardinality check {name} ({link_type.cardinality.value}) "
                    f"{directed.source.split('@', 1)[0]} - {directed.target.split('@', 1)[0]}"
                )
            shared = self._shared_subobject_references(plan.data)
            for reference in shared:
                lines.append(f"shared subobject: reuse existing atom _id={reference!r}")
        elif isinstance(plan, ModifyAtoms):
            target = plan.atom_type_name.split("@", 1)[0]
            if self.database.has_atom_type(target):
                description = self.database.atyp(target).description
                for attribute, value in plan.updates:
                    lines.append(f"domain check {target}.{attribute} = {value!r}")
                lines.append(f"identity preserved: links of {target} atoms stay valid")
        return lines

    @staticmethod
    def _shared_subobject_references(data: "Mapping | Sequence") -> List[object]:
        """Collect every ``_id`` reference in a nested INSERT object literal."""
        found: List[object] = []
        if isinstance(data, dict):
            for key, value in data.items():
                if key == "_id":
                    found.append(value)
                else:
                    found.extend(MQLInterpreter._shared_subobject_references(value))
        elif isinstance(data, (list, tuple)):
            for item in data:
                found.extend(MQLInterpreter._shared_subobject_references(item))
        return found

    def _explain_result(self, ast: ExplainStatement) -> QueryResult:
        choice = self.plan(ast.statement)
        # The empty result carries the plan's *output* schema (post-projection),
        # which the compiled operator reports — not the defining α structure.
        operator = compile_plan(choice.best)
        description = operator.describe(self.executor.context())
        empty = MoleculeType(plan_name(choice.best), description, ())
        return QueryResult(
            empty,
            self.database,
            ast.statement,
            plan_choice=choice,
            explanation=choice.explain(),
        )

    # ------------------------------------------------- literal algebra path

    def _execute_statement(
        self, statement: Statement, database: Database
    ) -> Tuple[MoleculeType, Database]:
        if isinstance(statement, SetOperation):
            left_type, database = self._execute_statement(statement.left, database)
            right_type, database = self._execute_statement(statement.right, database)
            if statement.operator == "UNION":
                result = molecule_union(database, left_type, right_type)
            elif statement.operator == "DIFFERENCE":
                result = molecule_difference(database, left_type, right_type)
            else:
                result = molecule_intersection(database, left_type, right_type)
            return result.molecule_type, result.database
        if not isinstance(statement, Query):
            raise MQLSemanticError(f"cannot execute {statement!r}")
        return self._execute_query(statement, database)

    def _execute_query(self, query: Query, database: Database) -> Tuple[MoleculeType, Database]:
        if query.aggregates or query.group_by:
            raise MQLSemanticError(
                "aggregation runs only through the planned pipeline; the "
                "literal (optimize=False) path has no Γ materialization"
            )
        translator = QueryTranslator(database)
        description = translator.translate_from(query.from_clause)
        name = query.from_clause.molecule_name or next_anonymous_name()

        if isinstance(description, RecursiveDescription):
            molecule_type = recursive_molecule_type(database, name, description)
            if query.where is not None:
                formula = translator.translate_condition(query.where, description)
                kept = tuple(m for m in molecule_type if formula.evaluate_molecule(m))
                molecule_type = MoleculeType(name, molecule_type.description, kept)
            if not query.select_all:
                raise MQLSemanticError("projection over a RECURSIVE structure is not supported")
            return molecule_type, database

        molecule_type = molecule_type_definition(database, name, description)
        if query.where is not None:
            formula = translator.translate_condition(query.where, description)
            restricted = molecule_restriction(database, molecule_type, formula)
            molecule_type, database = restricted.molecule_type, restricted.database
        projection = translator.translate_projection(query, description)
        if projection is not None:
            projected = molecule_projection(database, molecule_type, projection)
            molecule_type, database = projected.molecule_type, projected.database
        return molecule_type, database

def execute(
    database: Database,
    statement: "str | Statement | ExplainStatement",
    optimize: bool = True,
) -> QueryResult:
    """One-call convenience: execute *statement* against *database*."""
    return MQLInterpreter(database, optimize=optimize).execute(statement)
