"""MQL — the molecule query language ("MOL") of chapter 4.

An SQL-like surface language whose semantics are *defined by translation to
the molecule algebra*: the FROM clause is a molecule-type definition (α), the
WHERE clause a molecule-type restriction (Σ), and the SELECT clause a
molecule-type projection (Π).  Set operations between query blocks map to
Ω/Δ/Ψ.

The two statements of the paper work verbatim::

    SELECT ALL
    FROM mt_state (state - area - edge - point);

    SELECT ALL
    FROM point - edge - (area - state, net - river)
    WHERE point.name = 'pn';

Pipeline: :func:`tokenize` → :func:`parse` → :class:`QueryTranslator` →
:class:`MQLInterpreter` (or the one-call convenience :func:`execute`).
"""

from repro.mql.ast_nodes import (
    AttributeReference,
    ComparisonCondition,
    FromClause,
    LogicalCondition,
    NotCondition,
    Query,
    RecursiveStructure,
    SetOperation,
    StructureBranch,
    StructureNode,
)
from repro.mql.interpreter import MQLInterpreter, QueryResult, execute
from repro.mql.lexer import Token, TokenType, tokenize
from repro.mql.parser import parse
from repro.mql.translator import QueryTranslator, structure_to_description

__all__ = [
    "AttributeReference",
    "ComparisonCondition",
    "FromClause",
    "LogicalCondition",
    "MQLInterpreter",
    "NotCondition",
    "Query",
    "QueryResult",
    "QueryTranslator",
    "RecursiveStructure",
    "SetOperation",
    "StructureBranch",
    "StructureNode",
    "Token",
    "TokenType",
    "execute",
    "parse",
    "structure_to_description",
    "tokenize",
]
