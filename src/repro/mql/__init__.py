"""MQL — the molecule query language ("MOL") of chapter 4.

An SQL-like surface language whose semantics are *defined by translation to
the molecule algebra*: the FROM clause is a molecule-type definition (α), the
WHERE clause a molecule-type restriction (Σ), and the SELECT clause a
molecule-type projection (Π).  Set operations between query blocks map to
Ω/Δ/Ψ.

The two statements of the paper work verbatim::

    SELECT ALL
    FROM mt_state (state - area - edge - point);

    SELECT ALL
    FROM point - edge - (area - state, net - river)
    WHERE point.name = 'pn';

Pipeline: :func:`tokenize` → :func:`parse` → :class:`QueryTranslator` (logical
plan) → :class:`~repro.optimizer.planner.Planner` (rewrite + cost) →
:class:`~repro.engine.executor.Executor` (streaming evaluation), driven by
:class:`MQLInterpreter` (or the one-call convenience :func:`execute`).  Pass
``optimize=False`` for the literal, materializing α→Σ→Π evaluation, or prefix
a statement with ``EXPLAIN`` to see the planner's choice without executing.
"""

from repro.mql.ast_nodes import (
    Assignment,
    AttributeReference,
    ComparisonCondition,
    DeleteStatement,
    ExplainStatement,
    FromClause,
    InsertStatement,
    LogicalCondition,
    ModifyStatement,
    NotCondition,
    Query,
    RecursiveStructure,
    SetOperation,
    StructureBranch,
    StructureNode,
    TransactionStatement,
)
from repro.mql.interpreter import MQLInterpreter, QueryResult, execute
from repro.mql.lexer import Token, TokenType, tokenize
from repro.mql.parser import parse
from repro.mql.translator import QueryTranslator, structure_to_description, to_logical_plan

__all__ = [
    "Assignment",
    "AttributeReference",
    "ComparisonCondition",
    "DeleteStatement",
    "ExplainStatement",
    "FromClause",
    "InsertStatement",
    "LogicalCondition",
    "ModifyStatement",
    "MQLInterpreter",
    "NotCondition",
    "Query",
    "QueryResult",
    "QueryTranslator",
    "RecursiveStructure",
    "SetOperation",
    "StructureBranch",
    "StructureNode",
    "Token",
    "TokenType",
    "TransactionStatement",
    "execute",
    "parse",
    "structure_to_description",
    "to_logical_plan",
    "tokenize",
]
