"""Translation of MQL ASTs into molecule-algebra artifacts and logical plans.

The FROM-clause structure path becomes a :class:`MoleculeTypeDescription`
(i.e. the ``C`` and ``G`` arguments of the molecule-type definition α); the
WHERE condition becomes a qualification :class:`~repro.core.predicates.Formula`
for the molecule-type restriction Σ; the SELECT projection list becomes the
atom-type list of the molecule-type projection Π.  Semantic checks (unknown
atom types, ambiguous attributes, projections losing the root) are raised as
:class:`~repro.exceptions.MQLSemanticError`.

:meth:`QueryTranslator.translate_statement` assembles these pieces into the
logical plan IR of :mod:`repro.engine.logical` (the literal α → Σ → Π
translation, with Ω/Δ/Ψ between query blocks), which the planner rewrites and
the streaming executor runs.
"""

from __future__ import annotations

import itertools
from typing import List, Mapping, Optional, Tuple, Union

from repro.core.database import Database
from repro.core.graph import DirectedLink
from repro.core.molecule import MoleculeTypeDescription
from repro.core.predicates import (
    And,
    AttributeRef,
    Comparison,
    Formula,
    Not,
    Or,
)
from repro.core.recursion import RecursiveDescription
from repro.engine.logical import (
    AggregatePlan,
    AggregateSpec,
    DefinePlan,
    DeleteMolecules,
    InsertMolecule,
    ModifyAtoms,
    PlanNode,
    ProjectPlan,
    RecursivePlan,
    RestrictPlan,
    SetOpPlan,
    WritePlanNode,
    plan_description,
)
from repro.exceptions import MoleculeGraphError, MQLSemanticError
from repro.mql.ast_nodes import (
    AggregateItem,
    AttributeReference,
    ComparisonCondition,
    DeleteStatement,
    DMLStatement,
    FromClause,
    InsertStatement,
    LogicalCondition,
    ModifyStatement,
    NotCondition,
    Query,
    RecursiveStructure,
    SetOperation,
    Statement,
    StructureBranch,
    StructureNode,
    StructurePath,
)

_anonymous_counter = itertools.count(1)


def next_anonymous_name() -> str:
    """The next anonymous result-type name, shared by every translation path."""
    return f"mql_result{next(_anonymous_counter)}"


def structure_to_description(path: StructurePath) -> MoleculeTypeDescription:
    """Convert a dash-path structure into a molecule-type description.

    The first node is the root; each subsequent node is connected to the node
    it follows (its *parent*); a branch group attaches every branch's first
    node to the node preceding the group.  Nodes naming an already-seen atom
    type refer to that same node (the node set ``C`` is a set).
    """
    nodes: List[str] = []
    edges: List[DirectedLink] = []

    def add_node(name: str) -> str:
        if name not in nodes:
            nodes.append(name)
        return name

    def add_edge(link_name: Optional[str], source: str, target: str) -> None:
        edges.append(DirectedLink(link_name or "-", source, target))

    def walk_path(structure: StructurePath, parent: Optional[str]) -> None:
        current_parent = parent
        for element in structure.elements:
            if isinstance(element, StructureNode):
                add_node(element.atom_type)
                if current_parent is not None:
                    add_edge(element.link_name, current_parent, element.atom_type)
                current_parent = element.atom_type
            elif isinstance(element, StructureBranch):
                if current_parent is None:
                    raise MQLSemanticError("a branch group cannot start a structure path")
                for branch in element.branches:
                    first = branch.elements[0]
                    if not isinstance(first, StructureNode):
                        raise MQLSemanticError("a branch must start with an atom type")
                    add_node(first.atom_type)
                    add_edge(first.link_name, current_parent, first.atom_type)
                    # Continue the branch with its own first node as parent.
                    walk_path(StructurePath(branch.elements[1:]), first.atom_type)
                # Subsequent elements after a branch group re-attach to the
                # node preceding the group.
            else:  # pragma: no cover - parser cannot produce other element kinds
                raise MQLSemanticError(f"unsupported structure element: {element!r}")

    walk_path(path, None)
    try:
        return MoleculeTypeDescription(nodes, edges)
    except MoleculeGraphError as exc:
        raise MQLSemanticError(f"invalid molecule structure: {exc}") from exc


def recursive_to_description(structure: RecursiveStructure) -> RecursiveDescription:
    """Convert a RECURSIVE from-clause into a :class:`RecursiveDescription`."""
    return RecursiveDescription(
        structure.atom_type,
        structure.link_name or "-",
        structure.direction,
        structure.max_depth,
    )


class QueryTranslator:
    """Semantic analysis and translation of one query block against a database."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # --------------------------------------------------------- logical plans

    def translate_statement(self, statement: Statement) -> PlanNode:
        """Translate a statement into its literal logical plan (α → Σ → Π).

        Set operations become :class:`SetOpPlan` nodes over the translated
        query blocks; all semantic checks run here, before any execution.
        """
        if isinstance(statement, SetOperation):
            for side in (statement.left, statement.right):
                if isinstance(side, Query) and (side.aggregates or side.group_by):
                    raise MQLSemanticError(
                        "aggregate query blocks cannot appear in set operations"
                    )
            return SetOpPlan(
                statement.operator,
                self.translate_statement(statement.left),
                self.translate_statement(statement.right),
            )
        if not isinstance(statement, Query):
            raise MQLSemanticError(f"cannot translate {statement!r}")
        return self.translate_query(statement)

    def translate_query(self, query: Query) -> PlanNode:
        """Translate one SELECT-FROM-WHERE block into a logical plan."""
        description = self.translate_from(query.from_clause)
        name = query.from_clause.molecule_name or next_anonymous_name()
        if query.aggregates or query.group_by:
            return self._translate_aggregate_query(query, description, name)
        if isinstance(description, RecursiveDescription):
            if not query.select_all:
                raise MQLSemanticError("projection over a RECURSIVE structure is not supported")
            formula = (
                self.translate_condition(query.where, description)
                if query.where is not None
                else None
            )
            return RecursivePlan(name, description, formula)
        plan: PlanNode = DefinePlan(name, description)
        if query.where is not None:
            plan = RestrictPlan(plan, self.translate_condition(query.where, description))
        projection = self.translate_projection(query, description)
        if projection is not None:
            plan = ProjectPlan(plan, tuple(projection))
        return plan

    # ----------------------------------------------------------- aggregation

    def _translate_aggregate_query(
        self,
        query: Query,
        description: Union[MoleculeTypeDescription, RecursiveDescription],
        name: str,
    ) -> PlanNode:
        """Translate an aggregate query block into α [→ Σ] → Γ."""
        if isinstance(description, RecursiveDescription):
            raise MQLSemanticError(
                "aggregation over a RECURSIVE structure is not supported"
            )
        if not query.aggregates:
            raise MQLSemanticError("GROUP BY requires at least one aggregate function")
        group_by = tuple(
            self._resolve_group_key(reference, description) for reference in query.group_by
        )
        # AttributeRef overloads == to build Comparison formulas, so plain
        # membership tests silently pass; compare the identity fields instead.
        keys = {(key.atom_type, key.attribute) for key in group_by}
        for reference in query.select_refs:
            resolved = self._resolve_reference(reference, description)
            if (resolved.atom_type, resolved.attribute) not in keys:
                raise MQLSemanticError(
                    f"SELECT references {reference!s}, which is neither an "
                    "aggregate nor a GROUP BY key"
                )
        aggregates = tuple(
            self._resolve_aggregate(item, description) for item in query.aggregates
        )
        plan: PlanNode = DefinePlan(name, description)
        if query.where is not None:
            plan = RestrictPlan(plan, self.translate_condition(query.where, description))
        return AggregatePlan(plan, group_by, aggregates)

    def _resolve_group_key(
        self,
        reference: AttributeReference,
        description: MoleculeTypeDescription,
    ) -> AttributeRef:
        """A GROUP BY key must be a root-atom attribute (one molecule = one root)."""
        resolved = self._resolve_reference(reference, description)
        if resolved.atom_type != description.root:
            raise MQLSemanticError(
                f"GROUP BY must reference the root atom type "
                f"{description.root!r}, not {resolved.atom_type!r}"
            )
        return resolved

    def _resolve_aggregate(
        self,
        item: AggregateItem,
        description: MoleculeTypeDescription,
    ) -> AggregateSpec:
        """Resolve one aggregate call to an attribute or component target."""
        if item.star:
            return AggregateSpec("COUNT", output="count(*)")
        reference = item.argument
        assert reference is not None  # the parser guarantees it
        if item.distinct:
            for present in description.atom_type_names:
                if reference.atom_type is None and (
                    present == reference.attribute
                    or present.split("@", 1)[0] == reference.attribute
                ):
                    raise MQLSemanticError(
                        f"COUNT(DISTINCT {reference.attribute}) over the component "
                        "type is not supported; component counts are already "
                        "distinct — use COUNT(type) instead"
                    )
            resolved = self._resolve_reference(reference, description)
            output = f"count(distinct {resolved.atom_type}.{resolved.attribute})"
            return AggregateSpec("COUNT", attribute=resolved, distinct=True, output=output)
        if reference.atom_type is None:
            # A bare name matching an atom type of the structure is a
            # component count (distinct component atoms per group).
            component = None
            for present in description.atom_type_names:
                if present == reference.attribute or (
                    present.split("@", 1)[0] == reference.attribute
                ):
                    component = present
                    break
            if component is not None:
                if item.func != "COUNT":
                    raise MQLSemanticError(
                        f"{item.func} over the component type {reference.attribute!r} "
                        "is not supported; only COUNT counts component atoms"
                    )
                return AggregateSpec(
                    "COUNT", component=component, output=f"count({reference.attribute})"
                )
        resolved = self._resolve_reference(reference, description)
        output = f"{item.func.lower()}({resolved.atom_type}.{resolved.attribute})"
        return AggregateSpec(item.func, attribute=resolved, output=output)

    # ------------------------------------------------------------------- DML

    def translate_dml(self, statement: DMLStatement) -> WritePlanNode:
        """Translate a DML statement into its logical write plan.

        ``DELETE``/``MODIFY`` wrap a full molecule query (``SELECT ALL FROM …
        WHERE …``) as their qualifying-read *source* — the planner optimizes
        that read exactly like any query before the write node consumes it.
        """
        if isinstance(statement, InsertStatement):
            if isinstance(statement.from_clause.structure, RecursiveStructure):
                raise MQLSemanticError("INSERT over a RECURSIVE structure is not supported")
            description = self.translate_from(statement.from_clause)
            name = statement.from_clause.molecule_name or next_anonymous_name()
            self._check_insert_data(description, statement.data, description.root)
            return InsertMolecule(name, description, statement.data)
        if isinstance(statement, DeleteStatement):
            source = self.translate_query(
                Query(True, (), statement.from_clause, statement.where)
            )
            return DeleteMolecules(source, statement.cascade)
        if isinstance(statement, ModifyStatement):
            source = self.translate_query(
                Query(True, (), statement.from_clause, statement.where)
            )
            # plan_description reads the structure off the translated source
            # plan, so the FROM clause is resolved exactly once.
            structure_names = plan_description(source).atom_type_names
            if statement.target not in structure_names:
                raise MQLSemanticError(
                    f"MODIFY target {statement.target!r} is not part of the FROM structure"
                )
            updates = tuple(
                (self._resolve_assignment(assignment, statement.target), assignment.value)
                for assignment in statement.assignments
            )
            return ModifyAtoms(source, statement.target, updates)
        raise MQLSemanticError(f"cannot translate {statement!r}")

    def _resolve_assignment(self, assignment, target: str) -> str:
        """Check one SET assignment against the target atom type; return the attribute."""
        reference = assignment.attribute
        if reference.atom_type is not None and reference.atom_type != target:
            raise MQLSemanticError(
                f"SET references {reference.atom_type!r}, but the MODIFY target is {target!r}"
            )
        owner_description = self.database.atyp(target).description
        if reference.attribute not in owner_description:
            raise MQLSemanticError(
                f"atom type {target!r} has no attribute {reference.attribute!r}"
            )
        return reference.attribute

    def _check_insert_data(
        self,
        description: MoleculeTypeDescription,
        node: "Mapping | object",
        type_name: str,
    ) -> None:
        """Semantic checks over a nested INSERT object, before any execution.

        Attribute keys must belong to the node's atom type, child keys to the
        structure; unknown keys are rejected here so a malformed statement
        never starts mutating.
        """
        if not isinstance(node, Mapping):
            raise MQLSemanticError(
                f"INSERT value for {type_name!r} must be an object, got {node!r}"
            )
        child_names = {dl.target for dl in description.children_of(type_name)}
        attribute_names = set(self.database.atyp(type_name).description.names)
        for key, value in node.items():
            if key == "_id":
                continue
            if key in child_names:
                children = [value] if isinstance(value, Mapping) else value
                if not isinstance(children, (list, tuple)):
                    raise MQLSemanticError(
                        f"INSERT children under {key!r} must be objects, got {value!r}"
                    )
                for child in children:
                    self._check_insert_data(description, child, key)
            elif key not in attribute_names:
                raise MQLSemanticError(
                    f"unknown attribute or child type {key!r} for atom type {type_name!r}"
                )

    # ---------------------------------------------------------- FROM clause

    def translate_from(self, from_clause: FromClause) -> Union[MoleculeTypeDescription, RecursiveDescription]:
        """Translate the FROM clause, checking every named atom type exists."""
        if isinstance(from_clause.structure, RecursiveStructure):
            recursive = recursive_to_description(from_clause.structure)
            if not self.database.has_atom_type(recursive.atom_type_name):
                raise MQLSemanticError(f"unknown atom type {recursive.atom_type_name!r}")
            if recursive.link_type_name == "-":
                candidates = self.database.link_types_between(
                    recursive.atom_type_name, recursive.atom_type_name
                )
                if len(candidates) != 1:
                    raise MQLSemanticError(
                        f"cannot resolve the recursive link type on {recursive.atom_type_name!r}; "
                        "name it explicitly with [link-type]"
                    )
                recursive = RecursiveDescription(
                    recursive.atom_type_name,
                    candidates[0].name,
                    recursive.direction,
                    recursive.max_depth,
                )
            elif not self.database.has_link_type(recursive.link_type_name):
                raise MQLSemanticError(f"unknown link type {recursive.link_type_name!r}")
            return recursive
        description = structure_to_description(from_clause.structure)
        for atom_type_name in description.atom_type_names:
            if not self.database.has_atom_type(atom_type_name):
                raise MQLSemanticError(f"unknown atom type {atom_type_name!r} in FROM clause")
        for directed in description.directed_links:
            if directed.link_type_name != "-" and not self.database.has_link_type(
                directed.link_type_name
            ):
                raise MQLSemanticError(
                    f"unknown link type {directed.link_type_name!r} in FROM clause"
                )
        return description

    # --------------------------------------------------------- WHERE clause

    def translate_condition(
        self,
        condition,
        description: Union[MoleculeTypeDescription, RecursiveDescription],
    ) -> Formula:
        """Translate a WHERE condition into a qualification formula."""
        if isinstance(condition, ComparisonCondition):
            lhs = self._resolve_reference(condition.lhs, description)
            rhs: object = condition.rhs
            if isinstance(rhs, AttributeReference):
                rhs = self._resolve_reference(rhs, description)
            return Comparison(lhs, condition.operator, rhs)
        if isinstance(condition, LogicalCondition):
            operands = [self.translate_condition(op, description) for op in condition.operands]
            return And(*operands) if condition.operator == "AND" else Or(*operands)
        if isinstance(condition, NotCondition):
            return Not(self.translate_condition(condition.operand, description))
        raise MQLSemanticError(f"unsupported condition node: {condition!r}")

    def _resolve_reference(
        self,
        reference: AttributeReference,
        description: Union[MoleculeTypeDescription, RecursiveDescription],
    ) -> AttributeRef:
        atom_type_names = (
            description.atom_type_names
            if isinstance(description, MoleculeTypeDescription)
            else (description.atom_type_name,)
        )
        if reference.atom_type is not None:
            if reference.atom_type not in atom_type_names:
                raise MQLSemanticError(
                    f"atom type {reference.atom_type!r} is not part of the FROM structure"
                )
            owner_description = self.database.atyp(reference.atom_type).description
            if reference.attribute not in owner_description:
                raise MQLSemanticError(
                    f"atom type {reference.atom_type!r} has no attribute {reference.attribute!r}"
                )
            return AttributeRef(reference.attribute, reference.atom_type)
        owners = [
            name
            for name in atom_type_names
            if reference.attribute in self.database.atyp(name).description
        ]
        if not owners:
            raise MQLSemanticError(
                f"attribute {reference.attribute!r} does not occur in the FROM structure"
            )
        if len(owners) > 1:
            raise MQLSemanticError(
                f"attribute {reference.attribute!r} is ambiguous; qualify it with one of {owners!r}"
            )
        return AttributeRef(reference.attribute, owners[0])

    # -------------------------------------------------------- SELECT clause

    def translate_projection(
        self,
        query: Query,
        description: Union[MoleculeTypeDescription, RecursiveDescription],
    ) -> Optional[Tuple[str, ...]]:
        """Return the projection atom-type list, or ``None`` for SELECT ALL."""
        if query.select_all:
            return None
        if isinstance(description, RecursiveDescription):
            raise MQLSemanticError("projection over a RECURSIVE structure is not supported")
        for name in query.projection:
            if name not in description.atom_type_names:
                raise MQLSemanticError(
                    f"SELECT references {name!r}, which is not part of the FROM structure"
                )
        if description.root not in query.projection:
            raise MQLSemanticError(
                f"the projection must retain the root atom type {description.root!r}"
            )
        return query.projection


def to_logical_plan(database: Database, statement: Statement) -> PlanNode:
    """One-call convenience: translate a parsed *statement* into a logical plan."""
    return QueryTranslator(database).translate_statement(statement)
