"""Tokenizer for MQL statements.

MQL identifiers may contain letters, digits and underscores; atom-type and
link-type names containing ``-`` (like ``state-area``) are written inside
square brackets when they must be referenced explicitly (``[state-area]``),
because the bare ``-`` is the structure-path separator.  String literals use
single quotes (SQL style), numbers are integers or decimals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.exceptions import MQLSyntaxError

KEYWORDS = {
    "EXPLAIN",
    "SELECT",
    "ALL",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "UNION",
    "DIFFERENCE",
    "INTERSECT",
    "RECURSIVE",
    "DOWN",
    "UP",
    "TRUE",
    "FALSE",
    "INSERT",
    "VALUES",
    "DELETE",
    "MODIFY",
    "SET",
    "CASCADE",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "WORK",
    "CHECKPOINT",
    "GROUP",
    "BY",
    "DISTINCT",
}


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    BRACKET_NAME = "bracket_name"  # [state-area] — explicit link-type name
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"  # = != <> < <= > >=
    DASH = "dash"  # the structure separator '-'
    STAR = "star"  # '*' — COUNT(*)
    LPAREN = "lparen"
    RPAREN = "rparen"
    LBRACE = "lbrace"  # { } delimit nested object literals (INSERT ... VALUES)
    RBRACE = "rbrace"
    COLON = "colon"  # key/value separator inside object literals
    COMMA = "comma"
    DOT = "dot"
    SEMICOLON = "semicolon"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single token with its source position (1-based line, 0-based column)."""

    type: TokenType
    value: object
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """``True`` when this token is the keyword *word* (case-insensitive match done at lexing)."""
        return self.type is TokenType.KEYWORD and self.value == word


_OPERATOR_CHARS = {"=", "!", "<", ">"}
_TWO_CHAR_OPERATORS = {"!=", "<>", "<=", ">="}


def tokenize(text: str) -> List[Token]:
    """Tokenize an MQL statement; raises :class:`MQLSyntaxError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 0
    index = 0
    length = len(text)

    def error(message: str) -> MQLSyntaxError:
        return MQLSyntaxError(message, line, column)

    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 0
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "-" and index + 1 < length and text[index + 1] == "-":
            # SQL-style line comment.
            while index < length and text[index] != "\n":
                index += 1
            continue
        start_column = column
        if char == "'":
            end = index + 1
            buffer = []
            while end < length and text[end] != "'":
                buffer.append(text[end])
                end += 1
            if end >= length:
                raise error("unterminated string literal")
            tokens.append(Token(TokenType.STRING, "".join(buffer), line, start_column))
            column += end - index + 1
            index = end + 1
            continue
        if char == "[":
            end = index + 1
            buffer = []
            while end < length and text[end] != "]":
                buffer.append(text[end])
                end += 1
            if end >= length:
                raise error("unterminated bracketed name")
            tokens.append(Token(TokenType.BRACKET_NAME, "".join(buffer).strip(), line, start_column))
            column += end - index + 1
            index = end + 1
            continue
        if char.isdigit():
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A dot followed by a non-digit is attribute punctuation, not a decimal point.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            literal = text[index:end]
            value: object = float(literal) if "." in literal else int(literal)
            tokens.append(Token(TokenType.NUMBER, value, line, start_column))
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, word, line, start_column))
            column += end - index
            index = end
            continue
        if char in _OPERATOR_CHARS:
            two = text[index : index + 2]
            if two in _TWO_CHAR_OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, two, line, start_column))
                index += 2
                column += 2
                continue
            if char == "!":
                raise error("unexpected '!' (did you mean '!=')")
            tokens.append(Token(TokenType.OPERATOR, char, line, start_column))
            index += 1
            column += 1
            continue
        simple = {
            "-": TokenType.DASH,
            "*": TokenType.STAR,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "{": TokenType.LBRACE,
            "}": TokenType.RBRACE,
            ":": TokenType.COLON,
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            ";": TokenType.SEMICOLON,
        }
        if char in simple:
            tokens.append(Token(simple[char], char, line, start_column))
            index += 1
            column += 1
            continue
        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenType.EOF, None, line, column))
    return tokens
