"""Abstract syntax tree of MQL statements.

The AST mirrors the three-clause structure of an MQL query block plus the set
operations between blocks:

* :class:`Query` — ``SELECT`` projection list (or ALL), :class:`FromClause`,
  optional ``WHERE`` condition;
* :class:`FromClause` — an optional molecule-type name plus the molecule
  structure, expressed as a tree of :class:`StructureNode`/:class:`StructureBranch`
  (the dash-path notation of the paper), or a :class:`RecursiveStructure`;
* conditions — :class:`ComparisonCondition`, :class:`LogicalCondition`,
  :class:`NotCondition` over :class:`AttributeReference` and literals;
* :class:`SetOperation` — UNION / DIFFERENCE / INTERSECT of two queries;
* DML — :class:`InsertStatement` (structure plus a nested object literal),
  :class:`DeleteStatement` and :class:`ModifyStatement`, both of which carry a
  full molecule query (FROM structure + WHERE condition) as their qualifying
  read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class AttributeReference:
    """An attribute reference ``atom_type.attribute`` or a bare ``attribute``."""

    attribute: str
    atom_type: Optional[str] = None

    def __str__(self) -> str:
        if self.atom_type:
            return f"{self.atom_type}.{self.attribute}"
        return self.attribute


@dataclass(frozen=True)
class ComparisonCondition:
    """``lhs <op> rhs`` where rhs is a literal or another attribute reference."""

    lhs: AttributeReference
    operator: str
    rhs: object


@dataclass(frozen=True)
class LogicalCondition:
    """AND/OR combination of two or more conditions."""

    operator: str  # "AND" | "OR"
    operands: Tuple[object, ...]


@dataclass(frozen=True)
class NotCondition:
    """Negation of a condition."""

    operand: object


@dataclass(frozen=True)
class StructureBranch:
    """A parenthesized branch group ``(path, path, ...)`` hanging off the previous node."""

    branches: Tuple["StructurePath", ...]


@dataclass(frozen=True)
class StructureNode:
    """A single atom-type node in a structure path, with the link used to reach it.

    ``link_name`` is ``"-"`` for the anonymous link (resolved from the schema)
    or an explicit bracketed link-type name; it is ``None`` for the first node
    of a path.
    """

    atom_type: str
    link_name: Optional[str] = None


@dataclass(frozen=True)
class StructurePath:
    """A dash-separated path of nodes and branch groups."""

    elements: Tuple[Union[StructureNode, StructureBranch], ...]

    def root_atom_type(self) -> str:
        """The first atom-type node of the path (its root)."""
        for element in self.elements:
            if isinstance(element, StructureNode):
                return element.atom_type
        raise ValueError("structure path has no atom-type node")


@dataclass(frozen=True)
class RecursiveStructure:
    """``RECURSIVE part [composition] DOWN`` — a recursive molecule structure."""

    atom_type: str
    link_name: Optional[str] = None
    direction: str = "down"
    max_depth: Optional[int] = None


@dataclass(frozen=True)
class FromClause:
    """The FROM clause: an optional molecule-type name plus the structure."""

    structure: Union[StructurePath, RecursiveStructure]
    molecule_name: Optional[str] = None


@dataclass(frozen=True)
class AggregateItem:
    """One aggregate call in a SELECT list: ``func(attr)`` or ``COUNT(*)``.

    *argument* is ``None`` for ``COUNT(*)`` (*star* is then ``True``); for
    component counts the argument is a bare :class:`AttributeReference` whose
    ``attribute`` names an atom type of the FROM structure.  *distinct*
    marks ``COUNT(DISTINCT attr)`` — the parser only accepts it on COUNT
    over an attribute argument.
    """

    func: str  # "COUNT" | "SUM" | "MIN" | "MAX" | "AVG"
    argument: Optional[AttributeReference] = None
    star: bool = False
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.star else str(self.argument)
        if self.distinct:
            inner = f"distinct {inner}"
        return f"{self.func.lower()}({inner})"


@dataclass(frozen=True)
class Query:
    """A single SELECT-FROM-WHERE query block.

    Aggregation extends the block: when *aggregates* is non-empty the SELECT
    list consisted of aggregate calls (plus, optionally, the *select_refs*
    attribute references, each of which must also appear in *group_by*) and
    the result is a set of rows, not molecules.
    """

    select_all: bool
    projection: Tuple[str, ...]
    from_clause: FromClause
    where: Optional[object] = None
    aggregates: Tuple[AggregateItem, ...] = ()
    group_by: Tuple[AttributeReference, ...] = ()
    select_refs: Tuple[AttributeReference, ...] = ()


@dataclass(frozen=True)
class SetOperation:
    """A set operation between two query expressions (left-associative)."""

    operator: str  # "UNION" | "DIFFERENCE" | "INTERSECT"
    left: object
    right: object


@dataclass(frozen=True, eq=False)
class InsertStatement:
    """``INSERT <structure> VALUES {…}`` — create one complex object.

    The nested object literal mirrors the manipulation API's nested-dictionary
    form: child atom-type names map to an object or a parenthesized list of
    objects; ``_id`` references an existing atom (shared subobject).
    """

    from_clause: FromClause
    data: Mapping[str, object]


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE [CASCADE] [name] FROM <structure> [WHERE …]`` — remove molecules.

    The from/where pair forms a full molecule query: the planner optimizes the
    qualifying read before any mutation happens.
    """

    from_clause: FromClause
    where: Optional[object] = None
    cascade: bool = False


@dataclass(frozen=True)
class Assignment:
    """One ``attribute = literal`` pair of a MODIFY … SET list."""

    attribute: AttributeReference
    value: object


@dataclass(frozen=True)
class ModifyStatement:
    """``MODIFY <atom type> FROM <structure> SET a = v, … [WHERE …]``.

    Updates the target atom type's atoms within every qualifying molecule;
    identity is preserved, so links and containing molecules stay valid.
    """

    target: str
    from_clause: FromClause
    assignments: Tuple[Assignment, ...]
    where: Optional[object] = None


@dataclass(frozen=True)
class CheckpointStatement:
    """``CHECKPOINT`` — persist a snapshot image and truncate the WAL.

    Only meaningful on a durable storage engine
    (:class:`~repro.storage.engine.PrimaEngine` with a durability
    configuration); rejected while a session transaction is active, because
    the stores then carry uncommitted mirror state.
    """


@dataclass(frozen=True)
class TransactionStatement:
    """``BEGIN WORK`` / ``COMMIT WORK`` / ``ROLLBACK WORK``.

    Scopes an interpreter session as one transaction: between BEGIN and
    COMMIT every query reads the snapshot pinned at BEGIN (plus the session's
    own writes — repeatable reads), DML statements accumulate in one
    write-set, and COMMIT publishes them under first-committer-wins conflict
    detection.  The ``WORK`` keyword is optional, as in SQL-89.
    """

    action: str  # "BEGIN" | "COMMIT" | "ROLLBACK"


#: Any executable parse result: a single query block or a tree of set operations.
Statement = Union[Query, SetOperation]

#: The three data-manipulation statements.
DMLStatement = Union[InsertStatement, DeleteStatement, ModifyStatement]


@dataclass(frozen=True, eq=False)
class ExplainStatement:
    """``EXPLAIN <statement>`` — report the optimizer's plan choice, do not execute."""

    statement: "Statement | DMLStatement"
