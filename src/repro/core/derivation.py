"""Molecule derivation: ``m_dom``, ``contained``, ``total`` and ``mv_graph`` (Definition 6).

The derivation of a molecule-type occurrence "proceeds in a straight-forward
way using the molecule structure as a kind of template, which is laid over the
atom networks.  Thus, for each atom of the root atom type one molecule is
derived following all links determined by the link types of the molecule
structure to the children, grandchildren atoms etc. till the leaves are
reached.  Derivation of the children atoms means performing the hierarchical
join along the specified branches."

:func:`derive_occurrence` is the executable form of the function ``m_dom``;
:func:`mv_graph` re-checks a derived (or hand-built) molecule against its
description, and :func:`is_total` verifies maximality (the ``total``
predicate): a molecule must contain every atom that is *contained* w.r.t. the
description, and no atom that is not.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.database import Database
from repro.core.graph import DirectedLink
from repro.core.link import Link, LinkType
from repro.core.molecule import Molecule, MoleculeTypeDescription
from repro.exceptions import MoleculeGraphError, SchemaError, UnknownNameError


def resolve_directed_link(database: Database, directed: DirectedLink) -> LinkType:
    """The ``ltyp`` function for directed uses: map a directed link to its link type.

    When the directed link carries the anonymous name ``"-"`` (the MQL
    shorthand "if there is only one link type defined between two atom types")
    the unique link type between source and target is resolved; ambiguity or
    absence raises :class:`SchemaError`.
    """
    name = directed.link_type_name
    if name and name != "-":
        link_type = database.ltyp(name)
        source = directed.source.split("@", 1)[0]
        target = directed.target.split("@", 1)[0]
        if not (
            link_type.connects_type(directed.source) or link_type.connects_type(source)
        ) or not (
            link_type.connects_type(directed.target) or link_type.connects_type(target)
        ):
            raise SchemaError(
                f"link type {name!r} does not connect {directed.source!r} and {directed.target!r}"
            )
        return link_type
    candidates = database.link_types_between(directed.source, directed.target)
    if not candidates:
        raise SchemaError(
            f"no link type defined between {directed.source!r} and {directed.target!r}"
        )
    if len(candidates) > 1:
        raise SchemaError(
            f"ambiguous link between {directed.source!r} and {directed.target!r}: "
            f"{[lt.name for lt in candidates]!r}; name the link type explicitly"
        )
    return candidates[0]


def resolve_description(
    database: Database, description: MoleculeTypeDescription
) -> MoleculeTypeDescription:
    """Return *description* with every anonymous link-type use resolved by name."""
    resolved = []
    changed = False
    for directed in description.directed_links:
        if directed.link_type_name and directed.link_type_name != "-":
            resolved.append(directed)
            continue
        link_type = resolve_directed_link(database, directed)
        resolved.append(DirectedLink(link_type.name, directed.source, directed.target))
        changed = True
    if not changed:
        return description
    return MoleculeTypeDescription(description.atom_type_names, resolved)


def derive_molecule(
    database: Database,
    description: MoleculeTypeDescription,
    root_atom: Atom,
    link_types: Optional[Dict[Tuple[str, str, str], LinkType]] = None,
    links_of=None,
    on_link_followed=None,
) -> Molecule:
    """Derive the single molecule rooted at *root_atom* (hierarchical join).

    Traverses the molecule structure in topological order; for every directed
    link use ``<lt, P, C>`` and every component atom of type ``P`` already in
    the molecule, all atoms of type ``C`` connected through ``lt`` are added
    together with the connecting links.  An atom reachable through several
    parents is included once — molecules are graphs, not trees.

    The streaming executor shares this one implementation, customizing it via
    the optional hooks: *link_types* pre-resolves the directed uses,
    *links_of* overrides the per-atom link access (e.g. a cached atom-network
    adjacency), and *on_link_followed* observes each followed link (work
    counting).
    """
    component_atoms: Dict[str, Atom] = {root_atom.identifier: root_atom}
    atoms_per_type: Dict[str, Set[str]] = {description.root: {root_atom.identifier}}
    component_links: Set[Link] = set()
    for type_name in description.traversal_order():
        parent_ids = atoms_per_type.get(type_name, set())
        if not parent_ids:
            continue
        for directed in description.children_of(type_name):
            if link_types is not None:
                link_type = link_types[directed.as_tuple()]
            else:
                link_type = resolve_directed_link(database, directed)
            child_type = database.atyp(directed.target)
            bucket = atoms_per_type.setdefault(directed.target, set())
            for parent_id in parent_ids:
                links = (
                    links_of(link_type, parent_id)
                    if links_of is not None
                    else link_type.links_of(parent_id)
                )
                for link in links:
                    child_id = link.other(parent_id)
                    child_atom = child_type.get(child_id)
                    if child_atom is None:
                        # The partner belongs to the other endpoint type of a
                        # reflexive or differently-directed use; skip it.
                        continue
                    if on_link_followed is not None:
                        on_link_followed(link)
                    component_links.add(link)
                    if child_id not in component_atoms:
                        component_atoms[child_id] = child_atom
                    bucket.add(child_id)
    return Molecule(root_atom, component_atoms.values(), component_links, description)


def derive_occurrence(
    database: Database,
    description: MoleculeTypeDescription,
) -> Tuple[Molecule, ...]:
    """The function ``m_dom``: derive every molecule of the description's occurrence.

    One molecule per atom of the root atom type, in the root occurrence's
    iteration order.
    """
    description = resolve_description(database, description)
    root_type = database.atyp(description.root)
    return tuple(
        derive_molecule(database, description, root_atom) for root_atom in root_type
    )


def contained(
    database: Database,
    description: MoleculeTypeDescription,
    molecule: Molecule,
    atom: Atom,
) -> bool:
    """The recursive ``contained`` predicate of Definition 6.

    An atom is contained when it is the molecule's root, or when for some
    directed link use ending in the atom's type there is a contained parent
    atom connected to it by a link of that use's link type.
    """
    if atom.identifier == molecule.root_atom.identifier:
        return atom.type_name == description.root or (
            atom.type_name.split("@", 1)[0] == description.root.split("@", 1)[0]
        )
    for directed in description.parents_of(atom.type_name):
        link_type = resolve_directed_link(database, directed)
        for link in link_type.links_of(atom.identifier):
            parent_id = link.other(atom.identifier)
            parent = molecule.get(parent_id)
            if parent is None:
                continue
            if parent.type_name != directed.source:
                continue
            if contained(database, description, molecule, parent):
                return True
    return False


def is_total(
    database: Database,
    description: MoleculeTypeDescription,
    molecule: Molecule,
) -> bool:
    """The ``total`` predicate: the molecule is maximal w.r.t. ``contained``.

    Every component atom must be contained, and every database atom of a
    participating atom type that is contained must be a component atom.
    """
    description = resolve_description(database, description)
    for atom in molecule.atoms:
        if not contained(database, description, molecule, atom):
            return False
    reference = derive_molecule(database, description, molecule.root_atom)
    return reference.atom_identifiers == molecule.atom_identifiers


def mv_graph(
    database: Database,
    description: MoleculeTypeDescription,
    molecule: Molecule,
) -> Tuple[bool, str]:
    """The ``mv_graph`` predicate: molecule conforms to description and is total.

    Checks (1) every component atom's type appears in ``C``; (2) every
    component link's type is the underlying link type of some directed use in
    ``G`` and connects component atoms; (3) the molecule graph is coherent and
    rooted at an atom of the root type; (4) the molecule is maximal (total).
    Returns ``(ok, reason)``.
    """
    description = resolve_description(database, description)
    allowed_types = set(description.atom_type_names)
    allowed_types_bare = {name.split("@", 1)[0] for name in allowed_types}
    for atom in molecule.atoms:
        if atom.type_name not in allowed_types and atom.type_name.split("@", 1)[0] not in allowed_types_bare:
            return False, f"atom {atom.identifier!r} has type outside the description"
    allowed_link_names = set()
    for directed in description.directed_links:
        allowed_link_names.add(resolve_directed_link(database, directed).name)
    component_ids = molecule.atom_identifiers
    for link in molecule.links:
        base_name = link.link_type_name.split("~", 1)[0]
        if link.link_type_name not in allowed_link_names and base_name not in {
            name.split("~", 1)[0] for name in allowed_link_names
        }:
            return False, f"link {link!r} uses a link type outside the description"
        if not all(identifier in component_ids for identifier in link.identifiers):
            return False, f"link {link!r} references atoms outside the molecule"
    root = molecule.root_atom
    if root.type_name != description.root and root.type_name.split("@", 1)[0] != description.root.split("@", 1)[0]:
        return False, f"root atom {root.identifier!r} is not of the root atom type"
    if not _is_connected(molecule):
        return False, "the molecule graph is not coherent"
    if not is_total(database, description, molecule):
        return False, "the molecule is not maximal (total) w.r.t. the atom networks"
    return True, ""


def _is_connected(molecule: Molecule) -> bool:
    """Check weak connectivity of the molecule graph (single atoms are connected)."""
    identifiers = set(molecule.atom_identifiers)
    if len(identifiers) <= 1:
        return True
    adjacency: Dict[str, Set[str]] = {identifier: set() for identifier in identifiers}
    for link in molecule.links:
        ids = tuple(link.identifiers)
        first, last = ids[0], ids[-1]
        if first in adjacency and last in adjacency:
            adjacency[first].add(last)
            adjacency[last].add(first)
    start = molecule.root_atom.identifier
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbour in adjacency.get(current, ()):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen == identifiers


def hierarchical_join_statistics(
    database: Database,
    description: MoleculeTypeDescription,
) -> Dict[str, int]:
    """Return work counters for deriving the full occurrence.

    Used by the benchmarks to compare the number of atoms and links *touched*
    by molecule derivation against the intermediate-tuple counts of the
    equivalent relational join plan.
    """
    description = resolve_description(database, description)
    molecules = derive_occurrence(database, description)
    atoms_touched = sum(len(m) for m in molecules)
    links_touched = sum(len(m.links) for m in molecules)
    distinct_atoms: Set[str] = set()
    for molecule in molecules:
        distinct_atoms |= molecule.atom_identifiers
    return {
        "molecules": len(molecules),
        "atoms_touched": atoms_touched,
        "links_touched": links_touched,
        "distinct_atoms": len(distinct_atoms),
    }
