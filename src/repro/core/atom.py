"""Atoms and atom types (Definition 1).

An **atom** plays the role of a tuple in the relational model: it "consists
of attributes of various data types, is uniquely identifiable, and belongs to
its corresponding atom type".  An **atom type** is the triple
``at = <aname, ad, av>`` of a name, an atom-type description and an atom-type
occurrence (a set of atoms whose values lie in the description's domain).

Atoms carry a surrogate identifier so that links (Definition 2) can reference
them independently of attribute values — this is what makes shared subobjects
representable without foreign keys.
"""

from __future__ import annotations

import itertools
from repro.analysis.runtime import make_rlock
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.core.attributes import AtomTypeDescription, make_description
from repro.core.events import (
    ATOM_DELETED,
    ATOM_INSERTED,
    ATOM_MODIFIED,
    ChangeEmitter,
    ChangeEvent,
)
from repro.core.versions import ABSENT, VersionChain, VersioningState
from repro.exceptions import DuplicateNameError, IntegrityError, SchemaError

_atom_counter = itertools.count(1)


def _next_surrogate(type_name: str) -> str:
    """Generate a fresh, human-readable surrogate identifier for an atom."""
    return f"{type_name}#{next(_atom_counter)}"


class Atom:
    """A uniquely identifiable element of an atom-type occurrence.

    Parameters
    ----------
    type_name:
        Name of the atom type this atom belongs to.
    values:
        Mapping from attribute names to values; validated against the atom
        type's description when the atom is inserted into an occurrence.
    identifier:
        Optional explicit identifier.  When omitted a surrogate of the form
        ``"<type>#<n>"`` is generated.  Identifiers must be unique within the
        atom type's occurrence.
    """

    __slots__ = ("identifier", "type_name", "_values")

    def __init__(
        self,
        type_name: str,
        values: Optional[Mapping[str, object]] = None,
        identifier: Optional[str] = None,
    ) -> None:
        self.type_name = type_name
        self.identifier = identifier if identifier is not None else _next_surrogate(type_name)
        self._values: Dict[str, object] = dict(values or {})

    @property
    def values(self) -> Dict[str, object]:
        """A copy of the atom's attribute values."""
        return dict(self._values)

    def __getitem__(self, attribute: str) -> object:
        return self._values.get(attribute)

    def get(self, attribute: str, default: object = None) -> object:
        """Return the value of *attribute*, or *default* when absent."""
        return self._values.get(attribute, default)

    def with_values(self, **updates: object) -> "Atom":
        """Return a copy of this atom (same identity) with updated values."""
        merged = dict(self._values)
        merged.update(updates)
        return Atom(self.type_name, merged, identifier=self.identifier)

    def projected(self, names: Sequence[str], type_name: Optional[str] = None) -> "Atom":
        """Return a new atom restricted to the attributes in *names*.

        The projected atom keeps this atom's identity so that the link
        inheritance of the atom-type algebra can trace result atoms back to
        their operand atoms.
        """
        return Atom(
            type_name or self.type_name,
            {name: self._values.get(name) for name in names},
            identifier=self.identifier,
        )

    def concatenated(self, other: "Atom", type_name: str, names: Sequence[str]) -> "Atom":
        """Return the concatenation ``self & other`` used by the cartesian product.

        The result carries a composite identifier ``"<id1>&<id2>"`` so that
        provenance to both operand atoms is preserved.
        """
        combined: Dict[str, object] = {}
        pool = dict(self._values)
        pool_other = dict(other._values)
        for name in names:
            if name in pool:
                combined[name] = pool.pop(name)
            elif name in pool_other:
                combined[name] = pool_other.pop(name)
            else:
                # Prefixed names produced by AtomTypeDescription.union.
                bare = name.split(".", 1)[-1]
                if bare in pool:
                    combined[name] = pool.pop(bare)
                elif bare in pool_other:
                    combined[name] = pool_other.pop(bare)
        return Atom(type_name, combined, identifier=f"{self.identifier}&{other.identifier}")

    def provenance(self) -> Tuple[str, ...]:
        """Return the operand identifiers this atom was derived from.

        Atoms created directly have a single-element provenance (their own
        identifier); atoms produced by cartesian products report every operand
        identifier that was concatenated.
        """
        return tuple(self.identifier.split("&"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.identifier == other.identifier and self.type_name == other.type_name

    def __hash__(self) -> int:
        return hash((self.type_name, self.identifier))

    def __repr__(self) -> str:
        shown = ", ".join(f"{k}={v!r}" for k, v in list(self._values.items())[:3])
        return f"Atom({self.identifier}, {shown})"


class AtomType:
    """The triple ``<aname, ad, av>`` of Definition 1.

    ``nam(at)``, ``des(at)`` and ``ext(at)`` of the paper correspond to the
    :attr:`name`, :attr:`description` and :attr:`occurrence` properties.
    """

    __slots__ = (
        "_name",
        "_description",
        "_atoms",
        "_by_identifier",
        "_emitter",
        "_versioning",
        "_versions",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        description: "AtomTypeDescription | Sequence | Mapping",
        atoms: Iterable[Atom] = (),
    ) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"invalid atom-type name: {name!r}")
        self._name = name
        self._description = make_description(description)
        self._atoms: Dict[str, Atom] = {}  # guarded-by: AtomType._lock
        self._by_identifier = self._atoms  # alias, kept for readability
        self._emitter: Optional[ChangeEmitter] = None
        self._versioning: Optional[VersioningState] = None
        self._versions: Dict[str, VersionChain] = {}  # guarded-by: AtomType._lock
        #: Head lock: occurrence mutations hold it so the head swap, the
        #: version-chain record and the change-event emission form one
        #: atomic unit per type (events leave in generation order).  Readers
        #: only take it to copy the identifier sets for iteration.
        self._lock = make_rlock("AtomType._lock")
        for atom in atoms:
            self.add(atom)

    @property
    def events(self) -> ChangeEmitter:
        """The type's change emitter (created on first access)."""
        if self._emitter is None:
            self._emitter = ChangeEmitter()
        return self._emitter

    def _emit(
        self,
        kind: str,
        atom: Atom,
        previous: Optional[Atom] = None,
        generation: Optional[int] = None,
    ) -> None:
        if self._emitter is not None and len(self._emitter):
            self._emitter.emit(
                ChangeEvent(
                    kind, self._name, atom=atom, previous=previous, generation=generation
                )
            )

    # -- versioning ----------------------------------------------------------

    def attach_versioning(self, state: VersioningState) -> None:
        """Tie this type's mutations to a database's version clock.

        Every subsequent mutation ticks the clock; while the state is
        *recording* (at least one pin active) the pre- and post-states are
        kept in per-identifier copy-on-write version chains, which
        :meth:`repro.core.versions.AtomTypeView` resolves for pinned readers.
        """
        self._versioning = state

    # requires: AtomType._lock
    def _version_mutation(
        self, identifier: str, payload: object, base: object, swap
    ) -> Optional[int]:
        """Stamp one head mutation; chain-record and apply it atomically.

        *swap* is the head mutation itself.  Tick, recording decision,
        chain record and head swap run in **one critical section of the
        registry lock** (nested inside the head lock — the defined order):
        :meth:`VersioningState.pin` takes the same lock, so a concurrent
        pin lands either wholly before the unit (recording is then on and
        the pre-state is chained) or wholly after it (the new head *is* the
        pinned state).  Without this, a pin arriving between an unrecorded
        tick and the head swap would read the old head at a generation
        that already includes the mutation — a non-repeatable read.
        """
        state = self._versioning
        if state is None:
            swap()
            return None
        with state.lock:
            generation = state.tick()
            if state.recording:
                chain = self._versions.get(identifier)
                if chain is None:
                    chain = VersionChain(base)
                    self._versions[identifier] = chain
                chain.record(generation, payload)
            swap()
        return generation

    def truncate_versions(self, horizon: Optional[int]) -> Tuple[int, int]:
        """Garbage-collect version chains; returns ``(live, collected)`` entries.

        *horizon* is the oldest generation any pinned reader may still
        resolve (``None`` means no reader is pinned — all history goes).  A
        chain whose single remaining entry matches the head state is dropped
        entirely: it can never disagree with an unversioned read.
        """
        with self._lock:
            if horizon is None:
                collected = sum(len(chain) for chain in self._versions.values())
                self._versions.clear()
                return 0, collected
            collected = 0
            live = 0
            dead = []
            for identifier, chain in self._versions.items():
                collected += chain.truncate(horizon)
                if len(chain) == 1:
                    payload = chain.head()
                    head = self._atoms.get(identifier)
                    if (payload is ABSENT and head is None) or payload is head:
                        dead.append(identifier)
                        collected += 1
                        continue
                live += len(chain)
            for identifier in dead:
                del self._versions[identifier]
            return live, collected

    def collect_versions(self) -> Tuple[int, int]:
        """Garbage-collect with a freshly read horizon; ``(live, collected)``.

        The horizon is re-read *inside* the head lock: chain recording and
        truncation serialize on it, so a pin registered before this moment
        is guaranteed visible — a stale, pre-computed horizon could clear a
        chain some just-pinned reader still needs.
        """
        with self._lock:
            state = self._versioning
            horizon = state.truncation_horizon() if state is not None else None
            return self.truncate_versions(horizon)

    def version_statistics(self) -> Tuple[int, int]:
        """``(chains, entries)`` currently held for this type."""
        with self._lock:
            return len(self._versions), sum(
                len(chain) for chain in self._versions.values()
            )

    def _known_identifiers(self) -> Tuple[str, ...]:
        """All identifiers with a head or versioned state, sorted (for views)."""
        with self._lock:
            return tuple(sorted(set(self._atoms) | set(self._versions)))

    # -- accessor functions of Definition 1 --------------------------------

    @property
    def name(self) -> str:
        """``nam(at)`` — the atom-type name."""
        return self._name

    @property
    def description(self) -> AtomTypeDescription:
        """``des(at)`` — the atom-type description."""
        return self._description

    @property
    def occurrence(self) -> Tuple[Atom, ...]:
        """``ext(at)`` — the atom-type occurrence as a tuple of atoms."""
        return tuple(self._atoms.values())

    # -- occurrence management ---------------------------------------------

    def add(self, atom: "Atom | Mapping[str, object]", identifier: Optional[str] = None) -> Atom:
        """Insert *atom* into the occurrence, validating it against the description.

        *atom* may be an :class:`Atom` or a plain mapping of attribute values
        (in which case a new atom is created).  Returns the stored atom.
        """
        if isinstance(atom, Atom):
            if atom.type_name != self._name:
                atom = Atom(self._name, atom.values, identifier=atom.identifier)
        else:
            atom = Atom(self._name, dict(atom), identifier=identifier)
        with self._lock:
            if atom.identifier in self._atoms:
                raise IntegrityError(
                    f"atom identifier {atom.identifier!r} already present in atom type {self._name!r}"
                )
            validated = self._description.validate_values(atom.values)
            stored = Atom(self._name, validated, identifier=atom.identifier)
            generation = self._version_mutation(
                stored.identifier,
                stored,
                ABSENT,
                lambda: self._atoms.__setitem__(stored.identifier, stored),
            )
            self._emit(ATOM_INSERTED, stored, generation=generation)
        return stored

    def insert(self, identifier: Optional[str] = None, **values: object) -> Atom:
        """Convenience wrapper: create and add an atom from keyword values."""
        return self.add(values, identifier=identifier)

    def replace(self, atom: Atom) -> Atom:
        """Replace an existing atom's values in place, preserving its identity.

        The occurrence position is kept (no remove/re-add churn) and a single
        ``atom_modified`` event is emitted, which is what lets subscribers
        maintain derived structures without touching the atom's links.
        """
        with self._lock:
            previous = self._atoms.get(atom.identifier)
            if previous is None:
                raise IntegrityError(
                    f"atom {atom.identifier!r} is not part of atom type {self._name!r}"
                )
            validated = self._description.validate_values(atom.values)
            stored = Atom(self._name, validated, identifier=atom.identifier)
            generation = self._version_mutation(
                stored.identifier,
                stored,
                previous,
                lambda: self._atoms.__setitem__(stored.identifier, stored),
            )
            self._emit(ATOM_MODIFIED, stored, previous=previous, generation=generation)
        return stored

    def remove(self, atom: "Atom | str") -> Atom:
        """Remove an atom (by object or identifier) from the occurrence."""
        identifier = atom.identifier if isinstance(atom, Atom) else atom
        with self._lock:
            removed = self._atoms.get(identifier)
            if removed is None:
                raise IntegrityError(
                    f"atom {identifier!r} is not part of atom type {self._name!r}"
                )
            generation = self._version_mutation(
                identifier,
                ABSENT,
                removed,
                lambda: self._atoms.__delitem__(identifier),
            )
            self._emit(ATOM_DELETED, removed, generation=generation)
        return removed

    def get(self, identifier: str) -> Optional[Atom]:
        """Return the atom with *identifier*, or ``None``."""
        return self._atoms.get(identifier)

    def __contains__(self, atom: object) -> bool:
        if isinstance(atom, Atom):
            return atom.identifier in self._atoms
        return atom in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms.values())

    # -- derived views -------------------------------------------------------

    def identifiers(self) -> Tuple[str, ...]:
        """Return the identifiers of all atoms in the occurrence."""
        return tuple(self._atoms)

    def empty_copy(self, name: Optional[str] = None) -> "AtomType":
        """Return a new atom type with the same description and an empty occurrence."""
        return AtomType(name or self._name, self._description)

    def copy(self, name: Optional[str] = None) -> "AtomType":
        """Return a deep copy (fresh occurrence dict, shared immutable atoms)."""
        clone = AtomType(name or self._name, self._description)
        for atom in self._atoms.values():
            clone._atoms[atom.identifier] = atom
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomType):
            return NotImplemented
        return (
            self._name == other._name
            and self._description == other._description
            and set(self._atoms) == set(other._atoms)
        )

    def __hash__(self) -> int:
        return hash(self._name)

    def __repr__(self) -> str:
        return f"AtomType({self._name!r}, attributes={list(self._description.names)!r}, atoms={len(self)})"


def reset_surrogate_counter() -> None:
    """Reset the surrogate-identifier counter (used by tests for determinism)."""
    global _atom_counter
    _atom_counter = itertools.count(1)


def ensure_surrogate_counter(minimum: int) -> None:
    """Advance the surrogate counter past *minimum* (crash-recovery hook).

    WAL replay re-creates atoms under their original ``<type>#<n>``
    surrogates; in a fresh process the counter restarts at 1 and a later
    insert could collide with a recovered identifier.  Recovery therefore
    bumps the counter past the highest ordinal it replayed.
    """
    global _atom_counter
    probe = next(_atom_counter)
    _atom_counter = itertools.count(max(probe, minimum + 1))
