"""Qualification formulas and the ``qual`` predicate (Definitions 4 and 10).

The atom-type restriction ``σ[restr(ad)](at)`` and the molecule-type
restriction ``Σ[restr(md)](mt)`` both rely on a *qualification formula*
``restr`` and on a predicate ``qual`` that "decides whether the atom (or
molecule) at hand fulfills the qualification condition".  This module provides
a small expression language for those formulas:

* :class:`Comparison` — ``attribute <op> constant`` or ``attribute <op>
  attribute``; for molecules the attribute reference is qualified with an atom
  type name (``point.name = 'pn'``),
* :class:`And`, :class:`Or`, :class:`Not` — the boolean connectives,
* :class:`TrueFormula` / :class:`FalseFormula` — constants,
* :func:`attr` — a builder producing comparisons with operator syntax
  (``attr("hectare") > 1000``).

Evaluation against an atom uses :meth:`Formula.evaluate_atom`; evaluation
against a molecule uses :meth:`Formula.evaluate_molecule` with existential
semantics over component atoms of the referenced type (a molecule qualifies
when *some* component atom of that type satisfies the comparison — the natural
reading of the paper's ``point.name = 'pn'`` example, where each molecule is
rooted in exactly one ``point`` atom).
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.exceptions import RestrictionError

_OPERATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compare(op: str, left: object, right: object) -> bool:
    """Apply comparison *op*, treating None as failing every comparison except != ."""
    func = _OPERATORS[op]
    if left is None or right is None:
        if op in ("!=", "<>"):
            return left is not right
        if op in ("=", "=="):
            return left is None and right is None
        return False
    try:
        return bool(func(left, right))
    except TypeError:
        return False


class Formula:
    """Abstract base class of qualification formulas."""

    def evaluate_atom(self, atom) -> bool:
        """Return ``True`` when *atom* satisfies this formula."""
        raise NotImplementedError

    def evaluate_molecule(self, molecule) -> bool:
        """Return ``True`` when *molecule* satisfies this formula."""
        raise NotImplementedError

    def referenced_attributes(self) -> Tuple[Tuple[Optional[str], str], ...]:
        """Return the ``(atom_type, attribute)`` pairs referenced by this formula."""
        raise NotImplementedError

    def referenced_atom_types(self) -> Tuple[str, ...]:
        """Return the atom-type names explicitly referenced (deduplicated, ordered)."""
        seen = []
        for type_name, _ in self.referenced_attributes():
            if type_name is not None and type_name not in seen:
                seen.append(type_name)
        return tuple(seen)

    # Boolean composition -----------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


class TrueFormula(Formula):
    """The always-true qualification (restriction with it is the identity)."""

    def evaluate_atom(self, atom) -> bool:
        return True

    def evaluate_molecule(self, molecule) -> bool:
        return True

    def referenced_attributes(self) -> Tuple[Tuple[Optional[str], str], ...]:
        return ()

    def __repr__(self) -> str:
        return "TRUE"


class FalseFormula(Formula):
    """The always-false qualification (restriction with it empties the occurrence)."""

    def evaluate_atom(self, atom) -> bool:
        return False

    def evaluate_molecule(self, molecule) -> bool:
        return False

    def referenced_attributes(self) -> Tuple[Tuple[Optional[str], str], ...]:
        return ()

    def __repr__(self) -> str:
        return "FALSE"


class Comparison(Formula):
    """An atomic comparison ``<lhs> <op> <rhs>``.

    ``lhs`` is an attribute reference; ``rhs`` is either a constant or another
    attribute reference (see :class:`AttributeRef`).  Attribute references may
    carry an atom-type qualifier, which is required for molecule evaluation
    whenever the attribute name is ambiguous.
    """

    def __init__(self, lhs: "AttributeRef", op: str, rhs: object) -> None:
        if op not in _OPERATORS:
            raise RestrictionError(f"unknown comparison operator: {op!r}")
        self.lhs = lhs
        self.op = op
        self.rhs = rhs

    def evaluate_atom(self, atom) -> bool:
        left = self.lhs.value_from_atom(atom)
        right = self.rhs.value_from_atom(atom) if isinstance(self.rhs, AttributeRef) else self.rhs
        return _compare(self.op, left, right)

    def evaluate_molecule(self, molecule) -> bool:
        left_values = self.lhs.values_from_molecule(molecule)
        if isinstance(self.rhs, AttributeRef):
            right_values = self.rhs.values_from_molecule(molecule)
            return any(
                _compare(self.op, left, right)
                for left in left_values
                for right in right_values
            )
        return any(_compare(self.op, left, self.rhs) for left in left_values)

    def referenced_attributes(self) -> Tuple[Tuple[Optional[str], str], ...]:
        refs = [(self.lhs.atom_type, self.lhs.attribute)]
        if isinstance(self.rhs, AttributeRef):
            refs.append((self.rhs.atom_type, self.rhs.attribute))
        return tuple(refs)

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class AttributeRef:
    """A reference to an attribute, optionally qualified with an atom type.

    ``AttributeRef("hectare")`` references the attribute of whatever atom is
    being tested; ``AttributeRef("name", "point")`` references the ``name``
    attribute of ``point`` atoms inside a molecule.
    """

    __slots__ = ("attribute", "atom_type")

    def __init__(self, attribute: str, atom_type: Optional[str] = None) -> None:
        self.attribute = attribute
        self.atom_type = atom_type

    def value_from_atom(self, atom) -> object:
        if self.atom_type is not None and atom.type_name != self.atom_type:
            return None
        return atom.get(self.attribute)

    def values_from_molecule(self, molecule) -> Tuple[object, ...]:
        atoms = molecule.atoms_of_type(self.atom_type) if self.atom_type else molecule.atoms
        return tuple(atom.get(self.attribute) for atom in atoms)

    # Operator overloads to build comparisons fluently ------------------------

    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison(self, "=", other)

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison(self, "!=", other)

    def __lt__(self, other: object) -> "Comparison":
        return Comparison(self, "<", other)

    def __le__(self, other: object) -> "Comparison":
        return Comparison(self, "<=", other)

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(self, ">", other)

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(self, ">=", other)

    def __hash__(self) -> int:
        return hash((self.attribute, self.atom_type))

    def __repr__(self) -> str:
        if self.atom_type:
            return f"{self.atom_type}.{self.attribute}"
        return self.attribute


class And(Formula):
    """Conjunction of two or more formulas."""

    def __init__(self, *operands: Formula) -> None:
        if len(operands) < 2:
            raise RestrictionError("And requires at least two operands")
        self.operands = tuple(operands)

    def evaluate_atom(self, atom) -> bool:
        return all(op.evaluate_atom(atom) for op in self.operands)

    def evaluate_molecule(self, molecule) -> bool:
        return all(op.evaluate_molecule(molecule) for op in self.operands)

    def referenced_attributes(self) -> Tuple[Tuple[Optional[str], str], ...]:
        refs: list = []
        for op in self.operands:
            refs.extend(op.referenced_attributes())
        return tuple(refs)

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(op) for op in self.operands) + ")"


class Or(Formula):
    """Disjunction of two or more formulas."""

    def __init__(self, *operands: Formula) -> None:
        if len(operands) < 2:
            raise RestrictionError("Or requires at least two operands")
        self.operands = tuple(operands)

    def evaluate_atom(self, atom) -> bool:
        return any(op.evaluate_atom(atom) for op in self.operands)

    def evaluate_molecule(self, molecule) -> bool:
        return any(op.evaluate_molecule(molecule) for op in self.operands)

    def referenced_attributes(self) -> Tuple[Tuple[Optional[str], str], ...]:
        refs: list = []
        for op in self.operands:
            refs.extend(op.referenced_attributes())
        return tuple(refs)

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(op) for op in self.operands) + ")"


class Not(Formula):
    """Negation of a formula."""

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def evaluate_atom(self, atom) -> bool:
        return not self.operand.evaluate_atom(atom)

    def evaluate_molecule(self, molecule) -> bool:
        return not self.operand.evaluate_molecule(molecule)

    def referenced_attributes(self) -> Tuple[Tuple[Optional[str], str], ...]:
        return self.operand.referenced_attributes()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


class PredicateFormula(Formula):
    """Escape hatch wrapping an arbitrary Python callable as a formula.

    The callable receives the atom or molecule and returns a boolean.  Used by
    tests and by applications whose conditions are not expressible as simple
    comparisons; the optimizer treats such formulas as opaque.
    """

    def __init__(self, func: Callable[[object], bool], description: str = "<predicate>") -> None:
        self.func = func
        self.description = description

    def evaluate_atom(self, atom) -> bool:
        return bool(self.func(atom))

    def evaluate_molecule(self, molecule) -> bool:
        return bool(self.func(molecule))

    def referenced_attributes(self) -> Tuple[Tuple[Optional[str], str], ...]:
        return ()

    def __repr__(self) -> str:
        return self.description


def attr(attribute: str, atom_type: Optional[str] = None) -> AttributeRef:
    """Build an attribute reference: ``attr("hectare") > 1000``.

    For molecule qualifications use the qualified form
    ``attr("name", "point") == "pn"`` (the paper writes ``point.name = 'pn'``).
    A dotted string ``attr("point.name")`` is accepted as a shorthand.
    """
    if atom_type is None and "." in attribute:
        atom_type, attribute = attribute.split(".", 1)
    return AttributeRef(attribute, atom_type)


def conjoin(formulas: Sequence[Formula]) -> Formula:
    """Combine *formulas* with AND; empty input yields :class:`TrueFormula`."""
    formulas = [f for f in formulas if not isinstance(f, TrueFormula)]
    if not formulas:
        return TrueFormula()
    if len(formulas) == 1:
        return formulas[0]
    return And(*formulas)


def split_conjunction(formula: Formula) -> Tuple[Formula, ...]:
    """Flatten nested conjunctions into their conjuncts (used by the optimizer)."""
    if isinstance(formula, And):
        parts: list = []
        for operand in formula.operands:
            parts.extend(split_conjunction(operand))
        return tuple(parts)
    if isinstance(formula, TrueFormula):
        return ()
    return (formula,)
