"""Molecules, molecule-type descriptions and molecule types (Definitions 5–7).

* :class:`MoleculeTypeDescription` — the pair ``md = <C, G>`` of atom-type
  names and directed link-type uses, validated with the ``md_graph``
  predicate (directed, acyclic, coherent, single root).
* :class:`Molecule` — an element ``m = <c, g>`` of a molecule-type occurrence:
  a set of atoms plus the set of links connecting them, forming a maximal
  subgraph that conforms to the description.  Molecules of the same type may
  *overlap* (non-disjoint atom sets) — this is how the MAD model represents
  shared subobjects.
* :class:`MoleculeType` — the triple ``mt = <mname, md, mv>``.

The derivation of molecule occurrences (the function ``m_dom`` and the
``contained``/``total`` predicates) lives in :mod:`repro.core.derivation`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.atom import Atom
from repro.core.graph import DirectedLink, TypeGraph, md_graph, require_md_graph
from repro.core.link import Link
from repro.exceptions import MoleculeGraphError, SchemaError, UnknownNameError


class MoleculeTypeDescription:
    """The pair ``md = <C, G>`` of Definition 5.

    Parameters
    ----------
    atom_type_names:
        The set ``C`` of atom-type names (nodes of the type graph).
    directed_links:
        The set ``G`` of directed link-type uses; each may be a
        :class:`DirectedLink` or a ``(link_type_name, source, target)`` triple.
        When the link-type name is ``None`` or ``"-"`` the caller relies on
        there being exactly one link type between the two atom types; the
        resolution happens in the schema/derivation layer.
    """

    __slots__ = ("_atom_type_names", "_directed_links", "_graph")

    def __init__(
        self,
        atom_type_names: Sequence[str],
        directed_links: Sequence["DirectedLink | Tuple[str, str, str]"] = (),
    ) -> None:
        names: Tuple[str, ...] = tuple(dict.fromkeys(atom_type_names))
        links: List[DirectedLink] = []
        for entry in directed_links:
            if isinstance(entry, DirectedLink):
                links.append(entry)
            else:
                link_name, source, target = entry
                links.append(DirectedLink(link_name, source, target))
        self._atom_type_names = names
        self._directed_links = tuple(links)
        self._graph = require_md_graph(names, self._directed_links)

    # ------------------------------------------------------------- accessors

    @property
    def atom_type_names(self) -> Tuple[str, ...]:
        """The set ``C`` (in definition order)."""
        return self._atom_type_names

    @property
    def directed_links(self) -> Tuple[DirectedLink, ...]:
        """The set ``G`` of directed link-type uses."""
        return self._directed_links

    @property
    def graph(self) -> TypeGraph:
        """The validated type graph."""
        return self._graph

    @property
    def root(self) -> str:
        """The unique root atom type of the description."""
        return self._graph.roots()[0]

    @property
    def leaves(self) -> Tuple[str, ...]:
        """The leaf atom types (no outgoing directed links)."""
        return self._graph.leaves()

    def children_of(self, atom_type_name: str) -> Tuple[DirectedLink, ...]:
        """The directed link uses leaving *atom_type_name*."""
        return self._graph.children_edges(atom_type_name)

    def parents_of(self, atom_type_name: str) -> Tuple[DirectedLink, ...]:
        """The directed link uses entering *atom_type_name*."""
        return self._graph.parent_edges(atom_type_name)

    def traversal_order(self) -> Tuple[str, ...]:
        """Topological (root-first) order of the atom types, used by derivation."""
        return self._graph.topological_order()

    def link_type_names(self) -> Tuple[str, ...]:
        """The names of all link types used by the description (deduplicated)."""
        return tuple(dict.fromkeys(dl.link_type_name for dl in self._directed_links))

    # ---------------------------------------------------------- construction

    def projected(self, atom_type_names: Sequence[str]) -> "MoleculeTypeDescription":
        """Return the description induced by *atom_type_names*.

        The root must be retained and the induced graph must still satisfy
        ``md_graph`` (molecule-type projection keeps the structure coherent).
        """
        keep = list(dict.fromkeys(atom_type_names))
        if self.root not in keep:
            raise MoleculeGraphError(
                f"molecule-type projection must retain the root {self.root!r}"
            )
        unknown = [name for name in keep if name not in self._atom_type_names]
        if unknown:
            raise MoleculeGraphError(
                f"cannot project onto atom types {unknown!r}: not part of the description"
            )
        edges = [
            dl
            for dl in self._directed_links
            if dl.source in keep and dl.target in keep
        ]
        return MoleculeTypeDescription(keep, edges)

    def renamed(self, mapping: Mapping[str, str], link_mapping: Optional[Mapping[str, str]] = None) -> "MoleculeTypeDescription":
        """Return a description with atom-type (and optionally link-type) names replaced.

        Used by result propagation (Definition 9), where the result's molecule
        structure refers to renamed/propagated atom and link types but "still
        shows the same graph structure".
        """
        link_mapping = link_mapping or {}
        return MoleculeTypeDescription(
            [mapping.get(name, name) for name in self._atom_type_names],
            [
                DirectedLink(
                    link_mapping.get(dl.link_type_name, dl.link_type_name),
                    mapping.get(dl.source, dl.source),
                    mapping.get(dl.target, dl.target),
                )
                for dl in self._directed_links
            ],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MoleculeTypeDescription):
            return NotImplemented
        return (
            frozenset(self._atom_type_names) == frozenset(other._atom_type_names)
            and frozenset(self._directed_links) == frozenset(other._directed_links)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._atom_type_names), frozenset(self._directed_links)))

    def __repr__(self) -> str:
        return (
            f"MoleculeTypeDescription(root={self.root!r}, "
            f"atom_types={list(self._atom_type_names)!r}, "
            f"links={[dl.as_tuple() for dl in self._directed_links]!r})"
        )


class Molecule:
    """An element ``m = <c, g>`` of a molecule-type occurrence (Definition 6).

    A molecule is identified by its root atom; two molecules of the same type
    with the same root atom and the same component sets are equal.  Molecules
    may share atoms with other molecules — sharing is *not* copying, the same
    :class:`Atom` object (same identifier) appears in several molecules.
    """

    __slots__ = ("root_atom", "_atoms", "_links", "_atoms_by_type", "description")

    def __init__(
        self,
        root_atom: Atom,
        atoms: Iterable[Atom],
        links: Iterable[Link],
        description: Optional[MoleculeTypeDescription] = None,
    ) -> None:
        self.root_atom = root_atom
        self._atoms: Dict[str, Atom] = {}
        self._atoms_by_type: Dict[str, List[Atom]] = {}
        for atom in atoms:
            if atom.identifier not in self._atoms:
                self._atoms[atom.identifier] = atom
                self._atoms_by_type.setdefault(atom.type_name, []).append(atom)
        if root_atom.identifier not in self._atoms:
            self._atoms[root_atom.identifier] = root_atom
            self._atoms_by_type.setdefault(root_atom.type_name, []).append(root_atom)
        self._links: FrozenSet[Link] = frozenset(links)
        self.description = description

    # ------------------------------------------------------------- accessors

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """All component atoms (the set ``c``)."""
        return tuple(self._atoms.values())

    @property
    def links(self) -> FrozenSet[Link]:
        """All component links (the set ``g``)."""
        return self._links

    @property
    def atom_identifiers(self) -> FrozenSet[str]:
        """The identifiers of the component atoms."""
        return frozenset(self._atoms)

    def atoms_of_type(self, type_name: Optional[str]) -> Tuple[Atom, ...]:
        """The component atoms belonging to atom type *type_name*.

        With ``None`` every component atom is returned.  Result atoms of
        propagated molecule types keep their original type name accessible via
        their identifier prefix, so lookups fall back to identifier matching.
        """
        if type_name is None:
            return self.atoms
        direct = self._atoms_by_type.get(type_name)
        if direct:
            return tuple(direct)
        # Propagated atom types carry names like "state@mt_state$3"; accept a
        # reference by the original (bare) name on either side.
        bare = type_name.split("@", 1)[0]
        matches = [
            atom
            for stored_type, atom_list in self._atoms_by_type.items()
            for atom in atom_list
            if stored_type.split("@", 1)[0] == bare
        ]
        return tuple(matches)

    def atom_type_names(self) -> Tuple[str, ...]:
        """The distinct atom-type names present in this molecule."""
        return tuple(self._atoms_by_type)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Atom):
            return item.identifier in self._atoms
        if isinstance(item, Link):
            return item in self._links
        return item in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms.values())

    def get(self, identifier: str) -> Optional[Atom]:
        """Return the component atom with *identifier*, or ``None``."""
        return self._atoms.get(identifier)

    # ---------------------------------------------------------------- algebra

    def shares_atoms_with(self, other: "Molecule") -> FrozenSet[str]:
        """Return the identifiers of atoms shared with *other* (shared subobjects)."""
        return self.atom_identifiers & other.atom_identifiers

    def projected(self, description: MoleculeTypeDescription) -> "Molecule":
        """Return the sub-molecule induced by *description* (used by Π).

        Keeps only atoms whose type is part of the projected description and
        links whose link-type use survives.
        """
        keep_types = set(description.atom_type_names)
        keep_types_bare = {name.split("@", 1)[0] for name in keep_types}
        kept_atoms = [
            atom
            for atom in self.atoms
            if atom.type_name in keep_types or atom.type_name.split("@", 1)[0] in keep_types_bare
        ]
        kept_ids = {atom.identifier for atom in kept_atoms}
        link_names = set(description.link_type_names())
        link_names_bare = {name.split("~", 1)[0] for name in link_names}
        kept_links = [
            link
            for link in self._links
            if (link.link_type_name in link_names or link.link_type_name.split("~", 1)[0] in link_names_bare)
            and all(identifier in kept_ids for identifier in link.identifiers)
        ]
        return Molecule(self.root_atom, kept_atoms, kept_links, description)

    def value_signature(self) -> Tuple:
        """A hashable signature of the molecule's content (used for set semantics)."""
        return (
            self.root_atom.identifier,
            frozenset(self._atoms),
            frozenset(self._links),
        )

    def to_nested_dict(self) -> Dict[str, object]:
        """Render the molecule as a nested dictionary rooted at the root atom.

        The nesting follows the description's directed links when a
        description is attached; otherwise atoms are grouped by type.  This is
        the canonical external representation used by the examples and by the
        NF² mapping.  Sibling atoms render sorted by identifier: the traversal
        order of derivation depends on set iteration, and byte-identical
        output across equivalent molecules (pinned readers, WAL-recovered
        engines) requires a canonical order.
        """
        if self.description is None:
            return {
                "root": self.root_atom.values | {"_id": self.root_atom.identifier},
                "atoms": {
                    type_name: [
                        atom.values | {"_id": atom.identifier}
                        for atom in sorted(atoms, key=lambda a: a.identifier)
                    ]
                    # Sorted type names: the grouping dict's insertion order
                    # follows derivation order, which differs between
                    # equivalent molecules (pinned readers, shipped plans).
                    for type_name, atoms in sorted(self._atoms_by_type.items())
                },
            }
        adjacency: Dict[str, Set[str]] = {}
        for link in self._links:
            ids = tuple(link.identifiers)
            first = ids[0]
            second = ids[-1]
            adjacency.setdefault(first, set()).add(second)
            adjacency.setdefault(second, set()).add(first)

        def build(atom: Atom, type_name: str, visited: FrozenSet[str]) -> Dict[str, object]:
            node: Dict[str, object] = dict(atom.values)
            node["_id"] = atom.identifier
            for directed in self.description.children_of(type_name):
                child_atoms = sorted(
                    (
                        child
                        for child in self.atoms_of_type(directed.target)
                        if child.identifier in adjacency.get(atom.identifier, set())
                        and child.identifier not in visited
                    ),
                    key=lambda child: child.identifier,
                )
                # Propagated atom types carry decorated names ("book@result$3");
                # render the nested dictionary under the bare, user-facing name.
                child_key = directed.target.split("@", 1)[0]
                if child_atoms:
                    node.setdefault(child_key, [])
                    for child in child_atoms:
                        node[child_key].append(
                            build(child, directed.target, visited | {atom.identifier})
                        )
            return node

        return build(self.root_atom, self.description.root, frozenset())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Molecule):
            return NotImplemented
        return self.value_signature() == other.value_signature()

    def __hash__(self) -> int:
        return hash(self.value_signature())

    def __repr__(self) -> str:
        return (
            f"Molecule(root={self.root_atom.identifier}, atoms={len(self._atoms)}, "
            f"links={len(self._links)})"
        )


class MoleculeType:
    """The triple ``mt = <mname, md, mv>`` of Definition 7."""

    __slots__ = ("_name", "_description", "_molecules")

    def __init__(
        self,
        name: str,
        description: MoleculeTypeDescription,
        molecules: Iterable[Molecule] = (),
    ) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"invalid molecule-type name: {name!r}")
        self._name = name
        self._description = description
        self._molecules: List[Molecule] = list(molecules)

    @property
    def name(self) -> str:
        """``mname`` — the molecule-type name."""
        return self._name

    @property
    def description(self) -> MoleculeTypeDescription:
        """``md`` — the molecule-type description."""
        return self._description

    @property
    def occurrence(self) -> Tuple[Molecule, ...]:
        """``mv`` — the molecule-type occurrence."""
        return tuple(self._molecules)

    @property
    def root_type_name(self) -> str:
        """The root atom type of the description."""
        return self._description.root

    def __len__(self) -> int:
        return len(self._molecules)

    def __iter__(self) -> Iterator[Molecule]:
        return iter(self._molecules)

    def __contains__(self, molecule: object) -> bool:
        return molecule in self._molecules

    def molecules_rooted_at(self, identifier: str) -> Tuple[Molecule, ...]:
        """Return the molecules whose root atom has *identifier*."""
        return tuple(m for m in self._molecules if m.root_atom.identifier == identifier)

    def find(self, **root_values: object) -> Tuple[Molecule, ...]:
        """Return molecules whose root atom matches all given attribute values."""
        matches = []
        for molecule in self._molecules:
            root = molecule.root_atom
            if all(root.get(key) == value for key, value in root_values.items()):
                matches.append(molecule)
        return tuple(matches)

    def shared_atoms(self) -> Dict[str, int]:
        """Return identifiers of atoms appearing in more than one molecule.

        The mapping value is the number of molecules containing the atom; this
        quantifies the "shared subobjects" of Fig. 2.
        """
        counts: Dict[str, int] = {}
        for molecule in self._molecules:
            for identifier in molecule.atom_identifiers:
                counts[identifier] = counts.get(identifier, 0) + 1
        return {identifier: count for identifier, count in counts.items() if count > 1}

    def atom_count(self) -> int:
        """Total number of atom occurrences summed over all molecules."""
        return sum(len(molecule) for molecule in self._molecules)

    def distinct_atom_count(self) -> int:
        """Number of distinct atoms over all molecules (shared atoms counted once)."""
        distinct: Set[str] = set()
        for molecule in self._molecules:
            distinct |= molecule.atom_identifiers
        return len(distinct)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MoleculeType):
            return NotImplemented
        return (
            self._name == other._name
            and self._description == other._description
            and set(m.value_signature() for m in self._molecules)
            == set(m.value_signature() for m in other._molecules)
        )

    def __hash__(self) -> int:
        return hash(self._name)

    def __repr__(self) -> str:
        return (
            f"MoleculeType({self._name!r}, root={self.root_type_name!r}, "
            f"molecules={len(self._molecules)})"
        )
