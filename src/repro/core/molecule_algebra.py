"""The molecule algebra α, Σ, Π, X, Ω, Δ (+ derived Ψ) and result propagation (Defs. 8–10, Thms. 2–3).

Every molecule-type operation follows the three-phase scheme of Fig. 5:

1. **operation-specific actions** produce a *result set* ``rst = <mname, rsd,
   rsv>`` (a molecule-type description plus the molecules that survive the
   operation);
2. the function **prop** (Definition 9) materializes that result set into the
   database: the atom types and link types used by ``rsd`` are *renamed* and
   their occurrences are *restricted* to exactly the atoms/links appearing in
   ``rsv``, and the database is enlarged with them;
3. the **molecule-type definition α** (Definition 8) is performed over the
   enlarged database, re-deriving the result molecule set — by construction it
   contains exactly one molecule per element of ``rsv``.

This construction is what makes the molecule algebra *closed* (Theorem 3):
the result of every operation is again a molecule type over a database of the
database domain, so operations can be concatenated arbitrarily — e.g. the
derived intersection ``Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2))``.

The operation-specific phase of every function is a thin wrapper over a
single-node streaming plan from :mod:`repro.engine.physical` (a
``MoleculeScan`` for α, a ``Restrict``/``Project``/set operator over a
``MoleculeSource`` for the rest), so the algebra and the plan pipeline share
one evaluation engine; only the materializing phases 2–3 (``prop`` + α over
the enlarged database) are specific to the algebra.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.database import Database
from repro.core.derivation import resolve_description
from repro.core.graph import DirectedLink
from repro.core.link import Link, LinkType
from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.core.predicates import Formula, PredicateFormula
from repro.engine import physical as _physical
from repro.engine.logical import canonical_structure
from repro.exceptions import (
    AlgebraError,
    RestrictionError,
    UnionCompatibilityError,
)

_prop_counter = itertools.count(1)


def _fresh_suffix() -> str:
    return f"${next(_prop_counter)}"


@dataclass
class ResultSet:
    """The result set ``rst = <mname, rsd, rsv>`` of Definition 9."""

    name: str
    description: MoleculeTypeDescription
    molecules: Tuple[Molecule, ...]


@dataclass
class MoleculeOperationResult:
    """The outcome of a molecule-type operation.

    Attributes
    ----------
    molecule_type:
        The result molecule type ``mt`` (valid over :attr:`database`).
    database:
        The enlarged database ``DB'`` produced by propagation.
    propagated_atom_types / propagated_link_types:
        The renamed, occurrence-restricted types added by ``prop``.
    result_set:
        The intermediate result set, kept for verification (Fig. 5 benches
        check that ``mt``'s occurrence is equivalent to it).
    """

    molecule_type: MoleculeType
    database: Database
    propagated_atom_types: Tuple[AtomType, ...] = ()
    propagated_link_types: Tuple[LinkType, ...] = ()
    result_set: Optional[ResultSet] = None

    def __iter__(self):
        return iter((self.molecule_type, self.database))


# --------------------------------------------------------------------------- α


def molecule_type_definition(
    database: Database,
    name: str,
    description: "MoleculeTypeDescription | Sequence[str]",
    directed_links: Sequence["DirectedLink | Tuple[str, str, str]"] = (),
) -> MoleculeType:
    """The operator α (Definition 8): ``α[mname, G](C) = <mname, <C,G>, m_dom(<C,G>)>``.

    *description* may be a prepared :class:`MoleculeTypeDescription` or the
    set ``C`` of atom-type names accompanied by *directed_links* (``G``).
    The occurrence is derived immediately (eager ``m_dom``).
    """
    if not isinstance(description, MoleculeTypeDescription):
        description = MoleculeTypeDescription(list(description), list(directed_links))
    for type_name in description.atom_type_names:
        database.atyp(type_name)  # raises UnknownNameError when missing
    scan = _physical.MoleculeScan(name, description)
    context = _physical.ExecutionContext(database)
    molecules = tuple(scan.execute(context))
    return MoleculeType(name, scan.describe(context), molecules)


# ------------------------------------------------------------------------ prop


def propagate(result_set: ResultSet, database: Database) -> MoleculeOperationResult:
    """The function ``prop`` (Definition 9): materialize *result_set* into *database*.

    Returns the molecule type re-derived over the enlarged database; the
    re-derivation is guaranteed to reproduce the result set exactly because
    the propagated occurrences contain *only* atoms/links of result-set
    molecules and root atoms of exactly the result-set molecules.
    """
    rsd = resolve_description(database, result_set.description)
    suffix = _fresh_suffix()
    atom_name_map: Dict[str, str] = {}
    link_name_map: Dict[str, str] = {}

    # Collect, per original atom type, the atoms used by result-set molecules;
    # the root type is restricted to the molecules' root atoms so that the
    # re-derivation yields exactly one molecule per result-set element.
    atoms_per_type: Dict[str, Dict[str, Atom]] = {name: {} for name in rsd.atom_type_names}
    root_type = rsd.root
    root_ids = {m.root_atom.identifier for m in result_set.molecules}
    links_per_directed: Dict[Tuple[str, str, str], Set[Link]] = {
        dl.as_tuple(): set() for dl in rsd.directed_links
    }
    for molecule in result_set.molecules:
        for type_name in rsd.atom_type_names:
            for atom in molecule.atoms_of_type(type_name):
                if type_name == root_type and atom.identifier not in root_ids:
                    continue
                atoms_per_type[type_name][atom.identifier] = atom
        link_index: Dict[str, List[Link]] = {}
        for link in molecule.links:
            link_index.setdefault(link.link_type_name.split("~", 1)[0], []).append(link)
            link_index.setdefault(link.link_type_name, []).append(link)
        for directed in rsd.directed_links:
            # Match by the directed use's full name first; fall back to the
            # base link-type name so molecules stemming from a *differently*
            # propagated operand (e.g. the right side of a union) keep their
            # links through re-propagation.
            links = link_index.get(directed.link_type_name)
            if links is None:
                links = link_index.get(directed.link_type_name.split("~", 1)[0], ())
            for link in links:
                links_per_directed[directed.as_tuple()].add(link)

    # Build the renamed atom types C'.
    propagated_atom_types: List[AtomType] = []
    for type_name in rsd.atom_type_names:
        original = database.atyp(type_name)
        new_name = f"{type_name.split('@', 1)[0]}@{result_set.name}{suffix}"
        atom_name_map[type_name] = new_name
        renamed = AtomType(new_name, original.description)
        for atom in atoms_per_type[type_name].values():
            renamed.add(Atom(new_name, atom.values, identifier=atom.identifier))
        propagated_atom_types.append(renamed)

    # Build the inherited link types G'.
    propagated_link_types: List[LinkType] = []
    seen_link_names: Dict[str, LinkType] = {}
    renamed_links: List[DirectedLink] = []
    for directed in rsd.directed_links:
        base_name = directed.link_type_name.split("~", 1)[0]
        new_link_name = f"{base_name}~{result_set.name}{suffix}"
        link_name_map[directed.link_type_name] = new_link_name
        new_source = atom_name_map[directed.source]
        new_target = atom_name_map[directed.target]
        if new_link_name in seen_link_names:
            link_type = seen_link_names[new_link_name]
        else:
            link_type = LinkType(new_link_name, new_source, new_target)
            seen_link_names[new_link_name] = link_type
            propagated_link_types.append(link_type)
        for link in links_per_directed[directed.as_tuple()]:
            ids = tuple(link.identifiers)
            first, last = ids[0], ids[-1]
            link_type.add(Link(new_link_name, first, last, new_source, new_target))
        renamed_links.append(DirectedLink(new_link_name, new_source, new_target))

    new_description = MoleculeTypeDescription(
        [atom_name_map[name] for name in rsd.atom_type_names], renamed_links
    )
    enlarged = database.enlarged(propagated_atom_types, propagated_link_types)
    molecule_type = molecule_type_definition(enlarged, result_set.name, new_description)
    return MoleculeOperationResult(
        molecule_type,
        enlarged,
        tuple(propagated_atom_types),
        tuple(propagated_link_types),
        result_set,
    )


# --------------------------------------------------------------- Σ restriction


def molecule_restriction(
    database: Database,
    molecule_type: MoleculeType,
    formula: "Formula | callable",
    name: Optional[str] = None,
) -> MoleculeOperationResult:
    """Molecule-type restriction ``Σ[restr(md)](mt)`` (Definition 10).

    Keeps the molecules satisfying *formula* (a qualification formula over the
    molecule's component atoms, e.g. ``attr("name", "point") == "pn"``), then
    propagates and re-derives.
    """
    if callable(formula) and not isinstance(formula, Formula):
        formula = PredicateFormula(formula)
    if not isinstance(formula, Formula):
        raise RestrictionError(f"not a qualification formula: {formula!r}")
    result_name = name or f"restr({molecule_type.name})"
    operator = _physical.Restrict(_physical.MoleculeSource(molecule_type), formula)
    qualifying = tuple(operator.execute(_physical.ExecutionContext(database)))
    result_set = ResultSet(result_name, molecule_type.description, qualifying)
    return propagate(result_set, database)


# ---------------------------------------------------------------- Π projection


def molecule_projection(
    database: Database,
    molecule_type: MoleculeType,
    atom_type_names: Sequence[str],
    name: Optional[str] = None,
) -> MoleculeOperationResult:
    """Molecule-type projection ``Π``: keep only the given atom types of the structure.

    The root atom type must be retained and the retained subgraph must remain
    a valid molecule structure (coherent, single-rooted).  Each molecule is
    cut down to its atoms of the retained types and the links between them.
    """
    result_name = name or f"proj({molecule_type.name})"
    operator = _physical.Project(
        _physical.MoleculeSource(molecule_type), atom_type_names, owner=molecule_type.name
    )
    context = _physical.ExecutionContext(database)
    projected_description = operator.describe(context)  # raises on unknown/root loss
    projected = tuple(operator.execute(context))
    result_set = ResultSet(result_name, projected_description, projected)
    return propagate(result_set, database)


# ------------------------------------------------------------------- Ω / Δ / Ψ


def _check_compatible(first: MoleculeType, second: MoleculeType, operation: str) -> None:
    """Union/difference compatibility: identical graph structure over the same base types.

    The physical set operators re-check compatibility for the planner path;
    this algebra-level check exists besides it because only here are the
    operand *names* available for the error message.
    """
    if canonical_structure(first.description) != canonical_structure(second.description):
        raise UnionCompatibilityError(
            f"molecule-type {operation} requires structurally identical descriptions; "
            f"{first.name!r} and {second.name!r} differ"
        )


#: Value-based identity of a molecule (root identity plus component identities).
_molecule_value_key = _physical.molecule_value_key


def _stream_set_operation(
    database: Database,
    operator_class,
    first: MoleculeType,
    second: MoleculeType,
    result_name: str,
) -> MoleculeOperationResult:
    """Run one streaming set operator over the operand occurrences, then propagate."""
    operator = operator_class(
        _physical.MoleculeSource(first), _physical.MoleculeSource(second)
    )
    merged = tuple(operator.execute(_physical.ExecutionContext(database)))
    result_set = ResultSet(result_name, first.description, merged)
    return propagate(result_set, database)


def molecule_union(
    database: Database,
    first: MoleculeType,
    second: MoleculeType,
    name: Optional[str] = None,
) -> MoleculeOperationResult:
    """Molecule-type union ``Ω(mt1, mt2)`` over structurally identical types."""
    _check_compatible(first, second, "union")
    return _stream_set_operation(
        database, _physical.Union, first, second, name or f"union({first.name},{second.name})"
    )


def molecule_difference(
    database: Database,
    first: MoleculeType,
    second: MoleculeType,
    name: Optional[str] = None,
) -> MoleculeOperationResult:
    """Molecule-type difference ``Δ(mt1, mt2)``: molecules of mt1 not present in mt2."""
    _check_compatible(first, second, "difference")
    return _stream_set_operation(
        database, _physical.Difference, first, second, name or f"diff({first.name},{second.name})"
    )


def molecule_intersection(
    database: Database,
    first: MoleculeType,
    second: MoleculeType,
    name: Optional[str] = None,
) -> MoleculeOperationResult:
    """Derived intersection ``Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2))`` (paper, §3.2).

    Evaluated in a single streaming pass (value-key semi-join), which is
    set-theoretically identical to the double difference.
    """
    _check_compatible(first, second, "intersection")
    return _stream_set_operation(
        database,
        _physical.Intersection,
        first,
        second,
        name or f"intersect({first.name},{second.name})",
    )


# ------------------------------------------------------------ X cartesian prod


def molecule_product(
    database: Database,
    first: MoleculeType,
    second: MoleculeType,
    name: Optional[str] = None,
) -> MoleculeOperationResult:
    """Molecule-type cartesian product ``X(mt1, mt2)``.

    The paper omits the detailed definition (deferring to [Mi88a]); we
    implement the natural construction consistent with the closure
    requirement: a synthetic *pair* root atom type is created whose atoms are
    the concatenations of the two operand root atoms (exactly the atom-type
    cartesian product of the root types), with two synthetic link types
    connecting each pair atom to its two constituent root atoms.  The operand
    structures hang below unchanged, so the result is again a coherent,
    single-rooted DAG and every pair of operand molecules yields exactly one
    result molecule.
    """
    result_name = name or f"x({first.name},{second.name})"
    suffix = _fresh_suffix()
    pair_type_name = f"{result_name}_pair{suffix}"

    first_root_type = database.atyp(first.description.root)
    second_root_type = database.atyp(second.description.root)
    pair_description = first_root_type.description.union(
        second_root_type.description, first.description.root, second.description.root
    )
    pair_type = AtomType(pair_type_name, pair_description)
    left_link_name = f"{pair_type_name}-left"
    right_link_name = f"{pair_type_name}-right"
    left_link = LinkType(left_link_name, pair_type_name, first.description.root)
    right_link = LinkType(right_link_name, pair_type_name, second.description.root)

    names = list(pair_description.names)
    pair_molecule_inputs: List[Tuple[Atom, Molecule, Molecule]] = []
    for m1 in first:
        for m2 in second:
            pair_atom = m1.root_atom.concatenated(m2.root_atom, pair_type_name, names)
            pair_type.add(pair_atom)
            left_link.add(Link(left_link_name, pair_atom.identifier, m1.root_atom.identifier,
                               pair_type_name, first.description.root))
            right_link.add(Link(right_link_name, pair_atom.identifier, m2.root_atom.identifier,
                                pair_type_name, second.description.root))
            pair_molecule_inputs.append((pair_atom, m1, m2))

    combined_nodes = [pair_type_name]
    combined_edges: List[DirectedLink] = [
        DirectedLink(left_link_name, pair_type_name, first.description.root),
        DirectedLink(right_link_name, pair_type_name, second.description.root),
    ]

    def extend(description: MoleculeTypeDescription) -> None:
        for node in description.atom_type_names:
            if node not in combined_nodes:
                combined_nodes.append(node)
        for edge in description.directed_links:
            if edge not in combined_edges:
                combined_edges.append(edge)

    extend(resolve_description(database, first.description))
    extend(resolve_description(database, second.description))
    if first.description.root == second.description.root:
        raise AlgebraError(
            "molecule-type cartesian product of two types with the same root atom type "
            "is not supported; project or rename one operand first"
        )
    combined_description = MoleculeTypeDescription(combined_nodes, combined_edges)

    enlarged = database.enlarged([pair_type], [left_link, right_link])
    result_molecules: List[Molecule] = []
    for pair_atom, m1, m2 in pair_molecule_inputs:
        atoms = [pair_atom] + list(m1.atoms) + list(m2.atoms)
        links = (
            set(m1.links)
            | set(m2.links)
            | set(left_link.links_of(pair_atom.identifier))
            | set(right_link.links_of(pair_atom.identifier))
        )
        # Keep only the two synthetic links belonging to this pair atom.
        links = {
            link
            for link in links
            if link.link_type_name not in (left_link_name, right_link_name)
            or pair_atom.identifier in link.identifiers
        }
        result_molecules.append(Molecule(pair_atom, atoms, links, combined_description))

    result_set = ResultSet(result_name, combined_description, tuple(result_molecules))
    return propagate(result_set, enlarged)


# --------------------------------------------------------------------- facade


class MoleculeAlgebra:
    """Facade binding the molecule-type operations to an evolving database.

    The facade keeps the latest enlarged database so that operation chains
    (the whole point of algebraic closure, Theorem 3) read naturally::

        algebra = MoleculeAlgebra(db)
        mt_state = algebra.define("mt_state", ["state", "area", "edge", "point"],
                                  [("state-area", "state", "area"),
                                   ("area-edge", "area", "edge"),
                                   ("edge-point", "edge", "point")])
        big = algebra.restrict(mt_state, attr("hectare", "state") > 500)
    """

    def __init__(self, database: Database) -> None:
        self.database = database

    def _advance(self, result: MoleculeOperationResult) -> MoleculeOperationResult:
        self.database = result.database
        return result

    def define(
        self,
        name: str,
        atom_type_names: "Sequence[str] | MoleculeTypeDescription",
        directed_links: Sequence["DirectedLink | Tuple[str, str, str]"] = (),
    ) -> MoleculeType:
        """α — molecule-type definition over the current database."""
        return molecule_type_definition(self.database, name, atom_type_names, directed_links)

    def restrict(self, molecule_type, formula, name=None) -> MoleculeOperationResult:
        """Σ — molecule-type restriction."""
        return self._advance(molecule_restriction(self.database, molecule_type, formula, name))

    def project(self, molecule_type, atom_type_names, name=None) -> MoleculeOperationResult:
        """Π — molecule-type projection."""
        return self._advance(molecule_projection(self.database, molecule_type, atom_type_names, name))

    def union(self, first, second, name=None) -> MoleculeOperationResult:
        """Ω — molecule-type union."""
        return self._advance(molecule_union(self.database, first, second, name))

    def difference(self, first, second, name=None) -> MoleculeOperationResult:
        """Δ — molecule-type difference."""
        return self._advance(molecule_difference(self.database, first, second, name))

    def intersection(self, first, second, name=None) -> MoleculeOperationResult:
        """Ψ — derived molecule-type intersection."""
        return self._advance(molecule_intersection(self.database, first, second, name))

    def product(self, first, second, name=None) -> MoleculeOperationResult:
        """X — molecule-type cartesian product."""
        return self._advance(molecule_product(self.database, first, second, name))
