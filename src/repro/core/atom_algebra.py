"""The atom-type algebra π, σ, ×, ω, δ with link-type inheritance (Definition 4, Theorem 1).

The five atom-type operations mirror the relational algebra but operate on
atom types and — crucially — *inherit* the link types of their operands to the
result atom type, so that results "could be reused in subsequent operations"
(in particular in molecule derivation, which relies on the existence of link
types).  The paper defers the formal definition of inheritance to [Mi88a]; we
implement the natural construction:

* every link type incident to an operand atom type is copied under a fresh
  name, re-targeted at the result atom type, and its occurrence is rewritten
  so that each link now references the result atoms derived from the operand
  atoms it originally referenced;
* atoms produced by projection, restriction, union and difference keep their
  operand identity, so rewriting reduces to filtering;
* atoms produced by the cartesian product carry composite identities
  (``a1&a2``), and a link incident to ``a1`` is rewritten to every result atom
  whose provenance contains ``a1``.

Each operation returns an :class:`AtomOperationResult` carrying the result
atom type, the inherited link types, and the *enlarged database* — the
original database is never mutated, which is exactly the closure statement of
Theorem 1: every result is representable in ``DB*``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.database import Database
from repro.core.link import Link, LinkType
from repro.core.predicates import Formula, PredicateFormula
from repro.exceptions import (
    ProjectionError,
    RestrictionError,
    UnionCompatibilityError,
)

_result_counter = itertools.count(1)


def _fresh_name(prefix: str) -> str:
    """Generate a fresh result-type name (element of the naming set N)."""
    return f"{prefix}${next(_result_counter)}"


@dataclass
class AtomOperationResult:
    """The outcome of an atom-type operation.

    Attributes
    ----------
    atom_type:
        The freshly constructed result atom type.
    inherited_link_types:
        The link types inherited from the operands, already re-targeted at the
        result atom type.
    database:
        The enlarged database containing the operands, the result atom type
        and the inherited link types.
    provenance:
        Mapping from result-atom identifiers to the operand-atom identifiers
        they were derived from (used by molecule propagation and by tests).
    """

    atom_type: AtomType
    inherited_link_types: Tuple[LinkType, ...]
    database: Database
    provenance: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __iter__(self):
        # Allow ``atom_type, links, db = project(...)`` style unpacking.
        return iter((self.atom_type, self.inherited_link_types, self.database))


def _inherit_link_types(
    database: Database,
    operands: Sequence[AtomType],
    result: AtomType,
    origin_map: Dict[str, Set[str]],
) -> Tuple[LinkType, ...]:
    """Inherit every link type incident to *operands* onto *result*.

    *origin_map* maps each operand-atom identifier to the set of result-atom
    identifiers derived from it.  Links whose operand endpoint has no derived
    result atom simply disappear (e.g. the operand atom was filtered out by a
    restriction) — this is what keeps referential integrity intact with "no
    dangling references".
    """
    inherited: List[LinkType] = []
    operand_names = {operand.name for operand in operands}
    for operand in operands:
        for link_type in database.link_types_of(operand.name):
            other_type = link_type.other_type(operand.name)
            new_name = f"{link_type.name}~{result.name}"
            if link_type.is_reflexive:
                # Both endpoints map through the origin map.
                new_link_type = LinkType(new_name, result.name, result.name,
                                         cardinality=link_type.cardinality)
                for link in link_type:
                    ids = tuple(link.identifiers)
                    first_id = ids[0]
                    second_id = ids[-1]
                    for new_first in origin_map.get(first_id, ()):
                        for new_second in origin_map.get(second_id, ()):
                            new_link_type.add(Link(new_name, new_first, new_second,
                                                   result.name, result.name))
                inherited.append(new_link_type)
                continue
            new_link_type = LinkType(new_name, result.name, other_type,
                                     cardinality=link_type.cardinality)
            for link in link_type:
                operand_id = link.endpoint_of_type(operand.name)
                other_id = link.endpoint_of_type(other_type)
                if operand_id is None or other_id is None:
                    # Links created from bare identifiers: resolve by membership.
                    ids = tuple(link.identifiers)
                    if len(ids) == 1:
                        operand_id = other_id = ids[0]
                    else:
                        operand_id = ids[0] if ids[0] in origin_map else ids[1]
                        other_id = ids[1] if operand_id == ids[0] else ids[0]
                for new_id in origin_map.get(operand_id, ()):
                    new_link_type.add(Link(new_name, new_id, other_id, result.name, other_type))
            inherited.append(new_link_type)
    # Avoid duplicating link types when both operands of a binary operation
    # are the same atom type.
    unique: Dict[str, LinkType] = {}
    for link_type in inherited:
        unique.setdefault(link_type.name, link_type)
    return tuple(unique.values())


def _identity_origin_map(result: AtomType) -> Dict[str, Set[str]]:
    """Origin map for operations whose result atoms keep their operand identity."""
    return {atom.identifier: {atom.identifier} for atom in result}


def project(
    database: Database,
    atom_type: "AtomType | str",
    attributes: Sequence[str],
    name: Optional[str] = None,
) -> AtomOperationResult:
    """Atom-type projection ``π[proj(ad)](at)``.

    The result atom type carries only the attributes in *attributes*; result
    atoms keep the identity of their operand atoms (atoms remain "uniquely
    identifiable", so projection never collapses two distinct atoms).
    """
    operand = database.atyp(atom_type) if isinstance(atom_type, str) else atom_type
    missing = [a for a in attributes if a not in operand.description]
    if missing:
        raise ProjectionError(
            f"projection attributes {missing!r} not in atom type {operand.name!r}"
        )
    result_name = name or _fresh_name(f"proj({operand.name})")
    description = operand.description.project(list(attributes))
    result = AtomType(result_name, description)
    provenance: Dict[str, Tuple[str, ...]] = {}
    for atom in operand:
        projected = atom.projected(list(attributes), type_name=result_name)
        result.add(projected)
        provenance[projected.identifier] = (atom.identifier,)
    origin_map = _identity_origin_map(result)
    inherited = _inherit_link_types(database, [operand], result, origin_map)
    enlarged = database.enlarged([result], inherited)
    return AtomOperationResult(result, inherited, enlarged, provenance)


def restrict(
    database: Database,
    atom_type: "AtomType | str",
    formula: "Formula | callable",
    name: Optional[str] = None,
) -> AtomOperationResult:
    """Atom-type restriction ``σ[restr(ad)](at)``.

    *formula* is a qualification formula (see :mod:`repro.core.predicates`) or
    a plain callable over atoms.  The result keeps the operand's description
    and contains exactly the atoms satisfying the formula.
    """
    operand = database.atyp(atom_type) if isinstance(atom_type, str) else atom_type
    if callable(formula) and not isinstance(formula, Formula):
        formula = PredicateFormula(formula)
    if not isinstance(formula, Formula):
        raise RestrictionError(f"not a qualification formula: {formula!r}")
    result_name = name or _fresh_name(f"restr({operand.name})")
    result = AtomType(result_name, operand.description)
    provenance: Dict[str, Tuple[str, ...]] = {}
    for atom in operand:
        if formula.evaluate_atom(atom):
            kept = Atom(result_name, atom.values, identifier=atom.identifier)
            result.add(kept)
            provenance[kept.identifier] = (atom.identifier,)
    origin_map = _identity_origin_map(result)
    inherited = _inherit_link_types(database, [operand], result, origin_map)
    enlarged = database.enlarged([result], inherited)
    return AtomOperationResult(result, inherited, enlarged, provenance)


def product(
    database: Database,
    first: "AtomType | str",
    second: "AtomType | str",
    name: Optional[str] = None,
) -> AtomOperationResult:
    """Atom-type cartesian product ``×(at1, at2)``.

    The result description is the union of both operand descriptions (clashing
    attribute names are disambiguated with the operand name as prefix); each
    result atom is the concatenation ``a1 & a2`` and carries the composite
    identity ``id1&id2``.
    """
    left = database.atyp(first) if isinstance(first, str) else first
    right = database.atyp(second) if isinstance(second, str) else second
    result_name = name or _fresh_name(f"x({left.name},{right.name})")
    description = left.description.union(right.description, left.name, right.name)
    result = AtomType(result_name, description)
    provenance: Dict[str, Tuple[str, ...]] = {}
    origin_map: Dict[str, Set[str]] = {}
    names = list(description.names)
    for a1 in left:
        for a2 in right:
            combined = a1.concatenated(a2, result_name, names)
            result.add(combined)
            provenance[combined.identifier] = (a1.identifier, a2.identifier)
            origin_map.setdefault(a1.identifier, set()).add(combined.identifier)
            origin_map.setdefault(a2.identifier, set()).add(combined.identifier)
    inherited = _inherit_link_types(database, [left, right], result, origin_map)
    enlarged = database.enlarged([result], inherited)
    return AtomOperationResult(result, inherited, enlarged, provenance)


def _check_union_compatible(left: AtomType, right: AtomType, operation: str) -> None:
    if left.description != right.description:
        raise UnionCompatibilityError(
            f"{operation} requires identical descriptions; "
            f"{left.name!r} has {list(left.description.names)!r}, "
            f"{right.name!r} has {list(right.description.names)!r}"
        )


def union(
    database: Database,
    first: "AtomType | str",
    second: "AtomType | str",
    name: Optional[str] = None,
) -> AtomOperationResult:
    """Atom-type union ``ω(at1, at2)`` (descriptions must be identical)."""
    left = database.atyp(first) if isinstance(first, str) else first
    right = database.atyp(second) if isinstance(second, str) else second
    _check_union_compatible(left, right, "union")
    result_name = name or _fresh_name(f"union({left.name},{right.name})")
    result = AtomType(result_name, left.description)
    provenance: Dict[str, Tuple[str, ...]] = {}
    for operand in (left, right):
        for atom in operand:
            if atom.identifier in result:
                continue
            kept = Atom(result_name, atom.values, identifier=atom.identifier)
            result.add(kept)
            provenance[kept.identifier] = (atom.identifier,)
    origin_map = _identity_origin_map(result)
    inherited = _inherit_link_types(database, [left, right], result, origin_map)
    enlarged = database.enlarged([result], inherited)
    return AtomOperationResult(result, inherited, enlarged, provenance)


def difference(
    database: Database,
    first: "AtomType | str",
    second: "AtomType | str",
    name: Optional[str] = None,
) -> AtomOperationResult:
    """Atom-type difference ``δ(at1, at2)`` (descriptions must be identical)."""
    left = database.atyp(first) if isinstance(first, str) else first
    right = database.atyp(second) if isinstance(second, str) else second
    _check_union_compatible(left, right, "difference")
    result_name = name or _fresh_name(f"diff({left.name},{right.name})")
    result = AtomType(result_name, left.description)
    removed = set(right.identifiers())
    removed_values = {frozenset(atom.values.items()) for atom in right}
    provenance: Dict[str, Tuple[str, ...]] = {}
    for atom in left:
        if atom.identifier in removed:
            continue
        if frozenset(atom.values.items()) in removed_values:
            # Set difference is value-based when identities differ between the
            # two operands (e.g. the operands were loaded independently).
            continue
        kept = Atom(result_name, atom.values, identifier=atom.identifier)
        result.add(kept)
        provenance[kept.identifier] = (atom.identifier,)
    origin_map = _identity_origin_map(result)
    inherited = _inherit_link_types(database, [left], result, origin_map)
    enlarged = database.enlarged([result], inherited)
    return AtomOperationResult(result, inherited, enlarged, provenance)


def intersection(
    database: Database,
    first: "AtomType | str",
    second: "AtomType | str",
    name: Optional[str] = None,
) -> AtomOperationResult:
    """Derived atom-type intersection, expressed as ``δ(at1, δ(at1, at2))``.

    Provided for convenience and exercised by the closure benchmarks; the
    construction demonstrates operation concatenation over the enlarged
    database exactly as the paper does for the molecule algebra's Ψ.
    """
    left = database.atyp(first) if isinstance(first, str) else first
    step = difference(database, left, second)
    return difference(step.database, left, step.atom_type, name=name)


class AtomAlgebra:
    """Object-style facade binding the atom-type operations to one database.

    Every call returns the :class:`AtomOperationResult`; the facade keeps
    track of the latest enlarged database so that successive operations can be
    chained without threading the database by hand::

        algebra = AtomAlgebra(db)
        border = algebra.product("area", "edge", name="border")
        big = algebra.restrict(border.atom_type, attr("hectare") > 1000)
    """

    def __init__(self, database: Database) -> None:
        self.database = database

    def _advance(self, result: AtomOperationResult) -> AtomOperationResult:
        self.database = result.database
        return result

    def project(self, atom_type, attributes, name=None) -> AtomOperationResult:
        """π — see :func:`project`."""
        return self._advance(project(self.database, atom_type, attributes, name))

    def restrict(self, atom_type, formula, name=None) -> AtomOperationResult:
        """σ — see :func:`restrict`."""
        return self._advance(restrict(self.database, atom_type, formula, name))

    def product(self, first, second, name=None) -> AtomOperationResult:
        """× — see :func:`product`."""
        return self._advance(product(self.database, first, second, name))

    def union(self, first, second, name=None) -> AtomOperationResult:
        """ω — see :func:`union`."""
        return self._advance(union(self.database, first, second, name))

    def difference(self, first, second, name=None) -> AtomOperationResult:
        """δ — see :func:`difference`."""
        return self._advance(difference(self.database, first, second, name))

    def intersection(self, first, second, name=None) -> AtomOperationResult:
        """Derived intersection — see :func:`intersection`."""
        return self._advance(intersection(self.database, first, second, name))
