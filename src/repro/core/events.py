"""Change events over atom and link occurrences.

The write pipeline needs a single source of truth about *what changed*:
the storage engine maintains its snapshot, hash indexes and atom network
incrementally instead of rebuilding them, and it learns about mutations by
subscribing to the database they happen on.  Five event kinds cover every
occurrence-level mutation of the MAD model:

* ``atom_inserted`` / ``atom_deleted`` — an atom entered or left an atom
  type's occurrence;
* ``atom_modified`` — an atom's values were replaced in place (identity
  preserved, links untouched);
* ``link_connected`` / ``link_disconnected`` — a link entered or left a link
  type's occurrence.

Emission is deliberately synchronous and in mutation order: a listener that
replays the events against a copy of the pre-state reaches the post-state.
Types without listeners pay a single attribute check per mutation, so the
algebra layers (which create large numbers of transient result types) are
unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.atom import Atom
    from repro.core.link import Link

#: The five occurrence-level mutation kinds.
ATOM_INSERTED = "atom_inserted"
ATOM_DELETED = "atom_deleted"
ATOM_MODIFIED = "atom_modified"
LINK_CONNECTED = "link_connected"
LINK_DISCONNECTED = "link_disconnected"

EVENT_KINDS: Tuple[str, ...] = (
    ATOM_INSERTED,
    ATOM_DELETED,
    ATOM_MODIFIED,
    LINK_CONNECTED,
    LINK_DISCONNECTED,
)


@dataclass(frozen=True)
class ChangeEvent:
    """One occurrence-level mutation of an atom or link type.

    ``type_name`` names the atom type (atom events) or link type (link
    events).  ``atom`` carries the post-state for inserts/modifications and
    the removed atom for deletions; ``previous`` carries the pre-state of a
    modification; ``link`` carries the connected/disconnected link.
    """

    kind: str
    type_name: str
    atom: "Optional[Atom]" = None
    link: "Optional[Link]" = None
    previous: "Optional[Atom]" = None
    #: Version-clock stamp of the mutation (``None`` when the owning
    #: database has no versioning enabled).  Listeners that maintain
    #: generation-stamped caches synchronize on it.
    generation: "Optional[int]" = None

    def __repr__(self) -> str:
        subject = self.atom.identifier if self.atom is not None else self.link
        return f"ChangeEvent({self.kind}, {self.type_name!r}, {subject!r})"


Listener = Callable[[ChangeEvent], None]


class ChangeEmitter:
    """An ordered list of listeners attached to one atom or link type.

    Emitters are created lazily by the owning type; databases attach their
    subscribers to the emitters of every registered type.  ``emit`` is a
    no-op without listeners, which keeps the algebra layers' transient result
    types free of overhead.
    """

    __slots__ = ("_listeners",)

    def __init__(self) -> None:
        self._listeners: List[Listener] = []

    @property
    def listeners(self) -> Tuple[Listener, ...]:
        return tuple(self._listeners)

    def subscribe(self, listener: Listener) -> None:
        """Attach *listener*; repeated subscription is idempotent."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Listener) -> None:
        """Detach *listener* (no error when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def emit(self, event: ChangeEvent) -> None:
        """Deliver *event* to every listener in subscription order."""
        for listener in list(self._listeners):
            listener(event)

    def __len__(self) -> int:
        return len(self._listeners)
