"""Recursive molecule types (the §5 outlook, following [Schö89]).

The MAD model "allows for reflexive link types and for other cycles in the
database schema; e.g. for modeling a bill-of-material application.  These
cycles are normally queried in a recursive manner, for example asking for the
parts explosion (i.e. sub-component view) of a given part."  The paper defers
the full treatment to [Schö89]; this module implements recursive molecule
types at the level of detail the paper sketches:

* a **recursive molecule-type description** designates one atom type and one
  (typically reflexive) link type as the *recursion edge*, traversed in a
  fixed direction (e.g. super-component → sub-component);
* the **occurrence** contains, for each atom of the root type, the molecule
  obtained by expanding the recursion edge transitively until a fixpoint is
  reached (cycle-safe), optionally bounded by a maximum depth;
* each component atom records its recursion **level**, so that the parts
  explosion can be rendered level by level (the usual BOM report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.atom import Atom
from repro.core.database import Database
from repro.core.link import Link, LinkType
from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.exceptions import RecursionLimitError, SchemaError, UnknownNameError


@dataclass(frozen=True)
class RecursiveDescription:
    """Description of a recursive molecule type.

    Attributes
    ----------
    atom_type_name:
        The atom type being expanded (e.g. ``"part"``).
    link_type_name:
        The (usually reflexive) link type traversed transitively
        (e.g. ``"composition"``).
    direction:
        ``"down"`` expands from the first endpoint towards the second
        (sub-component view / parts explosion); ``"up"`` expands in the
        opposite direction (super-component view / where-used).  For
        non-reflexive recursion edges the direction selects which endpoint
        type is treated as parent.
    max_depth:
        Optional safety bound; ``None`` expands to the fixpoint.
    """

    atom_type_name: str
    link_type_name: str
    direction: str = "down"
    max_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.direction not in ("down", "up"):
            raise SchemaError(f"recursion direction must be 'down' or 'up', got {self.direction!r}")


class RecursiveMolecule(Molecule):
    """A molecule produced by recursive expansion; records per-atom recursion levels."""

    __slots__ = ("levels",)

    def __init__(
        self,
        root_atom: Atom,
        atoms: Iterable[Atom],
        links: Iterable[Link],
        levels: Dict[str, int],
        description: Optional[MoleculeTypeDescription] = None,
    ) -> None:
        super().__init__(root_atom, atoms, links, description)
        self.levels = dict(levels)

    def atoms_at_level(self, level: int) -> Tuple[Atom, ...]:
        """Return the component atoms first reached at recursion depth *level*."""
        return tuple(atom for atom in self.atoms if self.levels.get(atom.identifier) == level)

    def depth(self) -> int:
        """The maximum recursion level present in the molecule."""
        return max(self.levels.values(), default=0)

    def explosion(self) -> List[Tuple[int, Atom]]:
        """Return the parts explosion as ``(level, atom)`` pairs, breadth-first."""
        ordered = sorted(self.atoms, key=lambda atom: (self.levels.get(atom.identifier, 0), atom.identifier))
        return [(self.levels.get(atom.identifier, 0), atom) for atom in ordered]


def _ordered_endpoints(link_type: LinkType, link: Link) -> Tuple[str, str]:
    """Return the (first_type_endpoint, second_type_endpoint) identifiers of *link*."""
    return link_type._ordered_ids(link)  # noqa: SLF001 - intentional internal reuse


def expand_recursive(
    database: Database,
    description: RecursiveDescription,
    root_atom: Atom,
) -> RecursiveMolecule:
    """Expand the recursion edge transitively from *root_atom* (cycle-safe fixpoint)."""
    atom_type = database.atyp(description.atom_type_name)
    link_type = database.ltyp(description.link_type_name)
    if not link_type.connects_type(description.atom_type_name):
        raise SchemaError(
            f"link type {description.link_type_name!r} does not connect atom type "
            f"{description.atom_type_name!r}"
        )

    levels: Dict[str, int] = {root_atom.identifier: 0}
    atoms: Dict[str, Atom] = {root_atom.identifier: root_atom}
    links: Set[Link] = set()
    frontier: List[str] = [root_atom.identifier]
    level = 0
    while frontier:
        if description.max_depth is not None and level >= description.max_depth:
            break
        level += 1
        next_frontier: List[str] = []
        for identifier in frontier:
            for link in link_type.links_of(identifier):
                first_id, second_id = _ordered_endpoints(link_type, link)
                if description.direction == "down":
                    parent_id, child_id = first_id, second_id
                else:
                    parent_id, child_id = second_id, first_id
                if parent_id != identifier:
                    continue
                child = atom_type.get(child_id)
                if child is None:
                    other_name = link_type.other_type(description.atom_type_name)
                    child = database.atyp(other_name).get(child_id) if database.has_atom_type(other_name) else None
                if child is None:
                    continue
                links.add(link)
                if child.identifier not in atoms:
                    atoms[child.identifier] = child
                    levels[child.identifier] = level
                    next_frontier.append(child.identifier)
        frontier = next_frontier
        if description.max_depth is None and level > database.atom_count() + 1:
            raise RecursionLimitError(
                "recursive expansion did not reach a fixpoint within the database size bound"
            )
    return RecursiveMolecule(root_atom, atoms.values(), links, levels)


def recursive_molecule_type(
    database: Database,
    name: str,
    description: RecursiveDescription,
    roots: Optional[Iterable[Atom]] = None,
) -> MoleculeType:
    """Derive a recursive molecule type: one recursively expanded molecule per root atom.

    *roots* defaults to every atom of the recursion atom type; passing an
    explicit subset answers queries like "the parts explosion of part P".
    """
    atom_type = database.atyp(description.atom_type_name)
    if roots is None:
        roots = tuple(atom_type)
    base_description = MoleculeTypeDescription([description.atom_type_name], [])
    molecules = [expand_recursive(database, description, root) for root in roots]
    for molecule in molecules:
        molecule.description = base_description
    return MoleculeType(name, base_description, molecules)


def transitive_closure_size(
    database: Database,
    description: RecursiveDescription,
) -> Dict[str, int]:
    """Return the size of the transitive closure reached from every root atom.

    Used by the recursive-BOM benchmark to compare against the iterative
    relational closure computation.
    """
    atom_type = database.atyp(description.atom_type_name)
    sizes: Dict[str, int] = {}
    for root in atom_type:
        molecule = expand_recursive(database, description, root)
        sizes[root.identifier] = len(molecule) - 1  # exclude the root itself
    return sizes
