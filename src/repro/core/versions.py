"""Multi-version concurrency control: version chains, snapshots and commit log.

The MAD model's molecule views are *dynamic*: they are derived on demand from
the shared atom networks.  That only composes with concurrent writers when a
long-running reader can keep deriving against a stable database state while
the head moves on.  This module provides the machinery:

* :class:`VersioningState` — the per-database concurrency state: a monotonic
  generation clock (every occurrence-level mutation ticks it), a refcounted
  **pin registry** (readers pin the generation they want to keep seeing), the
  **commit log** used for first-committer-wins conflict detection, and the
  registry of active transactions;
* :class:`VersionChain` — the copy-on-write history of one atom identifier
  (payloads are :class:`~repro.core.atom.Atom` objects or :data:`ABSENT`) or
  one link (payloads are :data:`PRESENT`/:data:`ABSENT`), newest last, with a
  base entry at generation 0 capturing the pre-history state;
* :class:`Snapshot` — a visibility predicate: generation stamp plus the set
  of generations written by the owning transaction (so a transaction reads
  its own uncommitted writes on top of its pinned snapshot);
* :class:`AtomTypeView` / :class:`LinkTypeView` / :class:`DatabaseView` —
  read-only facades that answer every read the executor issues
  (``get``/iteration/``links_of``/…) *as of* a snapshot, so molecule
  derivation and recursive expansion run unchanged against a pinned
  generation.

Version chains are recorded **only while at least one pin is active**: an
unpinned database pays one integer tick per mutation and nothing else.  This
is sound because a pin taken at generation *P* guarantees every later
mutation is recorded, and the first recorded mutation of an object captures
its pre-state (the state at *P*) as the chain's base entry.  The garbage
collector (:meth:`VersioningState.truncation_horizon` driving the types'
``truncate_versions``) drops every entry no live pin or active transaction
can reach.

**Thread safety.**  :class:`VersioningState` is the engine-level mutex of the
MVCC substrate: one re-entrant :attr:`VersioningState.lock` guards the
generation clock, the pin registry, the commit log, the active-transaction
registry and every conflict check, so pins, commits and conflict validation
are race-proof across threads.  Snapshot *reads* stay lock-free: resolved
version chains are append-only (truncation swaps in a fresh list, never
mutates one a reader may hold), and :class:`Snapshot` visibility is computed
over immutable ints.  Writer attribution (``current_writer`` and the
generation sink behind :meth:`begin_tracking`/:meth:`end_tracking`) is
thread-local, so concurrent writers on different threads never steal each
other's generations or change events.  See DESIGN.md "Threading model" for
the full lock order.
"""

from __future__ import annotations

import threading

from repro.analysis.runtime import make_rlock
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import StorageError, TransactionConflictError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.atom import Atom, AtomType
    from repro.core.database import Database
    from repro.core.link import Link, LinkType


class _Sentinel:
    """A named singleton marker used as a version-chain payload."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name}>"


#: Payload marking "object not present" (deleted atom / disconnected link).
ABSENT = _Sentinel("ABSENT")
#: Payload marking "link present" (link chains carry no further state).
PRESENT = _Sentinel("PRESENT")

#: Conflict-key tags (atom writes vs. link writes).
ATOM_KEY = "atom"
LINK_KEY = "link"

WriteKey = Tuple[str, str, object]


def atom_key(type_name: str, identifier: str) -> WriteKey:
    """The conflict-detection key of one atom occurrence entry."""
    return (ATOM_KEY, type_name, identifier)


def link_key(link_type_name: str, identifiers: "FrozenSet[str]") -> WriteKey:
    """The conflict-detection key of one link occurrence entry."""
    return (LINK_KEY, link_type_name, identifiers)


class Snapshot:
    """A visibility predicate over version generations.

    A plain reader snapshot sees every generation up to :attr:`generation`,
    except the *excluded* ones — generations written by transactions that
    were still uncommitted when the snapshot was taken (no dirty reads).  A
    transaction's snapshot additionally sees the generations the transaction
    itself produced (*own*), so qualifying reads observe the transaction's
    uncommitted writes — *own* is the transaction's live set, shared by
    reference, and grows as the transaction writes.

    Use :meth:`VersioningState.make_snapshot` to build one with the current
    exclusion set.
    """

    __slots__ = ("generation", "own", "excluded")

    def __init__(
        self,
        generation: int,
        own: Optional[Set[int]] = None,
        excluded: "FrozenSet[int]" = frozenset(),
    ) -> None:
        self.generation = generation
        self.own: "Set[int] | FrozenSet[int]" = own if own is not None else frozenset()
        self.excluded = excluded

    def visible(self, generation: int) -> bool:
        """``True`` when a version stamped *generation* is visible here."""
        if generation in self.own:
            return True
        return generation <= self.generation and generation not in self.excluded

    def __repr__(self) -> str:
        return (
            f"Snapshot(generation={self.generation}, own={len(self.own)}, "
            f"excluded={len(self.excluded)})"
        )


class VersionChain:
    """The ordered version history of one object (atom or link).

    Entries are ``(generation, payload)`` pairs, oldest first; the entry at
    generation 0 is the *base* — the object's state before its first recorded
    mutation.  :meth:`at` resolves the newest entry visible to a snapshot.
    """

    __slots__ = ("_entries",)

    def __init__(self, base: object) -> None:
        self._entries: List[Tuple[int, object]] = [(0, base)]

    def record(self, generation: int, payload: object) -> None:
        """Append one version (mutations arrive in generation order)."""
        self._entries.append((generation, payload))

    def at(self, snapshot: Snapshot) -> object:
        """The newest payload visible to *snapshot* (the base is always visible)."""
        for generation, payload in reversed(self._entries):
            if snapshot.visible(generation):
                return payload
        return ABSENT  # unreachable while a base entry exists

    def head(self) -> object:
        """The newest payload (what an unversioned read of the chain would see)."""
        return self._entries[-1][1]

    def truncate(self, horizon: int) -> int:
        """Drop entries no pin at or after *horizon* can reach; return the count.

        Every entry newer than *horizon* is kept, plus the newest entry at or
        below it (it is the state a pin at *horizon* resolves to).
        """
        keep_from = 0
        for position, (generation, _payload) in enumerate(self._entries):
            if generation <= horizon:
                keep_from = position
        if keep_from == 0:
            return 0
        self._entries = self._entries[keep_from:]
        return keep_from

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VersionChain({self._entries!r})"


class VersioningState:
    """Per-database concurrency state: clock, pins, commit log, transactions."""

    def __init__(self, start_generation: int = 0) -> None:
        #: The engine-level mutex: clock, pins, commit log, active
        #: transactions and conflict checks are all guarded by this one
        #: re-entrant lock (see the module docstring for the lock order).
        self.lock = make_rlock("VersioningState.lock")
        #: Monotonic generation counter; every occurrence mutation ticks it.
        self.generation = start_generation
        #: Refcounted pins per generation (readers + session transactions).
        self._pins: Dict[int, int] = {}  # guarded-by: VersioningState.lock
        #: ``(commit_generation, write_keys)`` of every relevant commit.
        self._commit_log: List[Tuple[int, FrozenSet[WriteKey]]] = []  # guarded-by: VersioningState.lock
        #: Transactions currently between ``begin`` and ``commit``/``rollback``.
        self.active_transactions: "Set[object]" = set()
        #: ``True`` once the engine owning this state has been fenced by a
        #: replica promotion: transactions refuse to begin *and* to commit
        #: (an in-flight transaction aborts at its commit point), so no
        #: write can ever follow the promoted follower's final catch-up
        #: slice.  Set under :attr:`lock` by ``PrimaEngine.fence()``.
        self.fenced = False
        #: Cumulative number of version entries dropped by garbage collection.
        self.versions_collected = 0
        #: Callbacks ``(transaction, committed)`` fired when a transaction
        #: finishes — at commit *immediately after* the commit-log append
        #: (the WAL emits its record here, atomically with the MVCC commit),
        #: and at rollback/conflict abort with ``committed=False`` (the WAL
        #: discards the buffered events — redo-only logging).
        self.transaction_hooks: "List[Callable[[object, bool], None]]" = []
        #: Per-thread writer attribution: which transaction is inside a
        #: tracked mutation block on *this* thread, and the sink collecting
        #: the generations the thread ticks there.  Thread-local because two
        #: writer threads must never attribute each other's mutations.
        self._local = threading.local()

    @property
    def current_writer(self) -> Optional[object]:
        """The transaction inside a tracked mutation block on this thread.

        Set by :meth:`begin_tracking` (driven by
        :meth:`Transaction._tracked`).  Listeners use it to attribute a
        change event to the transaction that produced it (the engine's WAL
        buffers events per writer until that writer commits)."""
        return getattr(self._local, "writer", None)

    @current_writer.setter
    def current_writer(self, writer: Optional[object]) -> None:
        self._local.writer = writer

    def begin_tracking(
        self, writer: object, own: "Optional[Set[int]]" = None
    ) -> Tuple[object, Optional[List[int]], Optional[object]]:
        """Attribute this thread's mutations to *writer*; returns a token.

        Every :meth:`tick` on this thread is additionally collected into a
        fresh sink until :meth:`end_tracking` is called with the token —
        the exact write-generation set of the block, immune to generations
        ticked concurrently by other threads.  With *own* (the writer's
        live write-generation set) each tick joins the set *inside* the
        clock's critical section: a snapshot built between a mutation and
        the block's exit already sees the generation in ``own`` and
        excludes it — no dirty-read window."""
        local = self._local
        token = (
            getattr(local, "writer", None),
            getattr(local, "ticks", None),
            getattr(local, "own", None),
        )
        local.writer = writer
        local.ticks = []
        local.own = own
        return token

    def end_tracking(
        self, token: Tuple[object, Optional[List[int]], Optional[object]]
    ) -> List[int]:
        """Stop tracking; returns the generations this thread ticked.

        Nested blocks roll their ticks up into the enclosing sink so an
        outer tracked block still observes everything."""
        local = self._local
        ticks = list(getattr(local, "ticks", None) or ())
        local.writer, local.ticks, local.own = token
        if token[1] is not None:
            token[1].extend(ticks)
        return ticks

    def notify_transaction_finished(self, txn: object, committed: bool) -> None:
        """Fire every transaction hook (commit: right after the log append)."""
        for hook in list(self.transaction_hooks):
            hook(txn, committed)

    # ------------------------------------------------------------------ clock

    def tick(self) -> int:
        """Advance and return the generation clock (one tick per mutation).

        Inside a tracked block the fresh generation joins the writer's
        ``own`` set while the lock is still held — :meth:`make_snapshot`
        (also under the lock) therefore always sees a complete ``own`` set
        and can exclude every in-flight uncommitted write.
        """
        local = self._local
        with self.lock:
            self.generation += 1
            generation = self.generation
            own = getattr(local, "own", None)
            if own is not None:
                own.add(generation)
        sink = getattr(local, "ticks", None)
        if sink is not None:
            sink.append(generation)
        return generation

    @property
    def recording(self) -> bool:
        """``True`` while any pin **or transaction** is active.

        Pins need history so their snapshots can resolve pre-states.  Active
        transactions need it too: a reader may pin *mid-transaction*, and the
        exclusion set of :meth:`make_snapshot` can only hide the uncommitted
        writes if their pre-states were chained.  Outside both, mutations pay
        one integer tick and record nothing (transaction-local chains are
        collected as soon as the last transaction/pin ends).

        Read lock-free on the mutation path: container truthiness is atomic,
        and the pin/tick interleaving is safe either way — a pin that lands
        after a mutation's recording check necessarily pins a generation at
        or above that mutation (both run under :attr:`lock`), so the head it
        falls back to *is* the pinned state."""
        return bool(self._pins) or bool(self.active_transactions)

    # ------------------------------------------------------------------- pins

    def pin(self, generation: Optional[int] = None) -> int:
        """Pin *generation* (default: current) and return it (refcounted).

        Rejects generations the registry cannot serve exactly: future ones
        (nothing to read yet) and ones below the retention floor — the
        truncation horizon while pins/transactions hold history, or the
        current generation when nothing does (no chains are retained then,
        so *any* older generation would silently read head state).  A
        successful pin therefore always yields an exact snapshot.
        """
        with self.lock:
            pinned = self.generation if generation is None else generation
            if pinned > self.generation:
                raise StorageError(
                    f"cannot pin future generation {pinned} (current is {self.generation})"
                )
            horizon = self.truncation_horizon()
            floor = self.generation if horizon is None else horizon
            if pinned < floor:
                raise StorageError(
                    f"cannot pin generation {pinned}: version history below "
                    f"generation {floor} is not retained (it was truncated, "
                    "or never recorded)"
                )
            self._pins[pinned] = self._pins.get(pinned, 0) + 1
            return pinned

    def release(self, generation: int) -> None:
        """Release one pin on *generation*.

        Over-releasing — a generation that was never pinned, or whose pins
        were all released already — raises :class:`StorageError`: under
        threads a silent no-op here masks refcount races and lets the
        garbage collector free chains a live reader still needs.  (The
        engine-level :class:`~repro.storage.engine.SnapshotHandle` stays
        idempotent — it guards its own released flag before calling down.)
        """
        with self.lock:
            count = self._pins.get(generation, 0)
            if count == 0:
                raise StorageError(
                    f"over-release of generation {generation}: no active pin "
                    "(every release must pair with exactly one pin)"
                )
            if count == 1:
                del self._pins[generation]
            else:
                self._pins[generation] = count - 1

    def oldest_pinned(self) -> Optional[int]:
        """The oldest pinned generation, or ``None`` when nothing is pinned."""
        with self.lock:
            return min(self._pins) if self._pins else None

    @property
    def pins_active(self) -> int:
        """The number of active pins (across all generations)."""
        with self.lock:
            return sum(self._pins.values())

    # -------------------------------------------------------------- conflicts

    def check_write(self, key: WriteKey, txn: object) -> None:
        """Raise :class:`TransactionConflictError` when writing *key* is unsafe.

        Two conditions abort the writer (the standard snapshot-isolation
        write rules, applied eagerly so undo logs of interleaved transactions
        never entangle):

        * another *active* transaction already wrote the key — write-write
          conflict with an uncommitted peer;
        * a transaction that committed after *txn* began wrote the key — the
          first committer has already won.

        Runs under :attr:`lock` so two threads claiming the same key race
        the lock, not each other: exactly one of them sees the other's
        write-set entry.
        """
        with self.lock:
            for other in self.active_transactions:
                if other is not txn and key in getattr(other, "write_keys", ()):
                    raise TransactionConflictError(
                        f"write-write conflict on {key!r} with a concurrent transaction"
                    )
            start = getattr(txn, "start_generation", 0)
            conflicting = self.committed_after(start, (key,))
        if conflicting is not None:
            raise TransactionConflictError(
                f"{conflicting!r} was modified by a transaction that committed "
                "after this one began (first committer wins)"
            )

    def committed_after(
        self, generation: int, keys: Iterable[WriteKey]
    ) -> Optional[WriteKey]:
        """The first of *keys* committed after *generation*, or ``None``."""
        wanted = set(keys)
        if not wanted:
            return None
        with self.lock:
            for commit_generation, committed in reversed(self._commit_log):
                if commit_generation <= generation:
                    break
                overlap = wanted & committed
                if overlap:
                    return next(iter(overlap))
        return None

    def record_commit(self, keys: Iterable[WriteKey]) -> None:
        """Append one commit-log entry, stamped with a fresh generation.

        The commit must occupy its own position in the generation order: a
        transaction that began *after* the writes but *before* this commit
        has ``start_generation`` at least the last write's stamp, and only a
        strictly newer commit stamp makes :meth:`committed_after` catch the
        overlap (first committer wins).
        """
        frozen = frozenset(keys)
        if frozen:
            with self.lock:
                self._commit_log.append((self.tick(), frozen))

    def make_snapshot(
        self, generation: Optional[int] = None, own: Optional[Set[int]] = None
    ) -> Snapshot:
        """Build a snapshot at *generation* (default: current).

        Generations written by transactions still active now are excluded —
        their writes are uncommitted, and a reader pinning mid-flight must
        not observe them (no dirty reads).  *own* (a transaction's live
        write-generation set) is passed through and never excluded.
        """
        with self.lock:
            pinned = self.generation if generation is None else generation
            excluded: Set[int] = set()
            for txn in self.active_transactions:
                gens = getattr(txn, "own_generations", None)
                if gens is None or gens is own:
                    continue
                excluded.update(g for g in gens if g <= pinned)
            return Snapshot(pinned, own=own, excluded=frozenset(excluded))

    def prune_commit_log(self) -> None:
        """Drop commit-log entries no active transaction can conflict with."""
        with self.lock:
            if not self.active_transactions:
                self._commit_log.clear()
                return
            horizon = min(
                getattr(txn, "start_generation", 0) for txn in self.active_transactions
            )
            keep_from = 0
            for position, (commit_generation, _keys) in enumerate(self._commit_log):
                if commit_generation <= horizon:
                    keep_from = position + 1
            if keep_from:
                del self._commit_log[:keep_from]

    # ------------------------------------------------------------ maintenance

    def truncation_horizon(self) -> Optional[int]:
        """The oldest generation any reader may still need (``None`` = none).

        Bounded by the oldest pin **and** the oldest active transaction's
        start generation: a transaction's pre-states must survive until it
        finishes, because a reader pinning mid-flight excludes the writer's
        generations and resolves those pre-states through the chains.
        (Truncating them on an unrelated pin release would silently hand
        such a reader the writer's uncommitted values.)
        """
        with self.lock:
            candidates = list(self._pins)
            candidates.extend(
                getattr(txn, "start_generation", 0)
                for txn in self.active_transactions
            )
            return min(candidates) if candidates else None

    @property
    def commit_log_length(self) -> int:
        with self.lock:
            return len(self._commit_log)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VersioningState(generation={self.generation}, pins={self.pins_active}, "
            f"active={len(self.active_transactions)}, log={len(self._commit_log)})"
        )


# --------------------------------------------------------------------- views


class AtomTypeView:
    """A read-only, snapshot-consistent facade over one :class:`AtomType`.

    Iteration is sorted by identifier — a pinned reader must produce
    byte-identical results run after run, and the head dictionaries reorder
    under concurrent deletes/re-inserts.

    Thread safety: point reads (``get``) are lock-free — single dict lookups
    with string keys are atomic, and chain resolution walks immutable entry
    lists.  Iteration copies the identifier sets under the type's head lock
    (one brief critical section) and then resolves each identifier lock-free.
    """

    __slots__ = ("_type", "_snapshot")

    def __init__(self, atom_type: "AtomType", snapshot: Snapshot) -> None:
        self._type = atom_type
        self._snapshot = snapshot

    @property
    def name(self) -> str:
        return self._type.name

    @property
    def description(self):
        return self._type.description

    def get(self, identifier: str) -> "Optional[Atom]":
        chain = self._type._versions.get(identifier)
        if chain is None:
            return self._type._atoms.get(identifier)
        payload = chain.at(self._snapshot)
        return None if payload is ABSENT else payload  # type: ignore[return-value]

    def __iter__(self) -> "Iterator[Atom]":
        for identifier in self._type._known_identifiers():
            atom = self.get(identifier)
            if atom is not None:
                yield atom

    @property
    def occurrence(self) -> "Tuple[Atom, ...]":
        return tuple(self)

    def identifiers(self) -> Tuple[str, ...]:
        return tuple(atom.identifier for atom in self)

    def __contains__(self, atom: object) -> bool:
        identifier = getattr(atom, "identifier", atom)
        return self.get(identifier) is not None  # type: ignore[arg-type]

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomTypeView({self._type.name!r}@{self._snapshot.generation})"


class LinkTypeView:
    """A read-only, snapshot-consistent facade over one :class:`LinkType`.

    Thread safety: occurrence iteration and incident-link lookups copy the
    head/historic containers under the type's head lock (links hash through
    Python code, so even building a set from them is interruptible by a
    concurrent writer); visibility resolution over the copies is lock-free.
    """

    __slots__ = ("_type", "_snapshot")

    def __init__(self, link_type: "LinkType", snapshot: Snapshot) -> None:
        self._type = link_type
        self._snapshot = snapshot

    # Schema-level accessors delegate: the schema is not versioned.

    @property
    def name(self) -> str:
        return self._type.name

    @property
    def description(self):
        return self._type.description

    @property
    def atom_type_names(self) -> Tuple[str, str]:
        return self._type.atom_type_names

    @property
    def cardinality(self):
        return self._type.cardinality

    @property
    def is_reflexive(self) -> bool:
        return self._type.is_reflexive

    def connects_type(self, type_name: str) -> bool:
        return self._type.connects_type(type_name)

    def other_type(self, type_name: str) -> str:
        return self._type.other_type(type_name)

    def _ordered_ids(self, link: "Link") -> Tuple[str, str]:
        return self._type._ordered_ids(link)

    # Occurrence-level reads resolve through the version chains.

    def _link_visible(self, link: "Link") -> bool:
        chain = self._type._versions.get(link)
        if chain is None:
            return link in self._type._links
        return chain.at(self._snapshot) is PRESENT

    def links_of(self, atom: "Atom | str") -> "FrozenSet[Link]":
        identifier = getattr(atom, "identifier", atom)
        head, historic = self._type._incident_links(identifier)
        result = [link for link in head if self._link_visible(link)]
        head_set = set(head)
        for link in historic:
            if link not in head_set and self._link_visible(link):
                result.append(link)
        return frozenset(result)

    def partners_of(self, atom: "Atom | str") -> FrozenSet[str]:
        identifier = getattr(atom, "identifier", atom)
        return frozenset(link.other(identifier) for link in self.links_of(identifier))

    def __iter__(self) -> "Iterator[Link]":
        head, versioned = self._type._known_links()
        seen: Set["Link"] = set()
        for link in head:
            seen.add(link)
            if self._link_visible(link):
                yield link
        for link in versioned:
            if link not in seen and self._link_visible(link):
                yield link

    @property
    def occurrence(self) -> "FrozenSet[Link]":
        return frozenset(self)

    def __contains__(self, link: object) -> bool:
        if link in self._type._links or link in self._type._versions:
            return self._link_visible(link)  # type: ignore[arg-type]
        return False

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkTypeView({self._type.name!r}@{self._snapshot.generation})"


class DatabaseView:
    """A read-only facade presenting a :class:`Database` as of one snapshot.

    Schema lookups (``atyp``/``ltyp``/…) resolve against the live schema —
    DDL is not versioned — but every returned type is wrapped in its
    snapshot-consistent view, so the executor, molecule derivation and
    recursive expansion all read occurrence state as of the snapshot without
    any changes of their own.
    """

    __slots__ = ("_database", "_snapshot", "_atom_count")

    def __init__(self, database: "Database", snapshot: Snapshot) -> None:
        self._database = database
        self._snapshot = snapshot
        self._atom_count: Optional[int] = None

    @property
    def name(self) -> str:
        return self._database.name

    @property
    def snapshot(self) -> Snapshot:
        return self._snapshot

    # ---------------------------------------------------------------- lookup

    def atyp(self, name: "str | Iterable[str]"):
        if isinstance(name, str):
            return AtomTypeView(self._database.atyp(name), self._snapshot)
        return tuple(self.atyp(single) for single in name)

    def ltyp(self, name: "str | Iterable"):
        if isinstance(name, str):
            return LinkTypeView(self._database.ltyp(name), self._snapshot)
        return tuple(self.ltyp(single) for single in name)

    def has_atom_type(self, name: str) -> bool:
        return self._database.has_atom_type(name)

    def has_link_type(self, name: str) -> bool:
        return self._database.has_link_type(name)

    @property
    def atom_types(self) -> Tuple[AtomTypeView, ...]:
        return tuple(
            AtomTypeView(atom_type, self._snapshot)
            for atom_type in self._database.atom_types
        )

    @property
    def link_types(self) -> Tuple[LinkTypeView, ...]:
        return tuple(
            LinkTypeView(link_type, self._snapshot)
            for link_type in self._database.link_types
        )

    @property
    def atom_type_names(self) -> Tuple[str, ...]:
        return self._database.atom_type_names

    @property
    def link_type_names(self) -> Tuple[str, ...]:
        return self._database.link_type_names

    def link_types_of(self, atom_type) -> Tuple[LinkTypeView, ...]:
        name = getattr(atom_type, "name", atom_type)
        return tuple(
            LinkTypeView(link_type, self._snapshot)
            for link_type in self._database.link_types_of(name)
        )

    def link_types_between(self, first: str, second: str) -> Tuple[LinkTypeView, ...]:
        return tuple(
            LinkTypeView(link_type, self._snapshot)
            for link_type in self._database.link_types_between(first, second)
        )

    # ------------------------------------------------------------ statistics

    def find_atom(self, identifier: str) -> "Optional[Atom]":
        for atom_type in self.atom_types:
            atom = atom_type.get(identifier)
            if atom is not None:
                return atom
        return None

    def atom_count(self) -> int:
        # Cached per view: a snapshot's contents never change, and recursive
        # expansion consults this bound once per level.
        if self._atom_count is None:
            self._atom_count = sum(len(atom_type) for atom_type in self.atom_types)
        return self._atom_count

    def link_count(self) -> int:
        return sum(len(link_type) for link_type in self.link_types)

    def __contains__(self, name: object) -> bool:
        return name in self._database

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseView({self._database.name!r}@{self._snapshot.generation})"
