"""Attribute descriptions, data types, and domains (Definition 1 substrate).

The paper states that "a valid atom-type description consists of a set of
attribute descriptions, and a valid atom-type occurrence is a subset of the
description's domain, which is the cartesian product of the attribute
domains used".  This module supplies those building blocks:

* :class:`DataType` — the primitive data types supported by attributes,
* :class:`AttributeDescription` — a named, typed attribute, optionally
  restricted to an explicit enumeration of allowed values,
* :class:`AtomTypeDescription` — an ordered collection of attribute
  descriptions (the ``ad`` component of an atom type).

Values are validated with :meth:`AttributeDescription.validate`, which is the
executable form of "belongs to the attribute domain".
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AttributeError_, DomainError, DuplicateNameError


class DataType(enum.Enum):
    """Primitive data types available for attributes.

    The paper only requires "attributes of various data types"; we provide the
    types needed by the geographic example (names, measures, coordinates) plus
    a few generally useful ones.
    """

    INTEGER = "integer"
    REAL = "real"
    STRING = "string"
    BOOLEAN = "boolean"
    IDENTIFIER = "identifier"
    POINT2D = "point2d"
    ANY = "any"

    def accepts(self, value: object) -> bool:
        """Return ``True`` when *value* is a member of this data type's domain."""
        if value is None:
            return True
        if self is DataType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.REAL:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.STRING:
            return isinstance(value, str)
        if self is DataType.BOOLEAN:
            return isinstance(value, bool)
        if self is DataType.IDENTIFIER:
            return isinstance(value, (str, int)) and not isinstance(value, bool)
        if self is DataType.POINT2D:
            return (
                isinstance(value, tuple)
                and len(value) == 2
                and all(isinstance(c, (int, float)) and not isinstance(c, bool) for c in value)
            )
        return True  # DataType.ANY

    def coerce(self, value: object) -> object:
        """Coerce *value* into the canonical representation for this type.

        Integers offered to ``REAL`` attributes become floats, lists offered to
        ``POINT2D`` become tuples.  Values that cannot be represented raise
        :class:`DomainError`.
        """
        if value is None:
            return None
        if self is DataType.REAL and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self is DataType.POINT2D and isinstance(value, list):
            value = tuple(value)
        if not self.accepts(value):
            raise DomainError(f"value {value!r} is not a member of domain {self.value}")
        return value


class AttributeDescription:
    """A single attribute of an atom type: a name, a data type, and a domain.

    Parameters
    ----------
    name:
        The attribute name; must be a non-empty identifier.
    data_type:
        Member of :class:`DataType` (or its string value).
    allowed_values:
        Optional explicit domain enumeration.  When given, values must both
        satisfy the data type and be contained in this set.
    required:
        When ``True`` the attribute may not be ``None`` in any atom.
    doc:
        Free-form documentation string carried in the catalog.
    """

    __slots__ = ("name", "data_type", "allowed_values", "required", "doc")

    def __init__(
        self,
        name: str,
        data_type: "DataType | str" = DataType.ANY,
        allowed_values: Optional[Iterable[object]] = None,
        required: bool = False,
        doc: str = "",
    ) -> None:
        # Dotted prefixes are permitted because the cartesian product prefixes
        # clashing attribute names with their operand name ("area.name"), and
        # operand names of derived atom types may contain arbitrary symbols.
        if not isinstance(name, str) or not name or name != name.strip() or "\n" in name:
            raise AttributeError_(f"invalid attribute name: {name!r}")
        if isinstance(data_type, str):
            try:
                data_type = DataType(data_type)
            except ValueError as exc:
                raise AttributeError_(f"unknown data type: {data_type!r}") from exc
        self.name = name
        self.data_type = data_type
        self.allowed_values = frozenset(allowed_values) if allowed_values is not None else None
        self.required = bool(required)
        self.doc = doc

    def validate(self, value: object) -> object:
        """Validate and canonicalize *value* against this attribute's domain."""
        if value is None:
            if self.required:
                raise DomainError(f"attribute {self.name!r} is required and may not be None")
            return None
        value = self.data_type.coerce(value)
        if self.allowed_values is not None and value not in self.allowed_values:
            raise DomainError(
                f"value {value!r} is not in the enumerated domain of attribute {self.name!r}"
            )
        return value

    def renamed(self, new_name: str) -> "AttributeDescription":
        """Return a copy of this description carrying *new_name*."""
        return AttributeDescription(
            new_name,
            self.data_type,
            self.allowed_values,
            self.required,
            self.doc,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeDescription):
            return NotImplemented
        return (
            self.name == other.name
            and self.data_type == other.data_type
            and self.allowed_values == other.allowed_values
            and self.required == other.required
        )

    def __hash__(self) -> int:
        return hash((self.name, self.data_type, self.allowed_values, self.required))

    def __repr__(self) -> str:
        return f"AttributeDescription({self.name!r}, {self.data_type.value!r})"


class AtomTypeDescription:
    """The ``ad`` component of an atom type: an ordered set of attribute descriptions.

    Attribute order is preserved (it defines the column order of formatted
    output and of the relational mapping) but equality is order-insensitive,
    matching the paper's set-based formulation.
    """

    __slots__ = ("_attributes", "_by_name")

    def __init__(self, attributes: Sequence["AttributeDescription | str"] = ()) -> None:
        self._attributes: Tuple[AttributeDescription, ...] = ()
        self._by_name: dict = {}
        normalized = []
        for attribute in attributes:
            if isinstance(attribute, str):
                attribute = AttributeDescription(attribute)
            if not isinstance(attribute, AttributeDescription):
                raise AttributeError_(
                    f"expected AttributeDescription or str, got {type(attribute).__name__}"
                )
            if attribute.name in self._by_name:
                raise DuplicateNameError(f"duplicate attribute name: {attribute.name!r}")
            self._by_name[attribute.name] = attribute
            normalized.append(attribute)
        self._attributes = tuple(normalized)

    @property
    def attributes(self) -> Tuple[AttributeDescription, ...]:
        """The attribute descriptions, in definition order."""
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        """The attribute names, in definition order."""
        return tuple(attribute.name for attribute in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[AttributeDescription]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> AttributeDescription:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise AttributeError_(f"no attribute named {name!r} in description") from exc

    def get(self, name: str) -> Optional[AttributeDescription]:
        """Return the attribute description named *name*, or ``None``."""
        return self._by_name.get(name)

    def validate_values(self, values: Mapping[str, object]) -> "dict[str, object]":
        """Validate an attribute-value mapping against this description.

        Unknown attribute names raise :class:`AttributeError_`; missing
        attributes default to ``None`` (subject to ``required``).  The return
        value is a complete, canonicalized mapping covering every attribute.
        """
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise AttributeError_(
                f"unknown attributes {sorted(unknown)!r}; description has {list(self.names)!r}"
            )
        validated = {}
        for attribute in self._attributes:
            validated[attribute.name] = attribute.validate(values.get(attribute.name))
        return validated

    def project(self, names: Sequence[str]) -> "AtomTypeDescription":
        """Return a new description containing only the attributes in *names*.

        This is ``proj(ad)`` of Definition 4; *names* must be a subset of the
        existing attribute names.
        """
        missing = [name for name in names if name not in self._by_name]
        if missing:
            raise AttributeError_(f"cannot project onto unknown attributes {missing!r}")
        return AtomTypeDescription([self._by_name[name] for name in names])

    def union(self, other: "AtomTypeDescription", prefix_self: str = "", prefix_other: str = "") -> "AtomTypeDescription":
        """Concatenate two descriptions (``adx = ad1 ∪ ad2`` of the cartesian product).

        Definition 4 assumes operand descriptions are "in pairs disjoint"; when
        they are not, callers provide prefixes to disambiguate clashing names
        (the usual dotted-name convention).
        """
        merged = []
        other_names = set(other.names)
        for attribute in self._attributes:
            if attribute.name in other_names and prefix_self:
                merged.append(attribute.renamed(f"{prefix_self}.{attribute.name}"))
            else:
                merged.append(attribute)
        taken = {attribute.name for attribute in merged}
        for attribute in other._attributes:
            name = attribute.name
            if name in taken:
                if not prefix_other:
                    raise DuplicateNameError(
                        f"attribute {name!r} occurs in both operands; provide prefixes"
                    )
                name = f"{prefix_other}.{name}"
            merged.append(attribute.renamed(name) if name != attribute.name else attribute)
            taken.add(name)
        return AtomTypeDescription(merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomTypeDescription):
            return NotImplemented
        return frozenset(self._attributes) == frozenset(other._attributes)

    def __hash__(self) -> int:
        return hash(frozenset(self._attributes))

    def __repr__(self) -> str:
        return f"AtomTypeDescription({list(self.names)!r})"


def make_description(spec: "AtomTypeDescription | Sequence | Mapping") -> AtomTypeDescription:
    """Build an :class:`AtomTypeDescription` from a convenient specification.

    Accepted forms:

    * an existing :class:`AtomTypeDescription` (returned unchanged),
    * a sequence of attribute names and/or :class:`AttributeDescription`
      objects,
    * a mapping ``{name: DataType | str}``.
    """
    if isinstance(spec, AtomTypeDescription):
        return spec
    if isinstance(spec, Mapping):
        return AtomTypeDescription(
            [AttributeDescription(name, data_type) for name, data_type in spec.items()]
        )
    return AtomTypeDescription(list(spec))
