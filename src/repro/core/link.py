"""Links and link types (Definition 2).

A **link type** is the triple ``lt = <lname, ld, lv>`` where ``ld`` names the
two atom types it connects (possibly the same one — a *reflexive* link type)
and ``lv`` is a set of **links**, each an *unsorted pair* of atoms drawn from
the two atom types.  Links are the MAD model's explicit, bidirectional
representation of relationships; they replace the relational model's
foreign-key/primary-key connections and make referential integrity a property
maintained by the model itself ("there are no dangling references").

Link types may carry an optional cardinality restriction (the paper notes it
"is even possible to control cardinality restrictions specified in an
extended link-type definition"); see :class:`Cardinality`.
"""

from __future__ import annotations

import enum
from repro.analysis.runtime import make_rlock
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.events import (
    LINK_CONNECTED,
    LINK_DISCONNECTED,
    ChangeEmitter,
    ChangeEvent,
)
from repro.core.versions import ABSENT, PRESENT, VersionChain, VersioningState
from repro.exceptions import CardinalityError, DanglingLinkError, SchemaError


class Cardinality(enum.Enum):
    """Cardinality restriction of a link type, interpreted on the (from, to) pair.

    ``ONE_TO_ONE`` — each atom of either type participates in at most one link.
    ``ONE_TO_MANY`` — each atom of the *second* type links to at most one atom
    of the first type (the classical 1:n).
    ``MANY_TO_MANY`` — unrestricted (the default).
    """

    ONE_TO_ONE = "1:1"
    ONE_TO_MANY = "1:n"
    MANY_TO_MANY = "n:m"


class Link:
    """An unsorted pair of atom identifiers, tagged with its link type.

    Because links are unsorted pairs, ``Link(lt, a, b) == Link(lt, b, a)``.
    For reflexive link types the two endpoints may refer to distinct atoms of
    the same type; a self-loop (both endpoints the same atom) is permitted but
    rarely useful.
    """

    __slots__ = ("link_type_name", "_pair", "_typed_pair", "_given")

    def __init__(
        self,
        link_type_name: str,
        first: "Atom | str",
        second: "Atom | str",
        first_type: Optional[str] = None,
        second_type: Optional[str] = None,
    ) -> None:
        first_id = first.identifier if isinstance(first, Atom) else first
        second_id = second.identifier if isinstance(second, Atom) else second
        first_tn = first.type_name if isinstance(first, Atom) else first_type
        second_tn = second.type_name if isinstance(second, Atom) else second_type
        self.link_type_name = link_type_name
        self._pair: FrozenSet[str] = frozenset((first_id, second_id))
        # The construction order is preserved: for reflexive link types it is
        # the only way to tell the two roles apart (e.g. super-component vs.
        # sub-component on a 'composition' link).  Equality stays unordered,
        # matching the paper's "unsorted pair".
        self._given: Tuple[str, str] = (first_id, second_id)
        # Keep a canonical ordered view (sorted by (type, id)) for display and
        # for endpoint lookups; semantics remain unsorted.
        self._typed_pair: Tuple[Tuple[Optional[str], str], ...] = tuple(
            sorted(((first_tn, first_id), (second_tn, second_id)), key=lambda pair: (pair[0] or "", pair[1]))
        )

    @property
    def identifiers(self) -> FrozenSet[str]:
        """The unsorted pair of atom identifiers this link connects."""
        return self._pair

    @property
    def endpoints(self) -> Tuple[Tuple[Optional[str], str], ...]:
        """Canonically ordered ``((type, id), (type, id))`` view of the endpoints."""
        return self._typed_pair

    @property
    def given_order(self) -> Tuple[str, str]:
        """The endpoint identifiers in construction order (first, second).

        Needed to recover the two roles of a reflexive link type; for
        non-reflexive link types the endpoint atom types already disambiguate.
        """
        return self._given

    def connects(self, identifier: str) -> bool:
        """Return ``True`` when *identifier* is one of the two endpoints."""
        return identifier in self._pair

    def other(self, identifier: str) -> str:
        """Return the endpoint opposite to *identifier*.

        For self-loops the same identifier is returned.
        """
        if identifier not in self._pair:
            raise DanglingLinkError(f"atom {identifier!r} is not an endpoint of {self!r}")
        if len(self._pair) == 1:
            return identifier
        (first, second) = tuple(self._pair)
        return second if first == identifier else first

    def endpoint_of_type(self, type_name: str) -> Optional[str]:
        """Return the endpoint identifier whose atom type is *type_name*, if any."""
        for endpoint_type, identifier in self._typed_pair:
            if endpoint_type == type_name:
                return identifier
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Link):
            return NotImplemented
        return self.link_type_name == other.link_type_name and self._pair == other._pair

    def __hash__(self) -> int:
        return hash((self.link_type_name, self._pair))

    def __repr__(self) -> str:
        ids = " -- ".join(identifier for _, identifier in self._typed_pair)
        return f"Link({self.link_type_name}: {ids})"


class LinkType:
    """The triple ``<lname, ld, lv>`` of Definition 2.

    Parameters
    ----------
    name:
        The link-type name (unique within a database).
    first_type, second_type:
        Names of the two connected atom types.  Equal names define a reflexive
        link type (e.g. the ``composition`` link type on ``parts`` in the
        bill-of-material example).
    cardinality:
        Optional :class:`Cardinality` restriction, enforced by :meth:`add`.
    """

    __slots__ = (
        "_name",
        "_first_type",
        "_second_type",
        "_links",
        "_by_atom",
        "cardinality",
        "_emitter",
        "_versioning",
        "_versions",
        "_historic_by_atom",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        first_type: "AtomType | str",
        second_type: "AtomType | str",
        links: Iterable[Link] = (),
        cardinality: Cardinality = Cardinality.MANY_TO_MANY,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"invalid link-type name: {name!r}")
        self._name = name
        self._first_type = first_type.name if isinstance(first_type, AtomType) else first_type
        self._second_type = second_type.name if isinstance(second_type, AtomType) else second_type
        self.cardinality = cardinality
        self._links: Set[Link] = set()  # guarded-by: LinkType._lock
        self._by_atom: Dict[str, Set[Link]] = {}  # guarded-by: LinkType._lock
        self._emitter: Optional[ChangeEmitter] = None
        self._versioning: Optional[VersioningState] = None
        self._versions: Dict[Link, VersionChain] = {}  # guarded-by: LinkType._lock
        self._historic_by_atom: Dict[str, Set[Link]] = {}  # guarded-by: LinkType._lock
        #: Head lock: mutations hold it so cardinality check, occurrence
        #: swap, chain record and event emission are one atomic unit per
        #: type; snapshot views take it briefly to copy link collections
        #: (links hash through Python code — unguarded iteration over the
        #: occurrence set can observe a concurrent resize).
        self._lock = make_rlock("LinkType._lock")
        for link in links:
            self.add(link)

    @property
    def events(self) -> ChangeEmitter:
        """The type's change emitter (created on first access)."""
        if self._emitter is None:
            self._emitter = ChangeEmitter()
        return self._emitter

    def _emit(self, kind: str, link: Link, generation: Optional[int] = None) -> None:
        if self._emitter is not None and len(self._emitter):
            self._emitter.emit(
                ChangeEvent(kind, self._name, link=link, generation=generation)
            )

    # -- versioning ----------------------------------------------------------

    def attach_versioning(self, state: VersioningState) -> None:
        """Tie this type's mutations to a database's version clock.

        While the state is *recording* (a pin is active) connect/disconnect
        history is kept per link — :class:`repro.core.versions.LinkTypeView`
        resolves it so pinned readers traverse the occurrence as of their
        snapshot.
        """
        self._versioning = state

    # requires: LinkType._lock
    def _version_mutation(
        self, link: Link, payload: object, base: object, swap
    ) -> Optional[int]:
        """Stamp one head mutation; chain-record and apply it atomically.

        Mirrors :meth:`AtomType._version_mutation`: tick, recording
        decision, chain record and the occurrence swap (*swap*) form one
        critical section of the registry lock, so a concurrent pin lands
        wholly before (pre-state chained) or wholly after (new head is the
        pinned state) — never in between.
        """
        state = self._versioning
        if state is None:
            swap()
            return None
        with state.lock:
            generation = state.tick()
            if state.recording:
                chain = self._versions.get(link)
                if chain is None:
                    chain = VersionChain(base)
                    self._versions[link] = chain
                chain.record(generation, payload)
                for identifier in link.identifiers:
                    self._historic_by_atom.setdefault(identifier, set()).add(link)
            swap()
        return generation

    def truncate_versions(self, horizon: Optional[int]) -> Tuple[int, int]:
        """Garbage-collect link version chains; returns ``(live, collected)``."""
        with self._lock:
            if horizon is None:
                collected = sum(len(chain) for chain in self._versions.values())
                self._versions.clear()
                self._historic_by_atom.clear()
                return 0, collected
            collected = 0
            live = 0
            dead = []
            for link, chain in self._versions.items():
                collected += chain.truncate(horizon)
                if len(chain) == 1:
                    payload = chain.head()
                    at_head = link in self._links
                    if (payload is PRESENT) == at_head:
                        dead.append(link)
                        collected += 1
                        continue
                live += len(chain)
            for link in dead:
                del self._versions[link]
                for identifier in link.identifiers:
                    bucket = self._historic_by_atom.get(identifier)
                    if bucket is not None:
                        bucket.discard(link)
                        if not bucket:
                            del self._historic_by_atom[identifier]
            return live, collected

    def collect_versions(self) -> Tuple[int, int]:
        """Garbage-collect with a freshly read horizon; ``(live, collected)``.

        Mirrors :meth:`AtomType.collect_versions`: the horizon is re-read
        under the head lock so truncation can never race a pin registered
        moments earlier.
        """
        with self._lock:
            state = self._versioning
            horizon = state.truncation_horizon() if state is not None else None
            return self.truncate_versions(horizon)

    def version_statistics(self) -> Tuple[int, int]:
        """``(chains, entries)`` currently held for this type."""
        with self._lock:
            return len(self._versions), sum(
                len(chain) for chain in self._versions.values()
            )

    def _known_links(self) -> "Tuple[List[Link], List[Link]]":
        """Copies of the head occurrence and versioned links (for views)."""
        with self._lock:
            return list(self._links), list(self._versions)

    def _incident_links(self, identifier: str) -> "Tuple[List[Link], List[Link]]":
        """Copies of the head and historic links incident to one atom."""
        with self._lock:
            return (
                list(self._by_atom.get(identifier, ())),
                list(self._historic_by_atom.get(identifier, ())),
            )

    # -- accessor functions of Definition 2 --------------------------------

    @property
    def name(self) -> str:
        """``nam(lt)`` — the link-type name."""
        return self._name

    @property
    def description(self) -> FrozenSet[str]:
        """``des(lt)`` — the (unordered) pair of connected atom-type names."""
        return frozenset((self._first_type, self._second_type))

    @property
    def atom_type_names(self) -> Tuple[str, str]:
        """The connected atom-type names as an ordered pair (definition order)."""
        return (self._first_type, self._second_type)

    @property
    def occurrence(self) -> FrozenSet[Link]:
        """``ext(lt)`` — the link-type occurrence."""
        return frozenset(self._links)

    @property
    def is_reflexive(self) -> bool:
        """``True`` when both connected atom types are the same."""
        return self._first_type == self._second_type

    def connects_type(self, type_name: str) -> bool:
        """Return ``True`` when this link type has *type_name* as an endpoint type."""
        return type_name in (self._first_type, self._second_type)

    def other_type(self, type_name: str) -> str:
        """Return the atom-type name opposite to *type_name* (itself when reflexive)."""
        if type_name == self._first_type:
            return self._second_type
        if type_name == self._second_type:
            return self._first_type
        raise SchemaError(f"atom type {type_name!r} is not connected by link type {self._name!r}")

    # -- occurrence management ---------------------------------------------

    def add(self, link: "Link | Tuple", second: "Atom | str | None" = None) -> Link:
        """Insert a link into the occurrence.

        Accepts either a prepared :class:`Link`, a 2-tuple of atoms or
        identifiers, or two positional atom arguments.  Cardinality
        restrictions are enforced here.
        """
        if not isinstance(link, Link):
            if second is not None:
                first = link
            else:
                first, second = link  # type: ignore[misc]
            link = Link(
                self._name,
                first,
                second,
                first_type=self._first_type if not isinstance(first, Atom) else None,
                second_type=self._second_type if not isinstance(second, Atom) else None,
            )
        if link.link_type_name != self._name:
            link = Link(self._name, *tuple(link.identifiers) * (2 if len(link.identifiers) == 1 else 1))
        with self._lock:
            if link in self._links:
                return link
            self._check_cardinality(link)

            def connect_head(link: Link = link) -> None:
                self._links.add(link)
                for identifier in link.identifiers:
                    self._by_atom.setdefault(identifier, set()).add(link)

            generation = self._version_mutation(link, PRESENT, ABSENT, connect_head)
            self._emit(LINK_CONNECTED, link, generation=generation)
        return link

    def connect(self, first: "Atom | str", second: "Atom | str") -> Link:
        """Convenience wrapper for :meth:`add` with two endpoints."""
        return self.add(first, second)

    def _check_cardinality(self, link: Link) -> None:
        if self.cardinality is Cardinality.MANY_TO_MANY:
            return
        for endpoint_type, identifier in link.endpoints:
            existing = self._by_atom.get(identifier, set())
            if not existing:
                continue
            if self.cardinality is Cardinality.ONE_TO_ONE:
                raise CardinalityError(
                    f"link type {self._name!r} is 1:1 but atom {identifier!r} already participates"
                )
            if self.cardinality is Cardinality.ONE_TO_MANY and endpoint_type == self._second_type:
                raise CardinalityError(
                    f"link type {self._name!r} is 1:n but atom {identifier!r} of type "
                    f"{self._second_type!r} already has a parent link"
                )

    def remove(self, link: Link) -> None:
        """Remove *link* from the occurrence (no error when absent)."""
        with self._lock:
            if link not in self._links:
                return

            def disconnect_head(link: Link = link) -> None:
                self._links.discard(link)
                for identifier in link.identifiers:
                    bucket = self._by_atom.get(identifier)
                    if bucket is not None:
                        bucket.discard(link)
                        if not bucket:
                            del self._by_atom[identifier]

            generation = self._version_mutation(link, ABSENT, PRESENT, disconnect_head)
            self._emit(LINK_DISCONNECTED, link, generation=generation)

    def remove_atom(self, identifier: str) -> int:
        """Remove every link incident to atom *identifier*; return the count removed."""
        with self._lock:
            links = list(self._by_atom.get(identifier, ()))
            for link in links:
                self.remove(link)
            return len(links)

    def links_of(self, atom: "Atom | str") -> FrozenSet[Link]:
        """Return all links incident to *atom*."""
        identifier = atom.identifier if isinstance(atom, Atom) else atom
        with self._lock:
            return frozenset(self._by_atom.get(identifier, set()))

    def partners_of(self, atom: "Atom | str") -> FrozenSet[str]:
        """Return the identifiers linked to *atom* through this link type."""
        identifier = atom.identifier if isinstance(atom, Atom) else atom
        with self._lock:
            return frozenset(
                link.other(identifier) for link in self._by_atom.get(identifier, set())
            )

    def __contains__(self, link: object) -> bool:
        return link in self._links

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    def empty_copy(self, name: Optional[str] = None) -> "LinkType":
        """Return a link type with the same description and an empty occurrence."""
        return LinkType(name or self._name, self._first_type, self._second_type, cardinality=self.cardinality)

    def copy(self, name: Optional[str] = None) -> "LinkType":
        """Return a copy of this link type including its occurrence."""
        clone = self.empty_copy(name)
        for link in self._links:
            clone.add(Link(clone.name, *self._ordered_ids(link)))
        return clone

    def restricted_to(
        self,
        name: str,
        allowed_first: Set[str],
        allowed_second: Set[str],
        first_type: Optional[str] = None,
        second_type: Optional[str] = None,
    ) -> "LinkType":
        """Return a renamed copy keeping only links whose endpoints are allowed.

        This is the core of link-type *inheritance* (Definition 4 discussion)
        and of result *propagation* (Definition 9): the structure of the link
        type is preserved while the occurrence is filtered to the atoms that
        survive in the result atom types.
        """
        clone = LinkType(
            name,
            first_type or self._first_type,
            second_type or self._second_type,
            cardinality=self.cardinality,
        )
        for link in self._links:
            first_id, second_id = self._ordered_ids(link)
            if first_id in allowed_first and second_id in allowed_second:
                clone.add(Link(name, first_id, second_id, clone._first_type, clone._second_type))
            elif self.is_reflexive and second_id in allowed_first and first_id in allowed_second:
                clone.add(Link(name, second_id, first_id, clone._first_type, clone._second_type))
        return clone

    def _ordered_ids(self, link: Link) -> Tuple[str, str]:
        """Return the link's endpoint identifiers ordered as (first_type, second_type)."""
        if self.is_reflexive:
            return link.given_order
        first_id = link.endpoint_of_type(self._first_type)
        second_id = link.endpoint_of_type(self._second_type)
        if first_id is None or second_id is None:
            # Fall back to raw pair order for links created from bare identifiers.
            pair = tuple(link.identifiers)
            if len(pair) == 1:
                return (pair[0], pair[0])
            return (pair[0], pair[1])
        return (first_id, second_id)

    def validate_against(self, first: AtomType, second: AtomType) -> None:
        """Check referential integrity: every link endpoint exists in its atom type.

        Raises :class:`DanglingLinkError` when a link references a missing atom.
        """
        for link in self._links:
            first_id, second_id = self._ordered_ids(link)
            if first_id not in first and second_id not in first and not self.is_reflexive:
                raise DanglingLinkError(
                    f"link {link!r} has no endpoint in atom type {first.name!r}"
                )
            if self.is_reflexive:
                for identifier in (first_id, second_id):
                    if identifier not in first:
                        raise DanglingLinkError(
                            f"link {link!r} references missing atom {identifier!r}"
                        )
            else:
                if first_id not in first or second_id not in second:
                    # Endpoints may be stored in either order; try the swap.
                    if not (second_id in first and first_id in second):
                        raise DanglingLinkError(
                            f"link {link!r} references atoms missing from "
                            f"{first.name!r}/{second.name!r}"
                        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkType):
            return NotImplemented
        return (
            self._name == other._name
            and self.description == other.description
            and self.occurrence == other.occurrence
        )

    def __hash__(self) -> int:
        return hash(self._name)

    def __repr__(self) -> str:
        return (
            f"LinkType({self._name!r}, {self._first_type!r} -- {self._second_type!r}, "
            f"links={len(self)})"
        )
