"""The MAD model core: atoms, links, databases, the atom-type algebra and the molecule algebra.

This package is the paper's primary contribution.  The layering follows the
paper's chapter 3:

* :mod:`repro.core.attributes`, :mod:`repro.core.atom`, :mod:`repro.core.link`,
  :mod:`repro.core.database` — the basic data structures (Definitions 1–3),
* :mod:`repro.core.atom_algebra`, :mod:`repro.core.predicates` — the atom-type
  operations π, σ, ×, ω, δ with link inheritance (Definition 4, Theorem 1),
* :mod:`repro.core.graph`, :mod:`repro.core.molecule`,
  :mod:`repro.core.derivation`, :mod:`repro.core.molecule_algebra` — molecule
  types and the molecule algebra α, Σ, Π, X, Ω, Δ, Ψ (Definitions 5–10,
  Theorems 2–3),
* :mod:`repro.core.recursion` — recursive molecule types (§5 outlook).
"""

from repro.core.atom import Atom, AtomType, reset_surrogate_counter
from repro.core.atom_algebra import (
    AtomAlgebra,
    AtomOperationResult,
    difference,
    intersection,
    product,
    project,
    restrict,
    union,
)
from repro.core.attributes import AttributeDescription, AtomTypeDescription, DataType
from repro.core.database import Database, formal_specification
from repro.core.events import ChangeEmitter, ChangeEvent
from repro.core.derivation import (
    derive_molecule,
    derive_occurrence,
    hierarchical_join_statistics,
    is_total,
    mv_graph,
)
from repro.core.graph import DirectedLink, TypeGraph, md_graph
from repro.core.link import Cardinality, Link, LinkType
from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.core.molecule_algebra import (
    MoleculeAlgebra,
    MoleculeOperationResult,
    ResultSet,
    molecule_difference,
    molecule_intersection,
    molecule_product,
    molecule_projection,
    molecule_restriction,
    molecule_type_definition,
    molecule_union,
    propagate,
)
from repro.core.predicates import (
    And,
    AttributeRef,
    Comparison,
    FalseFormula,
    Formula,
    Not,
    Or,
    PredicateFormula,
    TrueFormula,
    attr,
    conjoin,
    split_conjunction,
)
from repro.core.versions import (
    DatabaseView,
    Snapshot,
    VersionChain,
    VersioningState,
)
from repro.core.recursion import (
    RecursiveDescription,
    RecursiveMolecule,
    expand_recursive,
    recursive_molecule_type,
    transitive_closure_size,
)

__all__ = [
    "Atom",
    "AtomType",
    "AtomAlgebra",
    "AtomOperationResult",
    "AttributeDescription",
    "AtomTypeDescription",
    "And",
    "AttributeRef",
    "Cardinality",
    "Comparison",
    "ChangeEmitter",
    "ChangeEvent",
    "Database",
    "DataType",
    "DirectedLink",
    "FalseFormula",
    "Formula",
    "Link",
    "LinkType",
    "Molecule",
    "MoleculeAlgebra",
    "MoleculeOperationResult",
    "MoleculeType",
    "MoleculeTypeDescription",
    "Not",
    "Or",
    "PredicateFormula",
    "DatabaseView",
    "RecursiveDescription",
    "RecursiveMolecule",
    "ResultSet",
    "TrueFormula",
    "Snapshot",
    "TypeGraph",
    "VersionChain",
    "VersioningState",
    "attr",
    "conjoin",
    "derive_molecule",
    "derive_occurrence",
    "difference",
    "expand_recursive",
    "formal_specification",
    "hierarchical_join_statistics",
    "intersection",
    "is_total",
    "md_graph",
    "molecule_difference",
    "molecule_intersection",
    "molecule_product",
    "molecule_projection",
    "molecule_restriction",
    "molecule_type_definition",
    "molecule_union",
    "mv_graph",
    "product",
    "project",
    "propagate",
    "recursive_molecule_type",
    "reset_surrogate_counter",
    "restrict",
    "split_conjunction",
    "transitive_closure_size",
    "union",
]
