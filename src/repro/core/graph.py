"""Type-graph utilities: the ``md_graph`` predicate and graph helpers (Definition 5).

A molecule-type description is a graph whose nodes are atom types and whose
edges are *directed uses* of (nondirectional) link types.  The predicate
``md_graph`` demands that this graph is **directed, acyclic, coherent**
(weakly connected) **and has exactly one root** (a single node without
incoming edges, from which every node is reachable).  The same predicate is
applied — at the occurrence level — to every molecule (``mv_graph``), so these
helpers are shared by the description layer and the derivation engine.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import MoleculeGraphError


class DirectedLink:
    """A directed use ``dl = <lname, from, to>`` of a nondirectional link type.

    The function ``ltyp`` maps the directed use back to its underlying
    symmetric link type; the direction only matters for molecule derivation
    (parent → child traversal order), which is what enables the symmetric use
    of the same link type in different molecule types (Fig. 2).
    """

    __slots__ = ("link_type_name", "source", "target")

    def __init__(self, link_type_name: str, source: str, target: str) -> None:
        self.link_type_name = link_type_name
        self.source = source
        self.target = target

    def reversed(self) -> "DirectedLink":
        """Return the same link-type use traversed in the opposite direction."""
        return DirectedLink(self.link_type_name, self.target, self.source)

    def as_tuple(self) -> Tuple[str, str, str]:
        """Return the ``(lname, source, target)`` triple of Definition 5."""
        return (self.link_type_name, self.source, self.target)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedLink):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return f"<{self.link_type_name}: {self.source} -> {self.target}>"


class TypeGraph:
    """A directed graph over atom-type names used by molecule-type descriptions."""

    def __init__(self, nodes: Iterable[str], edges: Iterable[DirectedLink]) -> None:
        self.nodes: Tuple[str, ...] = tuple(dict.fromkeys(nodes))
        self.edges: Tuple[DirectedLink, ...] = tuple(edges)
        self._children: Dict[str, List[DirectedLink]] = {node: [] for node in self.nodes}
        self._parents: Dict[str, List[DirectedLink]] = {node: [] for node in self.nodes}
        for edge in self.edges:
            if edge.source not in self._children or edge.target not in self._children:
                raise MoleculeGraphError(
                    f"edge {edge!r} references a node outside the graph's node set"
                )
            self._children[edge.source].append(edge)
            self._parents[edge.target].append(edge)

    # ------------------------------------------------------------ structure

    def children_edges(self, node: str) -> Tuple[DirectedLink, ...]:
        """Outgoing edges of *node*."""
        return tuple(self._children.get(node, ()))

    def parent_edges(self, node: str) -> Tuple[DirectedLink, ...]:
        """Incoming edges of *node*."""
        return tuple(self._parents.get(node, ()))

    def roots(self) -> Tuple[str, ...]:
        """Nodes without incoming edges."""
        return tuple(node for node in self.nodes if not self._parents[node])

    def leaves(self) -> Tuple[str, ...]:
        """Nodes without outgoing edges."""
        return tuple(node for node in self.nodes if not self._children[node])

    def is_acyclic(self) -> bool:
        """Return ``True`` when the directed graph has no cycle (Kahn's algorithm)."""
        indegree = {node: len(self._parents[node]) for node in self.nodes}
        queue = [node for node, degree in indegree.items() if degree == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for edge in self._children[node]:
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    queue.append(edge.target)
        return visited == len(self.nodes)

    def is_coherent(self) -> bool:
        """Return ``True`` when the underlying undirected graph is connected."""
        if not self.nodes:
            return False
        if len(self.nodes) == 1:
            return True
        neighbours: Dict[str, Set[str]] = {node: set() for node in self.nodes}
        for edge in self.edges:
            neighbours[edge.source].add(edge.target)
            neighbours[edge.target].add(edge.source)
        seen = {self.nodes[0]}
        frontier = [self.nodes[0]]
        while frontier:
            node = frontier.pop()
            for neighbour in neighbours[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.nodes)

    def topological_order(self) -> Tuple[str, ...]:
        """Return a topological ordering of the nodes (root first).

        Raises :class:`MoleculeGraphError` when the graph is cyclic.
        """
        indegree = {node: len(self._parents[node]) for node in self.nodes}
        order: List[str] = []
        queue = [node for node in self.nodes if indegree[node] == 0]
        while queue:
            node = queue.pop(0)
            order.append(node)
            for edge in self._children[node]:
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    queue.append(edge.target)
        if len(order) != len(self.nodes):
            raise MoleculeGraphError("type graph contains a cycle; no topological order exists")
        return tuple(order)

    def reachable_from(self, node: str) -> FrozenSet[str]:
        """Return all nodes reachable from *node* along directed edges (incl. itself)."""
        seen = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for edge in self._children.get(current, ()):
                if edge.target not in seen:
                    seen.add(edge.target)
                    frontier.append(edge.target)
        return frozenset(seen)

    def subgraph(self, nodes: Iterable[str]) -> "TypeGraph":
        """Return the induced subgraph over *nodes*."""
        keep = set(nodes)
        return TypeGraph(
            [node for node in self.nodes if node in keep],
            [edge for edge in self.edges if edge.source in keep and edge.target in keep],
        )

    def __repr__(self) -> str:
        return f"TypeGraph(nodes={list(self.nodes)!r}, edges={len(self.edges)})"


def md_graph(nodes: Sequence[str], edges: Sequence[DirectedLink]) -> Tuple[bool, str]:
    """The ``md_graph`` predicate of Definition 5, with a diagnostic message.

    Returns ``(True, "")`` when the graph over *nodes*/*edges* is directed,
    acyclic, coherent and has exactly one root; otherwise ``(False, reason)``.
    A single node without edges is a valid (degenerate) molecule structure.
    """
    if not nodes:
        return False, "a molecule-type description needs at least one atom type"
    if len(set(nodes)) != len(list(nodes)):
        return False, "duplicate atom types in the molecule-type description"
    try:
        graph = TypeGraph(nodes, edges)
    except MoleculeGraphError as exc:
        return False, str(exc)
    if not graph.is_acyclic():
        return False, "the molecule-type graph contains a cycle"
    if not graph.is_coherent():
        return False, "the molecule-type graph is not coherent (connected)"
    roots = graph.roots()
    if len(roots) != 1:
        return False, f"the molecule-type graph must have exactly one root, found {list(roots)!r}"
    root = roots[0]
    if graph.reachable_from(root) != frozenset(nodes):
        return False, "not every atom type is reachable from the root"
    return True, ""


def require_md_graph(nodes: Sequence[str], edges: Sequence[DirectedLink]) -> TypeGraph:
    """Validate ``md_graph`` and return the :class:`TypeGraph`; raise on failure."""
    valid, reason = md_graph(nodes, edges)
    if not valid:
        raise MoleculeGraphError(reason)
    return TypeGraph(nodes, edges)


def root_of(nodes: Sequence[str], edges: Sequence[DirectedLink]) -> str:
    """Return the unique root of a valid molecule-type graph (the ``root`` predicate)."""
    return require_md_graph(nodes, edges).roots()[0]
