"""Databases and the database domain (Definition 3).

A **database** is the pair ``DB = <AT, LT>`` of a set of atom types and a set
of link types over those atom types.  The **database domain** ``DB*``
comprises all valid databases; every operation of the atom-type algebra and of
the molecule algebra is *closed* under this domain — each result atom type
(with its inherited link types) is added to a correspondingly *enlarged*
database.

The :class:`Database` class therefore provides, besides the obvious
registries, the ``atyp``/``ltyp`` lookup functions of the paper, validity
checking (the executable counterpart of membership in ``AT*``/``LT*``/``DB*``),
and :meth:`enlarged`, which produces the grown database used in closure
constructions without mutating the original.
"""

from __future__ import annotations

from repro.analysis.runtime import make_lock
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.atom import Atom, AtomType
from repro.core.attributes import AtomTypeDescription
from repro.core.events import ChangeEvent, Listener
from repro.core.link import Cardinality, Link, LinkType
from repro.core.versions import DatabaseView, Snapshot, VersioningState
from repro.exceptions import (
    DanglingLinkError,
    DuplicateNameError,
    SchemaError,
    StorageError,
    UnknownNameError,
)


class Database:
    """The pair ``<AT, LT>`` of Definition 3, with validity checking.

    Databases are ordinarily built through :class:`repro.schema.SchemaBuilder`
    or the dataset loaders, but can also be assembled directly::

        db = Database("geo")
        state = db.define_atom_type("state", {"name": "string", "hectare": "integer"})
        area = db.define_atom_type("area", {"area_id": "string"})
        db.define_link_type("state-area", "state", "area")
    """

    def __init__(self, name: str = "db") -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"invalid database name: {name!r}")
        self.name = name
        self._atom_types: Dict[str, AtomType] = {}
        self._link_types: Dict[str, LinkType] = {}
        self._listeners: List[Listener] = []
        self._versioning: Optional[VersioningState] = None  # guarded-by: Database._versioning_guard
        #: Guards versioning-state creation (``enable_versioning`` may race
        #: between an engine thread and an MQL ``BEGIN WORK`` elsewhere).
        self._versioning_guard = make_lock("Database._versioning_guard")

    # --------------------------------------------------------- change events

    def subscribe(self, listener: Listener) -> None:
        """Attach *listener* to every (current and future) type's change events.

        The listener receives one :class:`~repro.core.events.ChangeEvent` per
        occurrence-level mutation — atom inserted/deleted/modified, link
        connected/disconnected — in mutation order.  This is the hook the
        storage engine uses to maintain its snapshot, indexes and atom network
        incrementally instead of rebuilding them on every write.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)
        for atom_type in self._atom_types.values():
            atom_type.events.subscribe(listener)
        for link_type in self._link_types.values():
            link_type.events.subscribe(listener)

    def unsubscribe(self, listener: Listener) -> None:
        """Detach *listener* from this database's types (no error when absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)
        for atom_type in self._atom_types.values():
            atom_type.events.unsubscribe(listener)
        for link_type in self._link_types.values():
            link_type.events.unsubscribe(listener)

    # ----------------------------------------------------- versioning / MVCC

    @property
    def versioning(self) -> Optional[VersioningState]:
        """The database's concurrency state, or ``None`` until enabled."""
        return self._versioning

    def enable_versioning(self, start_generation: int = 0) -> VersioningState:
        """Switch on multi-version concurrency control (idempotent).

        Attaches a shared :class:`~repro.core.versions.VersioningState` —
        generation clock, pin registry, commit log — to every current and
        future atom/link type.  From this point each mutation is stamped with
        a generation, and while any reader pins a generation the pre-states
        are retained in copy-on-write version chains, so
        :meth:`at` can serve reads as of that generation.
        """
        with self._versioning_guard:
            if self._versioning is None:
                self._versioning = VersioningState(start_generation)
        for atom_type in self._atom_types.values():
            atom_type.attach_versioning(self._versioning)
        for link_type in self._link_types.values():
            link_type.attach_versioning(self._versioning)
        return self._versioning

    def at(self, snapshot: Snapshot) -> DatabaseView:
        """A read-only view of this database as of *snapshot*.

        Schema lookups resolve live (DDL is not versioned); occurrence reads
        resolve through the version chains, so the executor and the molecule
        derivation read the state the snapshot pinned.
        """
        return DatabaseView(self, snapshot)

    def pin(self, generation: Optional[int] = None) -> int:
        """Pin *generation* (default: current) against garbage collection."""
        if self._versioning is None:
            raise StorageError("versioning is not enabled on this database")
        return self._versioning.pin(generation)

    def release_pin(self, generation: int) -> None:
        """Release one pin and garbage-collect now-unreachable versions."""
        if self._versioning is None:
            return
        self._versioning.release(generation)
        self.collect_versions()

    def collect_versions(self) -> Dict[str, object]:
        """Truncate version chains past the oldest pin; returns GC statistics.

        Each type re-reads the horizon under its own head lock (see
        :meth:`AtomType.collect_versions`): chain recording and truncation
        serialize per type, so a pin or transaction registered before the
        type is visited is always honoured — no stale-horizon window in
        which a just-pinned reader's chains could be cleared.  The horizon
        covers pins *and* active transactions (see
        :meth:`~repro.core.versions.VersioningState.truncation_horizon`).
        """
        state = self._versioning
        if state is None:
            return {
                "versions_live": 0,
                "versions_collected": 0,
                "oldest_pinned_generation": None,
            }
        horizon = state.truncation_horizon()
        live = 0
        collected_total = 0
        for atom_type in self._atom_types.values():
            kept, collected = atom_type.collect_versions()
            live += kept
            collected_total += collected
        for link_type in self._link_types.values():
            kept, collected = link_type.collect_versions()
            live += kept
            collected_total += collected
        with state.lock:
            state.versions_collected += collected_total
            total_collected = state.versions_collected
        state.prune_commit_log()
        return {
            "versions_live": live,
            "versions_collected": total_collected,
            "oldest_pinned_generation": horizon,
        }

    def version_statistics(self) -> Dict[str, object]:
        """Live version-chain and pin statistics (without collecting)."""
        state = self._versioning
        live = 0
        if state is not None:
            for registry in (self._atom_types, self._link_types):
                for type_object in registry.values():
                    _chains, entries = type_object.version_statistics()
                    live += entries
        return {
            "versions_live": live,
            "versions_collected": state.versions_collected if state else 0,
            "oldest_pinned_generation": state.oldest_pinned() if state else None,
            "pins_active": state.pins_active if state else 0,
        }

    # ------------------------------------------------------------------ AT

    @property
    def atom_types(self) -> Tuple[AtomType, ...]:
        """The set ``AT`` of atom types (in definition order)."""
        return tuple(self._atom_types.values())

    @property
    def atom_type_names(self) -> Tuple[str, ...]:
        """The names of all atom types."""
        return tuple(self._atom_types)

    def define_atom_type(
        self,
        name: str,
        description: "AtomTypeDescription | Sequence | Mapping",
        atoms: Iterable[Atom] = (),
    ) -> AtomType:
        """Create a new atom type and register it; returns the atom type."""
        atom_type = AtomType(name, description, atoms)
        return self.add_atom_type(atom_type)

    def add_atom_type(self, atom_type: AtomType) -> AtomType:
        """Register an existing atom type; its name must be fresh."""
        if atom_type.name in self._atom_types:
            raise DuplicateNameError(f"atom type {atom_type.name!r} already defined")
        if atom_type.name in self._link_types:
            raise DuplicateNameError(
                f"name {atom_type.name!r} already used by a link type"
            )
        self._atom_types[atom_type.name] = atom_type
        for listener in self._listeners:
            atom_type.events.subscribe(listener)
        if self._versioning is not None:
            atom_type.attach_versioning(self._versioning)
        return atom_type

    def atyp(self, name: "str | Iterable[str]") -> "AtomType | Tuple[AtomType, ...]":
        """The ``atyp`` function of Definition 1 (extended to name sets).

        With a single name returns that atom type; with an iterable of names
        returns the corresponding tuple of atom types.
        """
        if isinstance(name, str):
            try:
                return self._atom_types[name]
            except KeyError as exc:
                raise UnknownNameError(f"unknown atom type: {name!r}") from exc
        return tuple(self.atyp(single) for single in name)

    def has_atom_type(self, name: str) -> bool:
        """Return ``True`` when an atom type named *name* exists."""
        return name in self._atom_types

    def drop_atom_type(self, name: str) -> None:
        """Remove an atom type and every link type that references it."""
        if name not in self._atom_types:
            raise UnknownNameError(f"unknown atom type: {name!r}")
        del self._atom_types[name]
        for link_name in [ln for ln, lt in self._link_types.items() if lt.connects_type(name)]:
            del self._link_types[link_name]

    # ------------------------------------------------------------------ LT

    @property
    def link_types(self) -> Tuple[LinkType, ...]:
        """The set ``LT`` of link types (in definition order)."""
        return tuple(self._link_types.values())

    @property
    def link_type_names(self) -> Tuple[str, ...]:
        """The names of all link types."""
        return tuple(self._link_types)

    def define_link_type(
        self,
        name: str,
        first_type: "AtomType | str",
        second_type: "AtomType | str",
        cardinality: Cardinality = Cardinality.MANY_TO_MANY,
    ) -> LinkType:
        """Create and register a link type between two existing atom types."""
        first_name = first_type.name if isinstance(first_type, AtomType) else first_type
        second_name = second_type.name if isinstance(second_type, AtomType) else second_type
        for type_name in (first_name, second_name):
            if type_name not in self._atom_types:
                raise UnknownNameError(
                    f"cannot define link type {name!r}: unknown atom type {type_name!r}"
                )
        link_type = LinkType(name, first_name, second_name, cardinality=cardinality)
        return self.add_link_type(link_type)

    def add_link_type(self, link_type: LinkType) -> LinkType:
        """Register an existing link type; both endpoint atom types must exist."""
        if link_type.name in self._link_types:
            raise DuplicateNameError(f"link type {link_type.name!r} already defined")
        if link_type.name in self._atom_types:
            raise DuplicateNameError(f"name {link_type.name!r} already used by an atom type")
        for type_name in link_type.atom_type_names:
            if type_name not in self._atom_types:
                raise UnknownNameError(
                    f"link type {link_type.name!r} references unknown atom type {type_name!r}"
                )
        self._link_types[link_type.name] = link_type
        for listener in self._listeners:
            link_type.events.subscribe(listener)
        if self._versioning is not None:
            link_type.attach_versioning(self._versioning)
        return link_type

    def ltyp(self, name: "str | Iterable") -> "LinkType | Tuple[LinkType, ...]":
        """The ``ltyp`` function: map a link-type name (or directed use) to its link type."""
        if isinstance(name, str):
            try:
                return self._link_types[name]
            except KeyError as exc:
                raise UnknownNameError(f"unknown link type: {name!r}") from exc
        return tuple(self.ltyp(single) for single in name)

    def has_link_type(self, name: str) -> bool:
        """Return ``True`` when a link type named *name* exists."""
        return name in self._link_types

    def drop_link_type(self, name: str) -> None:
        """Remove a link type from the database."""
        if name not in self._link_types:
            raise UnknownNameError(f"unknown link type: {name!r}")
        del self._link_types[name]

    def link_types_of(self, atom_type: "AtomType | str") -> Tuple[LinkType, ...]:
        """Return every link type incident to *atom_type*."""
        name = atom_type.name if isinstance(atom_type, AtomType) else atom_type
        return tuple(lt for lt in self._link_types.values() if lt.connects_type(name))

    def link_types_between(self, first: str, second: str) -> Tuple[LinkType, ...]:
        """Return all link types connecting atom types *first* and *second*."""
        return tuple(
            lt
            for lt in self._link_types.values()
            if lt.description == frozenset((first, second)) or (first == second and lt.is_reflexive)
        )

    # --------------------------------------------------------- convenience

    def insert_atom(self, type_name: str, identifier: Optional[str] = None, **values: object) -> Atom:
        """Insert a new atom into atom type *type_name*."""
        return self.atyp(type_name).insert(identifier=identifier, **values)

    def connect(self, link_type_name: str, first: "Atom | str", second: "Atom | str") -> Link:
        """Insert a link of *link_type_name* between two atoms."""
        return self.ltyp(link_type_name).connect(first, second)

    def find_atom(self, identifier: str) -> Optional[Atom]:
        """Locate an atom by identifier across all atom types."""
        for atom_type in self._atom_types.values():
            atom = atom_type.get(identifier)
            if atom is not None:
                return atom
        return None

    # --------------------------------------------------------------- DB*

    def validate(self) -> None:
        """Check membership in the database domain ``DB*``.

        Raises when a link type references atoms that are not part of its
        endpoint atom types' occurrences (referential integrity) or when a
        link type's endpoint atom types are missing.
        """
        for link_type in self._link_types.values():
            first_name, second_name = link_type.atom_type_names
            if first_name not in self._atom_types or second_name not in self._atom_types:
                raise UnknownNameError(
                    f"link type {link_type.name!r} references undefined atom types"
                )
            first = self._atom_types[first_name]
            second = self._atom_types[second_name]
            known = set(first.identifiers()) | set(second.identifiers())
            for link in link_type:
                for identifier in link.identifiers:
                    if identifier not in known:
                        raise DanglingLinkError(
                            f"link {link!r} of type {link_type.name!r} references "
                            f"unknown atom {identifier!r}"
                        )

    def is_valid(self) -> bool:
        """Return ``True`` when :meth:`validate` succeeds."""
        try:
            self.validate()
        except (DanglingLinkError, UnknownNameError):
            return False
        return True

    def enlarged(
        self,
        new_atom_types: Iterable[AtomType] = (),
        new_link_types: Iterable[LinkType] = (),
        name: Optional[str] = None,
    ) -> "Database":
        """Return a new database extended with additional atom/link types.

        This is the "correspondingly enlarged database" of the closure
        constructions (Theorem 1, Definition 9): the original database is left
        untouched; the result shares the original type objects and adds the
        new ones.
        """
        grown = Database(name or self.name)
        grown._atom_types = dict(self._atom_types)
        grown._link_types = dict(self._link_types)
        for atom_type in new_atom_types:
            if atom_type.name in grown._atom_types:
                # Result names are freshly generated; a clash means the caller
                # reused a name deliberately (idempotent re-registration).
                continue
            grown._atom_types[atom_type.name] = atom_type
        for link_type in new_link_types:
            if link_type.name in grown._link_types:
                continue
            grown._link_types[link_type.name] = link_type
        return grown

    def copy(self, name: Optional[str] = None) -> "Database":
        """Return a deep copy of the database (fresh atom/link type objects)."""
        clone = Database(name or self.name)
        for atom_type in self._atom_types.values():
            clone._atom_types[atom_type.name] = atom_type.copy()
        for link_type in self._link_types.values():
            clone._link_types[link_type.name] = link_type.copy()
        return clone

    # ---------------------------------------------------------- statistics

    def atom_count(self) -> int:
        """Total number of atoms across all atom types."""
        return sum(len(atom_type) for atom_type in self._atom_types.values())

    def link_count(self) -> int:
        """Total number of links across all link types."""
        return sum(len(link_type) for link_type in self._link_types.values())

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Return per-type occurrence sizes, used by reports and the optimizer."""
        return {
            "atom_types": {name: len(at) for name, at in self._atom_types.items()},
            "link_types": {name: len(lt) for name, lt in self._link_types.items()},
        }

    def __contains__(self, name: object) -> bool:
        return name in self._atom_types or name in self._link_types

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, atom_types={len(self._atom_types)}, "
            f"link_types={len(self._link_types)}, atoms={self.atom_count()}, "
            f"links={self.link_count()})"
        )


def formal_specification(db: Database) -> str:
    """Render a database in the style of Figure 4 of the paper.

    Each atom type is shown as ``<name, {attributes}, {atoms}> ∈ AT*``, each
    link type as ``<name, {endpoints}, {links}> ∈ LT*``, and the database as
    ``<{atom types}, {link types}> ∈ DB*``.  Occurrences are elided after a few
    elements, matching the paper's presentation.
    """

    def preview(items: Sequence[str], limit: int = 4) -> str:
        shown = list(items[:limit])
        if len(items) > limit:
            shown.append("...")
        return "{" + ", ".join(shown) + "}"

    lines: List[str] = []
    for atom_type in db.atom_types:
        atom_previews = [
            "<" + ", ".join(repr(atom.get(name)) for name in atom_type.description.names) + ">"
            for atom in atom_type.occurrence
        ]
        lines.append(
            f"{atom_type.name} = <{atom_type.name}, "
            f"{preview(list(atom_type.description.names), limit=8)}, "
            f"{preview(atom_previews)}> ∈ AT*"
        )
    for link_type in db.link_types:
        link_previews = [
            "<" + ", ".join(sorted(link.identifiers)) + ">" for link in link_type.occurrence
        ]
        first, second = link_type.atom_type_names
        lines.append(
            f"{link_type.name} = <{link_type.name}, {{{first}, {second}}}, "
            f"{preview(link_previews)}> ∈ LT*"
        )
    lines.append(
        f"{db.name} = <{preview(list(db.atom_type_names), limit=10)}, "
        f"{preview(list(db.link_type_names), limit=10)}> ∈ DB*"
    )
    return "\n".join(lines)
