"""Exception hierarchy for the MAD-model reproduction.

Every error raised by the library derives from :class:`MADError`, so callers
can install a single ``except MADError`` guard around model code.  The
sub-hierarchy mirrors the layers of the system: schema definition, the
atom-type algebra, the molecule algebra, the MQL language front-end, storage,
and data manipulation.
"""

from __future__ import annotations


class MADError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(MADError):
    """A schema-level definition is invalid (atom types, link types, names)."""


class DuplicateNameError(SchemaError):
    """A name (atom type, link type, attribute, molecule type) is already in use."""


class UnknownNameError(SchemaError):
    """A referenced name does not exist in the database or schema."""


class AttributeError_(SchemaError):
    """An attribute description or attribute value is invalid.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`AttributeError`.
    """


class DomainError(AttributeError_):
    """A value does not belong to the domain of its attribute."""


class IntegrityError(MADError):
    """A structural integrity constraint is violated.

    Covers dangling links, cardinality violations, and identity clashes.
    """


class DanglingLinkError(IntegrityError):
    """A link references an atom that is not part of the link type's atom types."""


class CardinalityError(IntegrityError):
    """A link-type cardinality restriction (1:1, 1:n, n:m bounds) is violated."""


class AlgebraError(MADError):
    """An algebra operation was applied to incompatible operands."""


class UnionCompatibilityError(AlgebraError):
    """Union/difference operands do not have identical descriptions."""


class ProjectionError(AlgebraError):
    """A projection references attributes or atom types not present in the operand."""


class RestrictionError(AlgebraError):
    """A restriction formula is not a valid qualification over the operand."""


class MoleculeGraphError(AlgebraError):
    """A molecule-type description is not a coherent, acyclic, single-rooted graph."""


class RecursionLimitError(AlgebraError):
    """Recursive molecule expansion exceeded the configured depth limit."""


class MQLError(MADError):
    """Base class for MQL (molecule query language) front-end errors."""


class MQLSyntaxError(MQLError):
    """The MQL statement could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 1, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class MQLSemanticError(MQLError):
    """The MQL statement is syntactically valid but not meaningful over the schema."""


class StorageError(MADError):
    """A storage-layer operation failed (unknown identifier, duplicate key)."""


class TransactionError(MADError):
    """A transaction was used incorrectly (e.g. commit without begin)."""


class TransactionConflictError(TransactionError):
    """A concurrent transaction won a write-write race (first committer wins).

    Raised eagerly when a transaction writes an atom or link that another
    *active* transaction has already written, or that a transaction committed
    after this one began; also raised at commit when the commit-log
    re-validation detects such an overlap.  The losing transaction is rolled
    back completely — it leaves no partial state.
    """


class ManipulationError(MADError):
    """An insert/delete/modify operation violates the model's rules."""
