"""E-FIG5 — Figure 5: the three-phase definition of molecule-type operations.

Every molecule-type operation is defined as: operation-specific actions → prop
(materialize the result set into an enlarged database) → α (re-derive the
result as a molecule type).  The benchmark traces a restriction through those
phases explicitly and checks the consistency property Definition 9 promises:
"for each element within rsv there is exactly one equivalent molecule within
mv and vice versa".
"""

from __future__ import annotations

from conftest import report

from repro import attr, molecule_type_definition
from repro.core.molecule_algebra import (
    ResultSet,
    molecule_restriction,
    propagate,
)


def test_fig5_restriction_three_phases(geo_db, mt_state_desc, benchmark):
    """Tracing Σ through Fig. 5: result set → prop → α reproduces the same molecules."""
    mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
    formula = attr("hectare", "state") > 800

    def run_phases():
        # Phase 1: operation-specific actions — select the qualifying molecules.
        qualifying = tuple(m for m in mt_state if formula.evaluate_molecule(m))
        result_set = ResultSet("big_states", mt_state.description, qualifying)
        # Phases 2+3: prop materializes the result set and α re-derives it.
        return result_set, propagate(result_set, geo_db)

    result_set, propagated = benchmark(run_phases)

    derived = propagated.molecule_type
    # Exactly one derived molecule per result-set element, and vice versa.
    assert len(derived) == len(result_set.molecules)
    result_roots = {m.root_atom.identifier for m in result_set.molecules}
    derived_roots = {m.root_atom.identifier for m in derived}
    assert result_roots == derived_roots
    # Component atom sets agree molecule by molecule.
    by_root = {m.root_atom.identifier: m for m in result_set.molecules}
    for molecule in derived:
        assert molecule.atom_identifiers == by_root[molecule.root_atom.identifier].atom_identifiers
    report(
        "Figure 5: phases of Σ[hectare>800](mt_state)",
        [
            ("phase", "output"),
            ("operation-specific actions", f"{len(result_set.molecules)} qualifying molecules"),
            ("prop", f"{len(propagated.propagated_atom_types)} atom types, "
                     f"{len(propagated.propagated_link_types)} link types added"),
            ("α over DB'", f"{len(derived)} molecules re-derived"),
        ],
    )


def test_fig5_operation_equals_pipeline(geo_db, mt_state_desc, benchmark):
    """The packaged Σ operation equals the hand-run three-phase pipeline."""
    mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
    formula = attr("hectare", "state") > 800

    packaged = benchmark(molecule_restriction, geo_db, mt_state, formula)

    qualifying_roots = {
        m.root_atom.identifier for m in mt_state if formula.evaluate_molecule(m)
    }
    assert {m.root_atom.identifier for m in packaged.molecule_type} == qualifying_roots
    # The enlarged database contains the original types plus the propagated ones.
    for name in geo_db.atom_type_names:
        assert packaged.database.has_atom_type(name)
    assert len(packaged.database.atom_types) > len(geo_db.atom_types)
    # The original database is untouched (closure never mutates operands).
    assert len(geo_db.atom_types) == 7
