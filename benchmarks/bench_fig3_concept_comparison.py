"""E-FIG3 — Figure 3: the relational-vs-MAD concept-comparison table.

Regenerates the table programmatically and verifies each row against the live
implementations: for every MAD concept the corresponding class/function
exists, and for every relational concept its counterpart (or absence) is as
the figure states — in particular, links and link types have *no* relational
counterpart other than foreign keys inside auxiliary relations.
"""

from __future__ import annotations

from conftest import report

from repro.core.atom import Atom, AtomType
from repro.core.attributes import AttributeDescription, AtomTypeDescription
from repro.core.database import Database
from repro.core.link import Link, LinkType
from repro.relational import Relation, RelationSchema, map_database
from repro.relational.mapping import concept_comparison_rows


def test_fig3_concept_table(benchmark):
    """Every row of Fig. 3 is backed by the implementation."""
    rows = benchmark(concept_comparison_rows)

    report("Figure 3: relational vs. MAD concepts", [("relational", "MAD")] + list(rows))
    mad_side = {mad for _, mad in rows}
    # The MAD concepts named by the figure all exist as classes/constructs.
    implemented = {
        "attribute": AttributeDescription,
        "atom-type description": AtomTypeDescription,
        "atom": Atom,
        "atom type": AtomType,
        "link": Link,
        "link type": LinkType,
        "database": Database,
    }
    for concept, cls in implemented.items():
        assert concept in mad_side
        assert isinstance(cls, type)
    # The relational side has no counterpart for link concepts (shown as '-').
    relational_side = {rel for rel, mad in rows if "link" in mad}
    assert relational_side == {"-"}
    # Relation schema / tuple / relation exist on the relational side.
    assert isinstance(RelationSchema(("a",)), RelationSchema)
    assert isinstance(Relation("r", ("a",)), Relation)


def test_fig3_referential_integrity_contrast(geo_db, benchmark):
    """Referential integrity: guaranteed by construction in MAD, checkable-only relationally.

    In the MAD database dangling links cannot be created through the public
    API (the database validates); in the relational mapping the junction
    relations accept foreign-key values that reference no tuple — the '(?)'
    versus '(!)' of Fig. 3.
    """
    mapping = benchmark(map_database, geo_db)

    # MAD side: the loaded database validates.
    assert geo_db.is_valid()
    # Relational side: nothing stops us from inserting a dangling reference.
    junction = mapping.auxiliary_relations["area-edge"]
    junction.insert({"area_id": "a1", "edge_id": "edge-that-does-not-exist"})
    edge_ids = {row["_id"] for row in mapping.entity_relations["edge"]}
    dangling = [row for row in junction if row["edge_id"] not in edge_ids]
    assert dangling, "the relational mapping accepted a dangling foreign key"
    report(
        "Figure 3: referential integrity",
        [
            ("model", "dangling references possible"),
            ("MAD (links)", "no — rejected at validation"),
            ("relational (foreign keys)", f"yes — {len(dangling)} inserted unchecked"),
        ],
    )
